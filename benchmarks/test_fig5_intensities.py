"""Benchmark: regenerate Figure 5 (beam-intensity image quality)."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.fig5_intensities import format_fig5, run_fig5


@pytest.mark.benchmark(group="fig5")
def test_fig5_beam_intensities(benchmark, emit_report):
    result = run_once(benchmark, run_fig5)
    report = emit_report("fig5_intensities", format_fig5(result))

    # the intensity axis is a noise axis: SNR strictly ordered
    assert result.snr_db["low"] < result.snr_db["medium"] < result.snr_db["high"]
    # ~10x photon budget per step (paper: 1e14 / 1e15 / 1e16 fluence)
    assert result.photons["medium"] > 5 * result.photons["low"]
    assert result.photons["high"] > 5 * result.photons["medium"]
    # low intensity images are visibly photon-starved
    assert result.zero_fraction["low"] > 0.2
    assert "MISMATCH" not in report
