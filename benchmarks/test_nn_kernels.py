"""Performance benchmarks of the NumPy NN substrate's hot kernels.

Not a paper artifact — these track the training substrate's throughput
(the guide rule: no optimization without measurement).  Groups:
im2col-based convolution forward/backward, dense GEMM, one full
training step of a decoded NSGA-Net network, and one engine fit.
"""

import numpy as np
import pytest

from repro.core.engine import PredictionEngine
from repro.nas.decoder import DecoderConfig, decode_genome
from repro.nas.genome import random_genome
from repro.nn.layers import Conv2D, Dense
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.optimizers import Adam

from tests.conftest import make_concave_curve


@pytest.fixture(scope="module")
def kernel_rng():
    return np.random.default_rng(0)


@pytest.mark.benchmark(group="nn-kernels")
def test_conv_forward(benchmark, kernel_rng):
    layer = Conv2D(8, 16, kernel_size=3, rng=kernel_rng)
    x = kernel_rng.normal(size=(16, 8, 32, 32))
    result = benchmark(lambda: layer.forward(x))
    assert result.shape == (16, 16, 32, 32)


@pytest.mark.benchmark(group="nn-kernels")
def test_conv_backward(benchmark, kernel_rng):
    layer = Conv2D(8, 16, kernel_size=3, rng=kernel_rng)
    x = kernel_rng.normal(size=(16, 8, 32, 32))
    out = layer.forward(x, training=True)
    grad = kernel_rng.normal(size=out.shape)

    def run():
        layer.forward(x, training=True)
        return layer.backward(grad)

    result = benchmark(run)
    assert result.shape == x.shape


@pytest.mark.benchmark(group="nn-kernels")
def test_dense_forward_backward(benchmark, kernel_rng):
    layer = Dense(512, 256, rng=kernel_rng)
    x = kernel_rng.normal(size=(64, 512))
    grad = kernel_rng.normal(size=(64, 256))

    def run():
        layer.forward(x, training=True)
        return layer.backward(grad)

    result = benchmark(run)
    assert result.shape == x.shape


@pytest.mark.benchmark(group="nn-kernels")
def test_full_training_step(benchmark, kernel_rng):
    genome = random_genome(kernel_rng)
    network = decode_genome(
        genome, DecoderConfig((1, 32, 32), 2, (8, 16, 32)), rng=kernel_rng
    )
    optimizer = Adam(network, 1e-3)
    loss = SoftmaxCrossEntropy()
    x = kernel_rng.normal(size=(16, 1, 32, 32))
    y = kernel_rng.integers(0, 2, 16)

    def step():
        optimizer.zero_grad()
        logits = network.forward(x, training=True)
        _, grad = loss(logits, y)
        network.backward(grad)
        optimizer.step()

    benchmark(step)


@pytest.mark.benchmark(group="nn-kernels")
def test_engine_fit(benchmark):
    engine = PredictionEngine()
    history = list(make_concave_curve(15, noise=0.4, seed=2))
    result = benchmark(lambda: engine.predictor(15, history))
    assert result is not None
