"""Benchmark: regenerate Figure 9 (wall times and 4-GPU scaling)."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import format_fig9, run_fig9
from repro.xfel import BeamIntensity


@pytest.mark.benchmark(group="fig9")
def test_fig9_walltimes(benchmark, emit_report):
    result = run_once(benchmark, run_fig9)
    report = emit_report("fig9_walltime", format_fig9(result))

    saved = {i.label: result.saved_hours(i.label) for i in BeamIntensity}
    speedups = {i.label: result.speedup(i.label) for i in BeamIntensity}

    # A4NN saves wall time everywhere; low saves the least (paper: 3.5 h
    # vs 15.8/16.3 h)
    assert all(v > 0 for v in saved.values())
    assert saved["low"] < saved["medium"] and saved["low"] < saved["high"]

    # near-linear but sub-linear 4-GPU speedups (paper: 3.4x-3.9x)
    for label, s in speedups.items():
        assert 3.0 < s < 4.0, (label, s)

    # standalone wall time ~50 h at paper scale (calibrated cost model)
    for label, hours in result.standalone_1gpu.items():
        assert 40.0 < hours < 60.0, (label, hours)

    # barrier downtime shows up as < 100% utilization on 4 GPUs
    assert all(0.5 < u < 1.0 for u in result.utilization_4gpu.values())
    assert "MISMATCH" not in report
