"""Shared benchmark infrastructure.

Each benchmark module regenerates one paper artifact (table/figure),
prints a paper-vs-measured report, writes it under
``benchmarks/reports/``, and asserts the paper's qualitative *shape*
properties.  Paper-scale comparisons are memoized per process by
``repro.experiments.runner``, so artifacts sharing runs (Figs. 6-9,
Table 3) pay for each search once per session.
"""

import logging
import sys
from pathlib import Path

import pytest

try:
    import repro  # noqa: F401 -- probe for an installed package (pip install -e .)
except ModuleNotFoundError:  # fall back to the in-repo source tree
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

logging.disable(logging.INFO)

REPORT_DIR = Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def report_dir():
    REPORT_DIR.mkdir(exist_ok=True)
    return REPORT_DIR


@pytest.fixture
def emit_report(report_dir):
    """Print a report and persist it under benchmarks/reports/."""

    def _emit(name: str, text: str) -> str:
        print(f"\n{text}\n")
        (report_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        return text

    return _emit


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
