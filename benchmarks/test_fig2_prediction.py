"""Benchmark: regenerate Figure 2 (prediction convergence example)."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import format_fig2, run_fig2


@pytest.mark.benchmark(group="fig2")
def test_fig2_prediction_convergence(benchmark, emit_report):
    result = run_once(benchmark, run_fig2)
    report = emit_report("fig2_prediction", format_fig2(result))

    # paper shape: convergence roughly mid-training, well before epoch 25
    assert result.termination_epoch is not None
    assert result.termination_epoch < 20
    # prediction tracks the true final fitness closely
    assert abs(result.final_prediction - result.true_final_fitness) < 2.0
    assert "converged at epoch" in report
