"""Benchmark: regenerate Figure 7 (epochs required & % saved)."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import PAPER_EPOCH_SAVINGS_PERCENT, format_fig7, run_fig7
from repro.xfel import BeamIntensity


@pytest.mark.benchmark(group="fig7")
def test_fig7_epoch_savings(benchmark, emit_report):
    result = run_once(benchmark, run_fig7)
    report = emit_report("fig7_epochs", format_fig7(result))

    # standalone NSGA-Net always trains 100 x 25 = 2,500 epochs
    assert all(v == 2500 for v in result.standalone_epochs.values())

    saved = {i.label: result.saved_percent(i.label) for i in BeamIntensity}
    # A4NN saves on every intensity
    assert all(v > 5.0 for v in saved.values())
    # paper ordering: low saves the least (13.3%), medium the most (34.1%)
    assert saved["low"] < saved["high"] < saved["medium"] + 15.0
    assert saved["low"] < saved["medium"]
    # each measured saving within 10 percentage points of the paper's
    for label, paper_value in PAPER_EPOCH_SAVINGS_PERCENT.items():
        assert abs(saved[label] - paper_value) < 10.0, (label, saved[label], paper_value)
    assert "MISMATCH" not in report
