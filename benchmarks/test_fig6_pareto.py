"""Benchmark: regenerate Figure 6 (Pareto accuracy vs FLOPs, A4NN vs NAS)."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import format_fig6, run_fig6
from repro.xfel import BeamIntensity


@pytest.mark.benchmark(group="fig6")
def test_fig6_pareto_frontiers(benchmark, emit_report):
    result = run_once(benchmark, run_fig6)
    report = emit_report("fig6_pareto", format_fig6(result))

    # paper shapes: A4NN matches the standalone NAS's best accuracy at
    # every intensity.  The margin is one measurement-noise sigma: the
    # standalone baseline reports the *last measured* (noisy) accuracy,
    # whose population maximum is inflated by noise peaks, while A4NN's
    # predictions regress that noise toward the curve's asymptote — so
    # A4NN can sit slightly below on the noisiest (low) data.
    for intensity in BeamIntensity:
        a4nn_best = result.best_accuracy("a4nn", intensity.label)
        standalone_best = result.best_accuracy("standalone", intensity.label)
        assert a4nn_best >= standalone_best - 3.0, intensity.label
        assert a4nn_best > 90.0, intensity.label

    assert result.best_accuracy("a4nn", "medium") > result.best_accuracy("a4nn", "low") - 0.5
    assert result.best_accuracy("a4nn", "high") > result.best_accuracy("a4nn", "low") - 0.5

    # frontiers are non-trivial (more than one trade-off point somewhere)
    assert any(len(result.a4nn[i.label]) >= 2 for i in BeamIntensity)
    assert "MISMATCH" not in report
