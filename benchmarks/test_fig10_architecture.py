"""Benchmark: regenerate Figure 10 (near-optimal NN structure rendering)."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.fig10_architecture import format_fig10, run_fig10


@pytest.mark.benchmark(group="fig10")
def test_fig10_near_optimal_architecture(benchmark, emit_report):
    result = run_once(benchmark, run_fig10)
    report = emit_report("fig10_architecture", format_fig10(result))

    # the selected model is genuinely near-optimal for low intensity
    assert result.fitness > 90.0
    # the rendering shows the full phase structure
    assert report.count("PhaseBlock") == 3
    assert "node0" in report and "output <-" in report
    assert "Dense" in report
    # the connectivity graph covers all phases (3 x (4 nodes + in + out))
    assert result.n_graph_nodes == 18
