"""Benchmark ablation: what the generation barrier costs.

Paper §2.5: "GPU downtime can be accumulated as the number of networks
within each generation may not be divisible by the number of available
GPUs ... at the end of each generation's evaluation, some downtime may
occur."  This ablation replays the same A4NN workload with and without
the barrier, quantifying that downtime across pool sizes.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import DEFAULT_SEED, get_comparison
from repro.experiments.reporting import ReportTable
from repro.scheduler import simulate_walltime
from repro.xfel import BeamIntensity


def run_barrier_ablation(seed=DEFAULT_SEED):
    comparison = get_comparison(BeamIntensity.MEDIUM, seed=seed)
    rows = []
    for n_gpus in (1, 2, 4, 8):
        with_barrier = simulate_walltime(comparison.a4nn.search, n_gpus, barrier=True)
        without = simulate_walltime(comparison.a4nn.search, n_gpus, barrier=False)
        rows.append((n_gpus, with_barrier, without))
    return rows


@pytest.mark.benchmark(group="ablation")
def test_generation_barrier_cost(benchmark, emit_report):
    rows = run_once(benchmark, run_barrier_ablation)

    table = ReportTable(
        "gpus",
        "barrier h",
        "no-barrier h",
        "downtime h",
        "util (barrier)",
        "util (async)",
    )
    for n_gpus, with_barrier, without in rows:
        table.row(
            n_gpus,
            with_barrier.wall_hours,
            without.wall_hours,
            with_barrier.wall_hours - without.wall_hours,
            with_barrier.utilization,
            without.utilization,
        )
    emit_report(
        "ablation_barrier",
        table.render("Ablation: generation-barrier cost (medium intensity, A4NN)"),
    )

    by_gpus = {n: (wb, wo) for n, wb, wo in rows}
    # one GPU: the barrier is free (nothing to idle)
    wb1, wo1 = by_gpus[1]
    assert wb1.wall_seconds == pytest.approx(wo1.wall_seconds, rel=1e-9)
    # multiple GPUs: the barrier costs wall time and utilization
    for n in (2, 4, 8):
        wb, wo = by_gpus[n]
        assert wo.wall_seconds <= wb.wall_seconds
        assert wo.utilization >= wb.utilization
    # the cost grows with pool size (more GPUs idle at each barrier)
    downtime = {n: by_gpus[n][0].wall_seconds - by_gpus[n][1].wall_seconds for n in (2, 4, 8)}
    assert downtime[8] >= downtime[2] - 1e-6
