"""Benchmark: §4.3.1 prediction-engine overhead.

Two measurements: (a) the aggregate overhead folded into a paper-scale
100-model run, reported like the paper's 52.16 s / 28.07 ms numbers;
(b) a direct pytest-benchmark timing of one engine interaction
(predictor + analyzer on a 12-point history), which is the quantity the
28.07 ms corresponds to.
"""

import pytest

from benchmarks.conftest import run_once
from repro.core.engine import PredictionEngine
from repro.experiments import format_overhead, run_overhead

from tests.conftest import make_concave_curve


@pytest.mark.benchmark(group="overhead")
def test_overhead_aggregate(benchmark, emit_report):
    result = run_once(benchmark, run_overhead)
    report = emit_report("overhead", format_overhead(result))

    # the engine must be negligible: < 1% of a simulated epoch
    assert result.mean_ms / 1e3 < 0.01 * result.mean_epoch_seconds_simulated
    # and broadly comparable to the paper's 28 ms per interaction
    assert result.mean_ms < 280.0
    assert result.n_interactions > 0
    assert "MISMATCH" not in report


@pytest.mark.benchmark(group="overhead")
def test_overhead_single_interaction(benchmark):
    engine = PredictionEngine()
    history = list(make_concave_curve(12, noise=0.4, seed=1))
    predictions = []

    def interaction():
        p = engine.predictor(len(history), history)
        if p is not None:
            predictions.append(p)
        engine.converged(predictions[-3:])

    benchmark(interaction)
    # per-interaction cost stays in the tens-of-milliseconds regime
    assert benchmark.stats["mean"] < 0.25
