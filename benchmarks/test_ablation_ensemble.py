"""Benchmark ablation: single-function engine vs the ensemble extension."""

import math

import pytest

from benchmarks.conftest import run_once
from repro.core import EnsemblePredictionEngine, PredictionEngine, measure_engine_behaviour
from repro.experiments.ablation_functions import _curve_bank
from repro.experiments.reporting import ReportTable


def run_ensemble_ablation(n_per_regime=25, seed=13, n_epochs=25):
    curves = _curve_bank(n_per_regime, seed, n_epochs)
    single = measure_engine_behaviour(PredictionEngine(), curves, max_epochs=n_epochs)
    ensemble = measure_engine_behaviour(
        EnsemblePredictionEngine(), curves, max_epochs=n_epochs
    )
    return single, ensemble


@pytest.mark.benchmark(group="ablation")
def test_ensemble_vs_single_engine(benchmark, emit_report):
    single, ensemble = run_once(benchmark, run_ensemble_ablation)

    table = ReportTable(
        "engine", "% converged", "mean e_t", "mean epochs saved", "mean |error| %"
    )
    for name, b in (("exp3 (paper)", single), ("ensemble (median of 4)", ensemble)):
        table.row(
            name,
            b.percent_terminated,
            b.mean_termination_epoch,
            b.mean_epochs_saved,
            b.mean_abs_error,
        )
    emit_report(
        "ablation_ensemble",
        table.render("Ablation: single parametric function vs ensemble"),
    )

    # both engines terminate a substantial share of curves
    assert single.percent_terminated > 40.0
    assert ensemble.percent_terminated > 30.0
    # the ensemble's median aggregation must not blow up prediction error
    if not math.isnan(ensemble.mean_abs_error) and not math.isnan(single.mean_abs_error):
        assert ensemble.mean_abs_error < single.mean_abs_error + 3.0
    # it is more conservative (needs 4-parameter members determined)
    assert ensemble.mean_epochs_saved <= single.mean_epochs_saved + 3.0
