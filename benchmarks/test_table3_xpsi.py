"""Benchmark: regenerate Table 3 (A4NN vs the XPSI state of the art)."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import format_table3, run_table3
from repro.xfel import BeamIntensity


@pytest.mark.benchmark(group="table3")
def test_table3_a4nn_vs_xpsi(benchmark, emit_report):
    result = run_once(benchmark, run_table3)
    report = emit_report("table3_xpsi", format_table3(result))

    for intensity in BeamIntensity:
        label = intensity.label
        xpsi = result.xpsi[label]
        # paper shape: fixed-cost XPSI beats A4NN on one GPU...
        assert result.a4nn_hours_1gpu[label] > xpsi.simulated_hours, label
        # ...but A4NN on four GPUs beats XPSI
        assert result.a4nn_hours_4gpu[label] < xpsi.simulated_hours, label
        # A4NN matches or beats XPSI accuracy
        assert result.a4nn_accuracy[label] >= xpsi.accuracy, label

    # XPSI accuracy degrades with noise: low < medium <= high (paper:
    # 92 / 99 / 100); the A4NN margin is largest on noisy data
    assert result.xpsi["low"].accuracy < result.xpsi["medium"].accuracy
    assert result.xpsi["medium"].accuracy <= result.xpsi["high"].accuracy + 1e-9
    margin_low = result.a4nn_accuracy["low"] - result.xpsi["low"].accuracy
    margin_high = result.a4nn_accuracy["high"] - result.xpsi["high"].accuracy
    assert margin_low > margin_high

    assert "MISMATCH" not in report
