"""Benchmark ablation: engine sensitivity to window N and tolerance r."""

import math

import pytest

from benchmarks.conftest import run_once
from repro.experiments import format_engine_ablation, run_engine_ablation


@pytest.mark.benchmark(group="ablation")
def test_engine_parameter_sweep(benchmark, emit_report):
    points = run_once(benchmark, run_engine_ablation)
    report = emit_report("ablation_engine_params", format_engine_ablation(points))

    by_setting = {(p.n_predictions, p.tolerance): p for p in points}

    # looser tolerance always terminates at least as often (same N)
    for n in (2, 3, 5):
        strict = by_setting[(n, 0.1)]
        paper = by_setting[(n, 0.5)]
        loose = by_setting[(n, 2.0)]
        assert strict.percent_converged <= paper.percent_converged <= loose.percent_converged
        assert strict.mean_epochs_saved <= loose.mean_epochs_saved + 1e-9

    # longer windows are more conservative (same r)
    for r in (0.1, 0.5, 2.0):
        assert (
            by_setting[(5, r)].mean_epochs_saved
            <= by_setting[(2, r)].mean_epochs_saved + 1e-9
        )

    # the trade-off is real: the loosest setting saves the most epochs
    # but with no smaller error than the paper's N=3, r=0.5
    paper_point = by_setting[(3, 0.5)]
    loosest = by_setting[(2, 2.0)]
    assert loosest.mean_epochs_saved > paper_point.mean_epochs_saved
    if not math.isnan(loosest.mean_abs_error) and not math.isnan(paper_point.mean_abs_error):
        assert loosest.mean_abs_error >= paper_point.mean_abs_error - 0.5

    assert "N=3, r=0.5" in report
