"""Benchmark: regenerate Figure 8 (termination-epoch distributions)."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import format_fig8, run_fig8


@pytest.mark.benchmark(group="fig8")
def test_fig8_termination_distributions(benchmark, emit_report):
    result = run_once(benchmark, run_fig8)
    report = emit_report("fig8_convergence", format_fig8(result))

    low = result.summaries["low"]
    medium = result.summaries["medium"]
    high = result.summaries["high"]

    # paper: low terminates late (mean e_t > 18) for > 60% of models
    assert low.mean_termination_epoch > 18.0
    assert low.percent_terminated > 60.0
    # paper: medium terminates around half the budget for > 70% of models
    assert medium.mean_termination_epoch <= 13.5
    assert medium.percent_terminated > 70.0
    # paper: high terminates earliest but for the smallest share (~55%),
    # with a large full-training remainder — the "inverted bell"
    assert high.mean_termination_epoch <= 12.0
    assert high.percent_terminated < min(low.percent_terminated, medium.percent_terminated)
    assert 45.0 < high.percent_terminated < 75.0
    # ordering of mean termination epochs: high < medium < low
    assert (
        high.mean_termination_epoch
        < medium.mean_termination_epoch
        < low.mean_termination_epoch
    )
    assert "MISMATCH" not in report
