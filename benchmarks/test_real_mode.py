"""Benchmark: end-to-end real-mode validation (actual CNN training).

Everything the surrogate benchmarks exercise, but with real gradient
descent on simulated diffraction images — at miniature scale so it
finishes on a laptop CPU in a few minutes.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.real_mode import format_real_mode, run_real_mode


@pytest.mark.benchmark(group="real-mode")
def test_real_mode_end_to_end(benchmark, emit_report):
    result = run_once(benchmark, run_real_mode)
    report = emit_report("real_mode", format_real_mode(result))

    # the engine terminated some real training early
    assert result.epochs_saved_percent > 0
    # without degrading what the search found
    assert result.a4nn_best >= result.standalone_best - 10.0
    # and the networks genuinely learned the classification task
    assert result.a4nn_best > 60.0
    assert "MISMATCH" not in report
