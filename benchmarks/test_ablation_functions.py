"""Benchmark ablation: which parametric function predicts fitness best?

Answers the paper's §6 question by scoring every registered family over
an identical bank of learning curves from all three intensity regimes.
"""

import math

import pytest

from benchmarks.conftest import run_once
from repro.experiments import format_function_ablation, run_function_ablation


@pytest.mark.benchmark(group="ablation")
def test_parametric_function_ablation(benchmark, emit_report):
    scores = run_once(benchmark, run_function_ablation)
    report = emit_report("ablation_functions", format_function_ablation(scores))

    by_name = {s.function: s for s in scores}
    # the paper's exp3 must be a strong performer: it converges on a
    # sizeable share of curves with small prediction error
    exp3 = by_name["exp3"]
    assert exp3.percent_converged > 40.0
    assert not math.isnan(exp3.mean_abs_error)
    assert exp3.mean_abs_error < 8.0

    # every family produced a full score row
    assert len(scores) >= 8
    for s in scores:
        assert 0.0 <= s.percent_converged <= 100.0
        assert 0.0 <= s.mean_epochs_saved <= 25.0

    # at least one family is clearly worse than exp3 on error or
    # coverage — the choice of function matters
    assert any(
        (not math.isnan(s.mean_abs_error) and s.mean_abs_error > exp3.mean_abs_error)
        or s.percent_converged < exp3.percent_converged
        for s in scores
        if s.function != "exp3"
    )
    assert "exp3" in report
