"""A4NN — Analytics for Neural Networks.

Reproduction of *"Composable Workflow for Accelerating Neural
Architecture Search Using In Situ Analytics for Protein Classification"*
(ICPP 2023).  The package is organized as the paper's Fig. 1:

* :mod:`repro.core` — the parametric fitness-prediction engine
  (parametric modeling + prediction analyzer) and the Algorithm-1
  training-loop plug-in.  This is the primary contribution.
* :mod:`repro.nn` — from-scratch NumPy deep-learning substrate
  (PyTorch substitute).
* :mod:`repro.xfel` — simulated XFEL protein-diffraction datasets
  (spsim/Xmipp substitute).
* :mod:`repro.nas` — NSGA-Net: multi-objective evolutionary NAS.
* :mod:`repro.workflow` — the orchestrator tying NAS, engine, scheduler
  and lineage together.
* :mod:`repro.scheduler` — FIFO dynamic GPU scheduling (Ray substitute)
  with a discrete-event wall-time simulator.
* :mod:`repro.lineage` — record trails and the NN data commons.
* :mod:`repro.analysis` — Pareto/learning-curve analytics and NN
  structure visualization (the Analyzer).
* :mod:`repro.baselines` — XPSI (autoencoder + kNN) and standalone-NAS
  baselines.
* :mod:`repro.experiments` — one module per paper table/figure.

Quick start::

    from repro.core import PredictionEngine
    engine = PredictionEngine()          # paper Table 1 defaults
    session = engine.session()
    for accuracy in training_curve:       # percent validation accuracy
        session.observe(accuracy)
        if session.converged:
            break                         # early termination
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
