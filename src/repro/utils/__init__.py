"""Shared utilities for the A4NN reproduction.

This subpackage provides the low-level plumbing used throughout the
library: deterministic random-number management (:mod:`repro.utils.rng`),
structured logging (:mod:`repro.utils.logging`), wall-clock helpers
(:mod:`repro.utils.timing`), JSON/NPZ persistence helpers
(:mod:`repro.utils.io`), and argument validation
(:mod:`repro.utils.validation`).
"""

from repro.utils.rng import RngStream, derive_rng, spawn_seeds
from repro.utils.timing import Stopwatch, format_hours, format_seconds
from repro.utils.validation import (
    ensure_in_range,
    ensure_positive,
    ensure_probability,
    ValidationError,
)
from repro.utils.io import (
    atomic_write_json,
    read_json,
    atomic_write_npz,
    read_npz,
)

__all__ = [
    "RngStream",
    "derive_rng",
    "spawn_seeds",
    "Stopwatch",
    "format_hours",
    "format_seconds",
    "ensure_in_range",
    "ensure_positive",
    "ensure_probability",
    "ValidationError",
    "atomic_write_json",
    "read_json",
    "atomic_write_npz",
    "read_npz",
]
