"""Durable JSON / NPZ persistence helpers for the data commons.

Record trails are the product the lineage tracker ships; partially
written files would corrupt the commons, so all writes are atomic
(write to a temporary sibling, then ``os.replace``).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Mapping

import numpy as np

__all__ = ["atomic_write_json", "read_json", "atomic_write_npz", "read_npz", "JsonEncoder"]


class JsonEncoder(json.JSONEncoder):
    """JSON encoder that understands numpy scalars and arrays."""

    def default(self, o: Any) -> Any:
        if isinstance(o, (np.integer,)):
            return int(o)
        if isinstance(o, (np.floating,)):
            return float(o)
        if isinstance(o, (np.bool_,)):
            return bool(o)
        if isinstance(o, np.ndarray):
            return o.tolist()
        if isinstance(o, Path):
            return str(o)
        return super().default(o)


def _atomic_replace(path: Path, writer) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.", suffix=".tmp")
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as fh:
            writer(fh)
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def atomic_write_json(path: str | Path, payload: Any, *, indent: int = 2) -> Path:
    """Serialize ``payload`` to JSON at ``path`` atomically; returns the path."""
    path = Path(path)
    text = json.dumps(payload, indent=indent, sort_keys=True, cls=JsonEncoder)
    _atomic_replace(path, lambda fh: fh.write(text.encode("utf-8")))
    return path


def read_json(path: str | Path) -> Any:
    """Load a JSON document."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def atomic_write_npz(path: str | Path, arrays: Mapping[str, np.ndarray]) -> Path:
    """Write named arrays to a compressed ``.npz`` atomically; returns the path."""
    path = Path(path)
    _atomic_replace(path, lambda fh: np.savez_compressed(fh, **dict(arrays)))
    return path


def read_npz(path: str | Path) -> dict[str, np.ndarray]:
    """Load all arrays from an ``.npz`` into a plain dict."""
    with np.load(path, allow_pickle=False) as data:
        return {key: data[key] for key in data.files}
