"""Deterministic random-number management.

Reproducibility is a first-class goal of the A4NN workflow (the paper's
lineage tracker exists precisely so that searches can be replayed).  All
stochastic components in this library draw from
:class:`numpy.random.Generator` objects derived from a single root seed
through named streams, so that

* two runs with the same seed produce byte-identical record trails, and
* adding a consumer of randomness in one component does not perturb the
  draws seen by any other component (no shared global state).
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field

import numpy as np

__all__ = ["RngStream", "derive_rng", "fallback_rng", "spawn_seeds", "stable_hash"]


def stable_hash(*parts: object) -> int:
    """Hash a tuple of printable parts to a 64-bit integer, stably.

    Python's builtin ``hash`` is salted per process; we need a hash that is
    stable across processes and sessions so that named RNG streams are
    reproducible.  The parts are rendered with ``repr`` and digested with
    BLAKE2b.
    """
    digest = hashlib.blake2b(
        "\x1f".join(repr(p) for p in parts).encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little")


def derive_rng(root_seed: int, *stream: object) -> np.random.Generator:
    """Create a generator for the stream named by ``stream`` parts.

    The same ``(root_seed, *stream)`` tuple always yields a generator in
    the same state.  Distinct stream names yield statistically independent
    generators (distinct ``SeedSequence`` entropy).
    """
    entropy = (int(root_seed) & 0xFFFFFFFFFFFFFFFF, stable_hash(*stream))
    return np.random.Generator(np.random.PCG64(np.random.SeedSequence(entropy)))


_fallback_counter = itertools.count()


def fallback_rng() -> np.random.Generator:
    """Deterministic replacement for an unseeded ``default_rng()``.

    Components accept an optional generator and historically fell back
    to ``np.random.default_rng()``, which draws OS entropy and makes
    runs unreplayable (lint rule DET001).  This fallback is seeded from
    a process-local counter instead: successive calls return *distinct*
    generators (two layers built without an explicit rng do not share
    weights), yet the sequence is identical on every run of the
    program.  Components on the replayable path should still receive an
    explicit :class:`RngStream`-derived generator.
    """
    return derive_rng(0, "fallback", next(_fallback_counter))


def spawn_seeds(root_seed: int, count: int, *stream: object) -> list[int]:
    """Derive ``count`` independent integer seeds from a named stream."""
    rng = derive_rng(root_seed, "spawn", *stream)
    return [int(s) for s in rng.integers(0, 2**63 - 1, size=count)]


@dataclass
class RngStream:
    """A named hierarchy of reproducible random generators.

    Components hold an ``RngStream`` and derive child streams for their
    sub-tasks, e.g. ``stream.child("mutation", generation)``.  Each call to
    :meth:`generator` with the same name returns a generator seeded
    identically, so callers should derive one generator per logical use.
    """

    root_seed: int
    path: tuple = field(default_factory=tuple)

    def child(self, *parts: object) -> "RngStream":
        """Return a sub-stream extending this stream's path."""
        return RngStream(self.root_seed, self.path + tuple(parts))

    def generator(self, *parts: object) -> np.random.Generator:
        """Return a fresh, deterministically seeded generator."""
        return derive_rng(self.root_seed, *self.path, *parts)

    def seeds(self, count: int, *parts: object) -> list[int]:
        """Return ``count`` independent integer seeds under this stream."""
        return spawn_seeds(self.root_seed, count, *self.path, *parts)
