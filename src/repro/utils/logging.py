"""Structured logging for workflow components.

A thin wrapper over :mod:`logging` that gives every component a
namespaced logger under ``repro.*`` and a single opt-in console
configuration, so that library users control verbosity the standard way.
"""

from __future__ import annotations

import logging

__all__ = ["get_logger", "configure_logging"]

_ROOT = "repro"


def get_logger(component: str) -> logging.Logger:
    """Return the logger for a component, e.g. ``get_logger("core.engine")``."""
    return logging.getLogger(f"{_ROOT}.{component}")


def configure_logging(level: int = logging.INFO) -> None:
    """Attach a console handler to the ``repro`` root logger (idempotent)."""
    root = logging.getLogger(_ROOT)
    root.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in root.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        root.addHandler(handler)
