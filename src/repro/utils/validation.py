"""Lightweight argument validation helpers.

The workflow accepts user configuration at many entry points (prediction
engine settings, NAS settings, dataset settings).  These helpers give
uniform, early, human-readable errors instead of deep numpy stack traces.
"""

from __future__ import annotations

import math

__all__ = [
    "ValidationError",
    "ensure_positive",
    "ensure_non_negative",
    "ensure_in_range",
    "ensure_probability",
    "ensure_finite",
]


class ValidationError(ValueError):
    """Raised when a user-supplied configuration value is invalid."""


def ensure_positive(value: float, name: str) -> float:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValidationError(f"{name} must be positive, got {value!r}")
    return value


def ensure_non_negative(value: float, name: str) -> float:
    """Require ``value >= 0``."""
    if not value >= 0:
        raise ValidationError(f"{name} must be non-negative, got {value!r}")
    return value


def ensure_in_range(
    value: float, name: str, low: float, high: float, *, inclusive: bool = True
) -> float:
    """Require ``low <= value <= high`` (or strict if ``inclusive=False``)."""
    ok = low <= value <= high if inclusive else low < value < high
    if not ok:
        bounds = f"[{low}, {high}]" if inclusive else f"({low}, {high})"
        raise ValidationError(f"{name} must be in {bounds}, got {value!r}")
    return value


def ensure_probability(value: float, name: str) -> float:
    """Require ``0 <= value <= 1``."""
    return ensure_in_range(value, name, 0.0, 1.0)


def ensure_finite(value: float, name: str) -> float:
    """Require a finite float (no NaN/inf)."""
    if not math.isfinite(value):
        raise ValidationError(f"{name} must be finite, got {value!r}")
    return value
