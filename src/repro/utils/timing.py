"""Wall-clock measurement helpers.

The paper reports both *measured* wall times (engine overhead, §4.3.1)
and *simulated* wall times (multi-GPU schedules).  This module supports
the former; the discrete-event simulator in :mod:`repro.scheduler` owns
the latter.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Stopwatch", "format_seconds", "format_hours"]


@dataclass
class Stopwatch:
    """Accumulating stopwatch with lap support.

    Uses ``time.perf_counter`` for monotonic, high-resolution timing.

    >>> sw = Stopwatch()
    >>> with sw:
    ...     pass
    >>> sw.total >= 0.0
    True
    """

    total: float = 0.0
    laps: list = field(default_factory=list)
    _started: float | None = None

    def start(self) -> "Stopwatch":
        """Begin a lap; raises if already running."""
        if self._started is not None:
            raise RuntimeError("Stopwatch already running")
        self._started = time.perf_counter()
        return self

    def stop(self) -> float:
        """End the current lap and return its duration in seconds."""
        if self._started is None:
            raise RuntimeError("Stopwatch not running")
        lap = time.perf_counter() - self._started
        self._started = None
        self.laps.append(lap)
        self.total += lap
        return lap

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def elapsed(self) -> float:
        """Seconds accumulated so far, including any lap in flight.

        Unlike :attr:`total`, this can be read while the stopwatch is
        running — the scheduler pools use it to timestamp job starts
        and ends against the generation clock.
        """
        running = (
            time.perf_counter() - self._started if self._started is not None else 0.0
        )
        return self.total + running

    @property
    def mean_lap(self) -> float:
        """Mean lap duration in seconds (0 if no laps)."""
        return self.total / len(self.laps) if self.laps else 0.0

    @property
    def lap_variance(self) -> float:
        """Population variance of lap durations in seconds² (0 if <2 laps)."""
        if len(self.laps) < 2:
            return 0.0
        mean = self.mean_lap
        return sum((lap - mean) ** 2 for lap in self.laps) / len(self.laps)


def format_seconds(seconds: float) -> str:
    """Render seconds as ``1h 02m 03.4s`` style text."""
    sign = "-" if seconds < 0 else ""
    seconds = abs(seconds)
    hours, rem = divmod(seconds, 3600)
    minutes, secs = divmod(rem, 60)
    if hours >= 1:
        return f"{sign}{int(hours)}h {int(minutes):02d}m {secs:04.1f}s"
    if minutes >= 1:
        return f"{sign}{int(minutes)}m {secs:04.1f}s"
    return f"{sign}{secs:.2f}s"


def format_hours(seconds: float) -> str:
    """Render seconds as decimal hours (paper-table style, e.g. ``46.55 h``)."""
    return f"{seconds / 3600.0:.2f} h"
