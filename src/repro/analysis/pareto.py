"""Pareto-frontier analytics over accuracy/FLOPs (paper Fig. 6).

Works on anything exposing ``fitness`` (percent, maximize) and ``flops``
(minimize) — live :class:`~repro.nas.population.Individual` objects or
commons :class:`~repro.lineage.records.ModelRecord` trails.
"""

from __future__ import annotations

import numpy as np

from repro.nas.nsga2 import pareto_front_mask

__all__ = ["ParetoPoint", "pareto_frontier", "hypervolume_2d", "frontier_table"]


class ParetoPoint:
    """One non-dominated model's headline metrics."""

    __slots__ = ("model_id", "fitness", "flops")

    def __init__(self, model_id: int, fitness: float, flops: float) -> None:
        self.model_id = int(model_id)
        self.fitness = float(fitness)
        self.flops = float(flops)

    def __repr__(self) -> str:
        return (
            f"ParetoPoint(model={self.model_id}, acc={self.fitness:.2f}%, "
            f"flops={self.flops:,.0f})"
        )

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ParetoPoint)
            and (self.model_id, self.fitness, self.flops)
            == (other.model_id, other.fitness, other.flops)
        )


def _extract(models) -> tuple[np.ndarray, list]:
    ids, rows = [], []
    for m in models:
        fitness = m.fitness
        flops = m.flops
        if fitness is None or flops is None:
            raise ValueError(f"model {getattr(m, 'model_id', '?')} lacks fitness/flops")
        ids.append(m.model_id)
        rows.append((-float(fitness), float(flops)))  # minimization form
    return np.asarray(rows, dtype=float).reshape(-1, 2), ids


def pareto_frontier(models) -> list[ParetoPoint]:
    """Non-dominated models, sorted by ascending FLOPs.

    A model is on the frontier when no other model has both higher
    accuracy and lower-or-equal FLOPs (and at least one strictly).
    """
    models = list(models)
    if not models:
        return []
    objectives, ids = _extract(models)
    mask = pareto_front_mask(objectives)
    points = [
        ParetoPoint(ids[i], -objectives[i, 0], objectives[i, 1])
        for i in np.flatnonzero(mask)
    ]
    return sorted(points, key=lambda p: (p.flops, -p.fitness))


def hypervolume_2d(
    points: list[ParetoPoint], *, ref_fitness: float = 0.0, ref_flops: float | None = None
) -> float:
    """Dominated hypervolume of a 2-D frontier (accuracy ↑ × FLOPs ↓).

    The reference point is (``ref_fitness``, ``ref_flops``);
    ``ref_flops`` defaults to the frontier's max FLOPs (making the
    metric scale-free per frontier unless pinned by the caller).
    """
    if not points:
        return 0.0
    pts = sorted(points, key=lambda p: p.flops)
    if ref_flops is None:
        ref_flops = max(p.flops for p in pts)
    volume = 0.0
    best_so_far = ref_fitness
    # sweep from cheap to expensive; each segment contributes width ×
    # (best accuracy achievable at or below that cost − reference)
    for i, p in enumerate(pts):
        right = pts[i + 1].flops if i + 1 < len(pts) else ref_flops
        best_so_far = max(best_so_far, p.fitness)
        width = max(right - p.flops, 0.0)
        volume += width * max(best_so_far - ref_fitness, 0.0)
    return volume


def frontier_table(points: list[ParetoPoint]) -> str:
    """Render a frontier as the text table the benchmarks print."""
    lines = [f"{'model':>6} {'accuracy %':>11} {'MFLOPs':>10}"]
    for p in points:
        lines.append(f"{p.model_id:>6} {p.fitness:>11.2f} {p.flops / 1e6:>10.2f}")
    return "\n".join(lines)
