"""Search-progress analytics: how fitness improves as evaluations accrue.

Answers "is the search still improving?" from record trails alone:
best-so-far trajectories in evaluation order, per-generation aggregates,
and a convergence test (how many evaluations since the last
improvement).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lineage.records import ModelRecord

__all__ = ["SearchProgress", "search_progress", "best_so_far"]


def best_so_far(records: list[ModelRecord]) -> np.ndarray:
    """Running maximum of fitness in evaluation (model-id) order."""
    ordered = sorted(
        (r for r in records if r.fitness is not None), key=lambda r: r.model_id
    )
    if not ordered:
        raise ValueError("no evaluated records")
    return np.maximum.accumulate([float(r.fitness) for r in ordered])


@dataclass(frozen=True)
class SearchProgress:
    """Progress summary of one search run.

    Attributes
    ----------
    trajectory:
        Best-so-far fitness per evaluation.
    final_best:
        Best fitness at the end of the run.
    evaluations_to_95_percent:
        Evaluations needed to reach 95% of the total improvement
        (start→final), a search-efficiency proxy.
    stagnant_tail:
        Evaluations since the last strict improvement.
    generation_best:
        Best fitness per generation (index = generation).
    """

    trajectory: np.ndarray
    final_best: float
    evaluations_to_95_percent: int
    stagnant_tail: int
    generation_best: np.ndarray


def search_progress(records: list[ModelRecord]) -> SearchProgress:
    """Compute the progress summary from record trails."""
    trajectory = best_so_far(records)
    start, final = float(trajectory[0]), float(trajectory[-1])
    threshold = start + 0.95 * (final - start)
    reach = int(np.argmax(trajectory >= threshold)) + 1

    improvements = np.flatnonzero(np.diff(trajectory) > 0)
    stagnant = len(trajectory) - 1 - (int(improvements[-1]) + 1) if improvements.size else len(trajectory) - 1

    by_generation: dict[int, float] = {}
    for r in records:
        if r.fitness is None:
            continue
        current = by_generation.get(r.generation, -np.inf)
        by_generation[r.generation] = max(current, float(r.fitness))
    generation_best = np.array(
        [by_generation[g] for g in sorted(by_generation)], dtype=float
    )

    return SearchProgress(
        trajectory=trajectory,
        final_best=final,
        evaluations_to_95_percent=reach,
        stagnant_tail=max(stagnant, 0),
        generation_best=generation_best,
    )
