"""Markdown report generation over a data commons (Jupyter substitute).

The paper's Analyzer is a Jupyter notebook; offline, this module renders
the same analyses — run summary, termination statistics, Pareto
frontier, prediction quality, curve gallery, structural fingerprints —
into a single self-contained Markdown document per run.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.analysis.curves import termination_histogram
from repro.analysis.pareto import pareto_frontier
from repro.analysis.progress import search_progress
from repro.analysis.queries import CommonsQuery
from repro.analysis.stats import (
    bit_frequency_profile,
    flops_accuracy_correlation,
    prediction_error_summary,
)
from repro.analysis.viz import sparkline
from repro.lineage.commons import DataCommons

__all__ = ["render_run_report", "write_run_report"]


def _table(headers: list[str], rows: list[list]) -> str:
    lines = ["| " + " | ".join(headers) + " |", "|" + "---|" * len(headers)]
    for row in rows:
        lines.append("| " + " | ".join(str(v) for v in row) + " |")
    return "\n".join(lines)


def render_run_report(commons: DataCommons, run_id: str, *, top_k: int = 5) -> str:
    """Render one run's full analysis as Markdown text."""
    run = commons.load_run(run_id)
    records = commons.load_models(run_id)
    query = CommonsQuery(records)
    max_epochs = max((r.max_epochs for r in records), default=25) or 25

    sections: list[str] = [f"# Run report: `{run_id}`", ""]

    # -- run summary ----------------------------------------------------------
    sections += [
        "## Summary",
        "",
        _table(
            ["field", "value"],
            [
                ["beam intensity", run.intensity],
                ["models evaluated", run.n_models],
                ["epochs trained", run.total_epochs_trained],
                ["epochs saved", run.total_epochs_saved],
                ["mean fitness", f"{query.mean_fitness():.2f}%"],
                ["notes", run.notes or "-"],
            ],
        ),
        "",
    ]

    # -- termination statistics -------------------------------------------------
    summary = termination_histogram(records, max_epochs=max_epochs)
    histogram_line = sparkline(summary.histogram) or "-"
    sections += [
        "## Early termination (prediction engine)",
        "",
        f"- terminated early: **{summary.percent_terminated:.0f}%** of models",
        f"- mean termination epoch: **{summary.mean_termination_epoch:.1f}**"
        if summary.histogram.sum()
        else "- mean termination epoch: n/a",
        f"- e_t histogram (epochs 1..{max_epochs}): `{histogram_line}`",
        "",
    ]

    # -- prediction quality -------------------------------------------------------
    try:
        errors = prediction_error_summary(records)
        sections += [
            "## Prediction quality",
            "",
            f"Over {errors.n} early-terminated models, the engine's final "
            f"prediction differed from the last measured fitness by "
            f"**{errors.mean_abs_error:.2f}%** on average "
            f"(max {errors.max_abs_error:.2f}%, RMSE {errors.rmse:.2f}%).",
            "",
        ]
    except ValueError:
        sections += ["## Prediction quality", "", "No early-terminated models.", ""]

    # -- pareto frontier -------------------------------------------------------------
    frontier = pareto_frontier(records)
    sections += [
        "## Pareto frontier (accuracy vs FLOPs)",
        "",
        _table(
            ["model", "accuracy %", "MFLOPs"],
            [
                [p.model_id, f"{p.fitness:.2f}", f"{p.flops / 1e6:.2f}"]
                for p in frontier
            ],
        ),
        "",
    ]

    # -- correlation ---------------------------------------------------------------
    corr = flops_accuracy_correlation(records)
    sections += [
        "## FLOPs vs accuracy",
        "",
        f"Spearman rho = **{corr.rho:+.2f}** (p = {corr.p_value:.3g}, n = {corr.n}; "
        f"{'significant' if corr.significant else 'not significant'} at alpha = 0.05).",
        "",
    ]

    # -- top models with curve gallery -------------------------------------------------
    rows = []
    for record in query.top_by_fitness(top_k):
        rows.append(
            [
                record.model_id,
                record.generation,
                f"{record.fitness:.2f}",
                record.epochs_trained,
                "yes" if record.terminated_early else "no",
                f"`{sparkline(record.fitness_history)}`",
            ]
        )
    sections += [
        f"## Top {top_k} models",
        "",
        _table(
            ["model", "generation", "fitness %", "epochs", "early stop", "curve"],
            rows,
        ),
        "",
    ]

    # -- search progress ------------------------------------------------------------
    progress = search_progress(records)
    sections += [
        "## Search progress",
        "",
        f"- best-so-far trajectory: `{sparkline(progress.trajectory)}`",
        f"- final best: **{progress.final_best:.2f}%**",
        f"- evaluations to 95% of total improvement: "
        f"**{progress.evaluations_to_95_percent}** of {len(progress.trajectory)}",
        f"- evaluations since last improvement: {progress.stagnant_tail}",
        f"- per-generation best: `{sparkline(progress.generation_best)}`",
        "",
    ]

    # -- structural fingerprint -----------------------------------------------------------
    top = query.top_by_fitness(max(top_k, 3))
    profile_top = bit_frequency_profile(top)
    profile_all = bit_frequency_profile(records)
    enriched = int(np.argmax(profile_top - profile_all))
    sections += [
        "## Structural fingerprint",
        "",
        f"- genome bit frequency, top models: `{sparkline(profile_top)}`",
        f"- genome bit frequency, all models: `{sparkline(profile_all)}`",
        f"- connection bit most enriched in successful models: **#{enriched}**",
        "",
    ]

    return "\n".join(sections)


def write_run_report(
    commons: DataCommons, run_id: str, path: str | Path, *, top_k: int = 5
) -> Path:
    """Render and write the Markdown report; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_run_report(commons, run_id, top_k=top_k), encoding="utf-8")
    return path
