"""Run-to-run comparison analytics.

The paper's headline evaluation is a *paired* comparison — A4NN vs the
standalone NAS on identical settings.  This module compares any two
published runs from record trails alone, so the same analysis works on
live results or on a commons loaded years later.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.pareto import ParetoPoint, hypervolume_2d, pareto_frontier
from repro.lineage.records import ModelRecord

__all__ = ["RunComparison", "compare_runs"]


@dataclass(frozen=True)
class RunComparison:
    """Headline deltas between two runs (conventionally A4NN vs baseline).

    Attributes
    ----------
    n_models:
        (models in a, models in b).
    epochs_trained:
        Total epochs per run.
    epochs_saved_percent:
        Relative epoch savings of run *a* vs run *b* in percent
        (positive = a trained fewer epochs).
    best_fitness:
        Best reported fitness per run.
    best_fitness_delta:
        ``best(a) − best(b)``.
    frontier_sizes:
        Pareto-frontier sizes per run.
    hypervolume_ratio:
        ``HV(a) / HV(b)`` over a shared reference box (NaN when either
        frontier is degenerate).
    mean_generation_fitness:
        Per-generation mean fitness arrays (index = generation).
    """

    n_models: tuple
    epochs_trained: tuple
    epochs_saved_percent: float
    best_fitness: tuple
    best_fitness_delta: float
    frontier_sizes: tuple
    hypervolume_ratio: float
    mean_generation_fitness: tuple

    def summary_lines(self, label_a: str = "A4NN", label_b: str = "baseline") -> list[str]:
        """Human-readable digest for reports."""
        return [
            f"{label_a}: {self.n_models[0]} models, {self.epochs_trained[0]} epochs, "
            f"best {self.best_fitness[0]:.2f}%",
            f"{label_b}: {self.n_models[1]} models, {self.epochs_trained[1]} epochs, "
            f"best {self.best_fitness[1]:.2f}%",
            f"epoch savings: {self.epochs_saved_percent:.1f}%",
            f"best-fitness delta: {self.best_fitness_delta:+.2f}%",
            f"hypervolume ratio: {self.hypervolume_ratio:.2f}",
        ]


def _generation_means(records: list[ModelRecord]) -> np.ndarray:
    by_generation: dict[int, list[float]] = {}
    for r in records:
        if r.fitness is not None:
            by_generation.setdefault(r.generation, []).append(float(r.fitness))
    if not by_generation:
        return np.zeros(0)
    return np.array(
        [np.mean(by_generation[g]) for g in sorted(by_generation)], dtype=float
    )


def _shared_hypervolume(
    frontier_a: list[ParetoPoint], frontier_b: list[ParetoPoint]
) -> float:
    """HV ratio over the union's reference box."""
    all_points = frontier_a + frontier_b
    if not frontier_a or not frontier_b:
        return float("nan")
    ref_flops = max(p.flops for p in all_points)
    ref_fitness = min(p.fitness for p in all_points) - 1.0
    hv_a = hypervolume_2d(frontier_a, ref_fitness=ref_fitness, ref_flops=ref_flops)
    hv_b = hypervolume_2d(frontier_b, ref_fitness=ref_fitness, ref_flops=ref_flops)
    if hv_b == 0:
        return float("nan")
    return hv_a / hv_b


def compare_runs(
    records_a: list[ModelRecord], records_b: list[ModelRecord]
) -> RunComparison:
    """Compare two runs' record trails (a vs b)."""
    if not records_a or not records_b:
        raise ValueError("both runs need at least one record")
    epochs_a = sum(r.epochs_trained for r in records_a)
    epochs_b = sum(r.epochs_trained for r in records_b)
    evaluated_a = [r for r in records_a if r.fitness is not None and r.flops is not None]
    evaluated_b = [r for r in records_b if r.fitness is not None and r.flops is not None]
    if not evaluated_a or not evaluated_b:
        raise ValueError("both runs need at least one evaluated record")
    best_a = max(float(r.fitness) for r in evaluated_a)
    best_b = max(float(r.fitness) for r in evaluated_b)
    frontier_a = pareto_frontier(evaluated_a)
    frontier_b = pareto_frontier(evaluated_b)
    return RunComparison(
        n_models=(len(records_a), len(records_b)),
        epochs_trained=(epochs_a, epochs_b),
        epochs_saved_percent=100.0 * (epochs_b - epochs_a) / epochs_b if epochs_b else 0.0,
        best_fitness=(best_a, best_b),
        best_fitness_delta=best_a - best_b,
        frontier_sizes=(len(frontier_a), len(frontier_b)),
        hypervolume_ratio=_shared_hypervolume(frontier_a, frontier_b),
        mean_generation_fitness=(
            _generation_means(records_a),
            _generation_means(records_b),
        ),
    )
