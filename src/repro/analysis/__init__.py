"""The Analyzer (paper §2.4): analytics over searches and the commons.

Pareto frontiers (:mod:`repro.analysis.pareto`), learning-curve shape
and termination analytics (:mod:`repro.analysis.curves`), fluent commons
queries (:mod:`repro.analysis.queries`), architecture/curve rendering
(:mod:`repro.analysis.viz`), and the statistical questions the paper's
conclusions pose (:mod:`repro.analysis.stats`).
"""

from repro.analysis.compare import RunComparison, compare_runs
from repro.analysis.curves import (
    CurveShape,
    TerminationSummary,
    describe_curve,
    termination_histogram,
)
from repro.analysis.pareto import (
    ParetoPoint,
    frontier_table,
    hypervolume_2d,
    pareto_frontier,
)
from repro.analysis.progress import SearchProgress, best_so_far, search_progress
from repro.analysis.queries import (
    CommonsQuery,
    SkipReport,
    TrainingMatrix,
    records_to_table,
    skip_report,
    training_matrix,
)
from repro.analysis.report import render_run_report, write_run_report
from repro.analysis.stats import (
    CorrelationResult,
    bit_frequency_profile,
    flops_accuracy_correlation,
    prediction_error_summary,
    structural_similarity,
)
from repro.analysis.viz import ascii_curve, phase_graph, render_network, render_phase, sparkline

__all__ = [
    "RunComparison",
    "compare_runs",
    "CurveShape",
    "TerminationSummary",
    "describe_curve",
    "termination_histogram",
    "ParetoPoint",
    "frontier_table",
    "hypervolume_2d",
    "pareto_frontier",
    "SearchProgress",
    "best_so_far",
    "search_progress",
    "CommonsQuery",
    "records_to_table",
    "TrainingMatrix",
    "training_matrix",
    "SkipReport",
    "skip_report",
    "render_run_report",
    "write_run_report",
    "CorrelationResult",
    "bit_frequency_profile",
    "flops_accuracy_correlation",
    "prediction_error_summary",
    "structural_similarity",
    "ascii_curve",
    "phase_graph",
    "render_network",
    "render_phase",
    "sparkline",
]
