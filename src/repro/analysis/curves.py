"""Learning-curve shape analytics.

The paper's Analyzer lets scientists "study NN performance and evolution
throughout training [and] the shape of fitness curves".  These helpers
quantify curve shape (monotonicity, concavity, plateau onset, noise) and
summarize termination-epoch distributions (Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CurveShape", "describe_curve", "termination_histogram", "TerminationSummary"]


@dataclass(frozen=True)
class CurveShape:
    """Shape descriptors of one fitness learning curve.

    Attributes
    ----------
    n_epochs:
        Curve length.
    start, final, best:
        First / last / maximum fitness values.
    total_gain:
        ``final - start``.
    monotonicity:
        Fraction of steps that do not decrease (1.0 = monotone).
    concave_fraction:
        Fraction of interior points with negative discrete curvature
        (well-behaved curves are concave-down, cf. §2.1.1).
    plateau_epoch:
        First epoch after which the curve stays within 1% of its final
        value.
    noise_rms:
        RMS of the detrended first differences (measurement noise
        proxy).
    """

    n_epochs: int
    start: float
    final: float
    best: float
    total_gain: float
    monotonicity: float
    concave_fraction: float
    plateau_epoch: int
    noise_rms: float


def describe_curve(curve) -> CurveShape:
    """Compute :class:`CurveShape` for a fitness history (1-based epochs)."""
    y = np.asarray(list(curve), dtype=float)
    if y.ndim != 1 or y.size < 2:
        raise ValueError(f"curve must be 1-D with >= 2 points, got shape {y.shape}")
    diffs = np.diff(y)
    monotonicity = float(np.mean(diffs >= 0))
    if y.size >= 3:
        curvature = np.diff(y, n=2)
        concave_fraction = float(np.mean(curvature <= 0))
    else:
        concave_fraction = 1.0

    tolerance = max(abs(y[-1]) * 0.01, 1e-9)
    within = np.abs(y - y[-1]) <= tolerance
    plateau_epoch = y.size
    for i in range(y.size):
        if within[i:].all():
            plateau_epoch = i + 1  # 1-based
            break

    noise = diffs - np.mean(diffs)
    return CurveShape(
        n_epochs=int(y.size),
        start=float(y[0]),
        final=float(y[-1]),
        best=float(y.max()),
        total_gain=float(y[-1] - y[0]),
        monotonicity=monotonicity,
        concave_fraction=concave_fraction,
        plateau_epoch=int(plateau_epoch),
        noise_rms=float(np.sqrt(np.mean(noise**2))),
    )


@dataclass(frozen=True)
class TerminationSummary:
    """Fig. 8-style summary of when training terminated early.

    Attributes
    ----------
    histogram:
        Counts per termination epoch (index 0 = epoch 1).
    percent_terminated:
        Share of models the engine stopped early, in percent.
    mean_termination_epoch:
        Mean ``e_t`` over early-terminated models (NaN if none).
    """

    histogram: np.ndarray
    percent_terminated: float
    mean_termination_epoch: float


def termination_histogram(records, *, max_epochs: int) -> TerminationSummary:
    """Summarize termination epochs over model records.

    ``records`` is any iterable with ``terminated_early`` and
    ``epochs_trained`` attributes (model records or individuals'
    results).
    """
    records = list(records)
    if not records:
        raise ValueError("no records supplied")
    histogram = np.zeros(max_epochs, dtype=int)
    terminated = []
    for r in records:
        if r.terminated_early:
            e_t = int(r.epochs_trained)
            if not 1 <= e_t <= max_epochs:
                raise ValueError(f"termination epoch {e_t} outside [1, {max_epochs}]")
            histogram[e_t - 1] += 1
            terminated.append(e_t)
    return TerminationSummary(
        histogram=histogram,
        percent_terminated=100.0 * len(terminated) / len(records),
        mean_termination_epoch=float(np.mean(terminated)) if terminated else float("nan"),
    )
