"""Terminal-friendly visualization of NN structures and curves.

The paper's Analyzer renders NN architectures (Figs. 3 and 10) and
learning-curve shapes interactively.  Offline, we render to text: an
architecture diagram of a decoded network (phase DAGs included), an
ASCII sparkline/plot of learning curves, and a :mod:`networkx` export of
phase connectivity for downstream graph tooling.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.nas.decoder import PhaseBlock
from repro.nas.genome import Genome, PhaseGenome
from repro.nn.network import Network

__all__ = ["render_network", "render_phase", "phase_graph", "ascii_curve", "sparkline"]

_BLOCKS = "▁▂▃▄▅▆▇█"


def render_phase(phase: PhaseGenome, *, indent: str = "") -> str:
    """Text diagram of one phase's node DAG."""
    matrix = phase.connection_matrix()
    lines = []
    for j in range(phase.n_nodes):
        preds = [i for i in range(j) if matrix[i, j]]
        source = " + ".join(f"node{i}" for i in preds) if preds else "input"
        lines.append(f"{indent}node{j} <- {source}")
    sinks = [j for j in range(phase.n_nodes) if not matrix[j].any()]
    output = " + ".join(f"node{j}" for j in sinks)
    if phase.skip:
        output += " + input (skip)"
    lines.append(f"{indent}output <- {output}")
    return "\n".join(lines)


def render_network(network: Network) -> str:
    """Architecture diagram: layer chain with phase DAGs expanded."""
    lines = [f"Architecture {network.name!r}"]
    shape = network.input_shape
    lines.append(f"  input {tuple(shape) if shape else '?'}")
    for idx, layer in enumerate(network.layers):
        if isinstance(layer, PhaseBlock):
            lines.append(
                f"  [{idx}] PhaseBlock {layer.in_channels}->{layer.out_channels}ch, "
                f"{layer.genome.n_nodes} nodes, bits={''.join(map(str, layer.genome.bits))}"
            )
            lines.append(render_phase(layer.genome, indent="        "))
        else:
            lines.append(f"  [{idx}] {layer!r}")
        if shape is not None:
            shape = layer.output_shape(shape)
            lines.append(f"        -> {tuple(shape)}")
    return "\n".join(lines)


def phase_graph(genome: Genome) -> nx.DiGraph:
    """The whole genome as one networkx DAG (nodes tagged by phase)."""
    graph = nx.DiGraph()
    for p_idx, phase in enumerate(genome.phases):
        matrix = phase.connection_matrix()
        names = [f"p{p_idx}n{j}" for j in range(phase.n_nodes)]
        in_name, out_name = f"p{p_idx}in", f"p{p_idx}out"
        graph.add_node(in_name, phase=p_idx, role="input")
        graph.add_node(out_name, phase=p_idx, role="output")
        for j, name in enumerate(names):
            graph.add_node(name, phase=p_idx, role="node")
            preds = [i for i in range(j) if matrix[i, j]]
            if preds:
                for i in preds:
                    graph.add_edge(names[i], name)
            else:
                graph.add_edge(in_name, name)
            if not matrix[j].any():
                graph.add_edge(name, out_name)
        if phase.skip:
            graph.add_edge(in_name, out_name, skip=True)
        if p_idx > 0:
            graph.add_edge(f"p{p_idx - 1}out", in_name, pool=True)
    return graph


def sparkline(values) -> str:
    """One-line unicode sparkline of a numeric series."""
    y = np.asarray(list(values), dtype=float)
    if y.size == 0:
        return ""
    lo, hi = float(y.min()), float(y.max())
    if hi - lo < 1e-12:
        return _BLOCKS[0] * y.size
    scaled = (y - lo) / (hi - lo) * (len(_BLOCKS) - 1)
    return "".join(_BLOCKS[int(round(s))] for s in scaled)


def ascii_curve(values, *, height: int = 10, width: int | None = None) -> str:
    """Multi-line ASCII plot of a learning curve (epochs on x)."""
    y = np.asarray(list(values), dtype=float)
    if y.size == 0:
        return "(empty curve)"
    if width is not None and y.size > width:
        # down-sample by averaging buckets
        edges = np.linspace(0, y.size, width + 1).astype(int)
        y = np.array([y[a:b].mean() for a, b in zip(edges[:-1], edges[1:])])
    lo, hi = float(y.min()), float(y.max())
    span = hi - lo if hi > lo else 1.0
    rows = []
    for level in range(height, 0, -1):
        threshold = lo + span * (level - 0.5) / height
        row = "".join("#" if v >= threshold else " " for v in y)
        label = f"{lo + span * level / height:6.1f} |"
        rows.append(label + row)
    rows.append(" " * 7 + "-" * y.size)
    rows.append(" " * 7 + f"1..{len(values)} (epochs)")
    return "\n".join(rows)
