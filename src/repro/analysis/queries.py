"""Query interface over the data commons.

The paper ships its commons with "a Python script demonstrating how to
load the data into a Pandas DataFrame and calculate metrics of
interest".  This module is that capability as a library: tabular export
(list-of-dicts / structured numpy), attribute filters, and the summary
metrics the paper mentions (mean accuracy, learning-rate-style gain per
epoch).
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from repro.lineage.commons import DataCommons
from repro.lineage.records import ModelRecord

__all__ = ["CommonsQuery", "records_to_table"]


def records_to_table(records: Iterable[ModelRecord]) -> list[dict]:
    """Flatten record trails into analysis-friendly rows."""
    rows = []
    for r in records:
        history = np.asarray(r.fitness_history, dtype=float)
        gain_per_epoch = (
            float((history[-1] - history[0]) / max(len(history) - 1, 1))
            if history.size >= 2
            else 0.0
        )
        rows.append(
            {
                "model_id": r.model_id,
                "generation": r.generation,
                "fitness": r.fitness,
                "measured_fitness": r.measured_fitness,
                "flops": r.flops,
                "epochs_trained": r.epochs_trained,
                "epochs_saved": r.epochs_saved,
                "terminated_early": r.terminated_early,
                "mean_accuracy": float(history.mean()) if history.size else None,
                "gain_per_epoch": gain_per_epoch,
                "n_predictions": len(r.prediction_history),
                "genome_bits": "".join(str(b) for b in r.genome["bits"]),
            }
        )
    return rows


class CommonsQuery:
    """Fluent filters over one run's (or the whole commons') records.

    >>> q = CommonsQuery.from_commons(commons, run_id)
    >>> best = q.where(lambda r: r.terminated_early).top_by_fitness(5)
    """

    def __init__(self, records: Iterable[ModelRecord]) -> None:
        self.records = list(records)

    @classmethod
    def from_commons(cls, commons: DataCommons, run_id: str | None = None) -> "CommonsQuery":
        """All records of one run, or of every run when ``run_id`` is None."""
        if run_id is not None:
            return cls(commons.load_models(run_id))
        return cls(record for _, record in commons.iter_all_models())

    def where(self, predicate: Callable[[ModelRecord], bool]) -> "CommonsQuery":
        """Keep records satisfying ``predicate``."""
        return CommonsQuery([r for r in self.records if predicate(r)])

    def terminated_early(self) -> "CommonsQuery":
        return self.where(lambda r: r.terminated_early)

    def in_generation(self, generation: int) -> "CommonsQuery":
        return self.where(lambda r: r.generation == generation)

    def fitness_at_least(self, threshold: float) -> "CommonsQuery":
        return self.where(lambda r: r.fitness is not None and r.fitness >= threshold)

    def top_by_fitness(self, k: int) -> list[ModelRecord]:
        """The ``k`` highest-fitness records."""
        scored = [r for r in self.records if r.fitness is not None]
        return sorted(scored, key=lambda r: -r.fitness)[:k]

    def table(self) -> list[dict]:
        """Flattened rows (see :func:`records_to_table`)."""
        return records_to_table(self.records)

    # -- aggregate metrics ------------------------------------------------------

    def mean_fitness(self) -> float:
        values = [r.fitness for r in self.records if r.fitness is not None]
        if not values:
            raise ValueError("no evaluated records in query")
        return float(np.mean(values))

    def mean_epochs_trained(self) -> float:
        if not self.records:
            raise ValueError("no records in query")
        return float(np.mean([r.epochs_trained for r in self.records]))

    def total_epochs_saved(self) -> int:
        return sum(r.epochs_saved for r in self.records)

    def __len__(self) -> int:
        return len(self.records)
