"""Query interface over the data commons.

The paper ships its commons with "a Python script demonstrating how to
load the data into a Pandas DataFrame and calculate metrics of
interest".  This module is that capability as a library: tabular export
(list-of-dicts / structured numpy), attribute filters, and the summary
metrics the paper mentions (mean accuracy, learning-rate-style gain per
epoch).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from repro.lineage.commons import DataCommons
from repro.lineage.records import ModelRecord
from repro.nas.genome import PhaseGenome, n_connection_bits

__all__ = [
    "CommonsQuery",
    "records_to_table",
    "TrainingMatrix",
    "training_matrix",
    "SkipReport",
    "skip_report",
]


def records_to_table(records: Iterable[ModelRecord]) -> list[dict]:
    """Flatten record trails into analysis-friendly rows."""
    rows = []
    for r in records:
        history = np.asarray(r.fitness_history, dtype=float)
        gain_per_epoch = (
            float((history[-1] - history[0]) / max(len(history) - 1, 1))
            if history.size >= 2
            else 0.0
        )
        rows.append(
            {
                "model_id": r.model_id,
                "generation": r.generation,
                "fitness": r.fitness,
                "measured_fitness": r.measured_fitness,
                "flops": r.flops,
                "epochs_trained": r.epochs_trained,
                "epochs_saved": r.epochs_saved,
                "terminated_early": r.terminated_early,
                "mean_accuracy": float(history.mean()) if history.size else None,
                "gain_per_epoch": gain_per_epoch,
                "n_predictions": len(r.prediction_history),
                "genome_bits": "".join(str(b) for b in r.genome["bits"]),
            }
        )
    return rows


@dataclass(frozen=True)
class TrainingMatrix:
    """The surrogate predictor's training set, exported from record trails.

    ``features`` rows match :func:`repro.nas.surrogate.genome_features`
    exactly (same column order; see ``feature_names``), so an offline
    refit over the commons reproduces the in-run predictor.
    """

    features: np.ndarray  # (n, d) float
    fitness: np.ndarray  # (n,) float
    model_ids: np.ndarray  # (n,) int
    feature_names: tuple


def training_matrix(
    records: Iterable[ModelRecord], *, full_budget_only: bool = True
) -> TrainingMatrix:
    """Vectorized ``(features, fitness)`` export for the surrogate predictor.

    One pass over the records builds the connection-bit matrix and reduces
    it with array sums; per-phase DAG depth (the only non-linear feature)
    is memoized per unique phase bit pattern, so the whole export is
    O(records) plus one depth computation per *distinct* phase topology.

    ``full_budget_only`` keeps exactly the rows the in-run
    :class:`~repro.nas.surrogate.FitnessPredictor` trains on: clean
    (non-quarantined) full-budget evaluations with at least one trained
    epoch — probes and zero-budget skips are excluded so the exported
    model is never fit to its own predictions.
    """
    from repro.nas.surrogate import genome_feature_names, phase_depth

    eligible = [
        r
        for r in records
        if r.fitness is not None
        and r.flops is not None
        and not r.quarantined
        and (
            not full_budget_only
            or (r.budget_assigned is None and r.epochs_trained > 0)
        )
    ]
    if not eligible:
        return TrainingMatrix(
            features=np.zeros((0, 0), dtype=float),
            fitness=np.zeros(0, dtype=float),
            model_ids=np.zeros(0, dtype=int),
            feature_names=(),
        )
    nodes_per_phase = tuple(eligible[0].genome["nodes_per_phase"])
    if any(tuple(r.genome["nodes_per_phase"]) != nodes_per_phase for r in eligible):
        raise ValueError("training_matrix requires a homogeneous search space")

    bits = np.asarray([r.genome["bits"] for r in eligible], dtype=float)
    flops = np.asarray([r.flops for r in eligible], dtype=float)
    columns = [np.ones(len(eligible))]
    cursor = 0
    total_connections = np.zeros(len(eligible))
    total_skips = np.zeros(len(eligible))
    depth_cache: dict[tuple, float] = {}
    for n_nodes in nodes_per_phase:
        width = n_connection_bits(n_nodes) + 1
        phase_bits = bits[:, cursor : cursor + width]
        cursor += width
        connections = phase_bits[:, :-1].sum(axis=1)
        skips = phase_bits[:, -1]
        patterns, inverse = np.unique(phase_bits.astype(int), axis=0, return_inverse=True)
        depths = np.empty(len(patterns))
        for i, pattern in enumerate(patterns):
            key = tuple(pattern)
            if key not in depth_cache:
                depth_cache[key] = float(phase_depth(PhaseGenome(n_nodes, key)))
            depths[i] = depth_cache[key]
        columns += [connections, skips, depths[inverse]]
        total_connections += connections
        total_skips += skips
    max_connections = sum(n_connection_bits(n) for n in nodes_per_phase)
    max_skips = len(nodes_per_phase)
    density = np.clip(
        (total_connections + total_skips) / max(max_connections + max_skips, 1),
        0.0,
        1.0,
    )
    columns += [total_connections, total_skips, density, np.log10(1.0 + flops)]
    return TrainingMatrix(
        features=np.column_stack(columns),
        fitness=np.asarray([r.fitness for r in eligible], dtype=float),
        model_ids=np.asarray([r.model_id for r in eligible], dtype=int),
        feature_names=tuple(genome_feature_names(nodes_per_phase)),
    )


@dataclass(frozen=True)
class SkipReport:
    """How well the surrogate's skip decisions matched the run's outcome.

    Ground truth for "loser" is Pareto dominance against the run's clean
    full-budget records: a record is a true loser when at least one of
    them dominates its ``(fitness, flops)``.  Probed/skipped records are
    judged by their *predicted* fitness (their recorded fitness is a
    reduced-budget measurement, which would overstate how bad they were).
    """

    n_scored: int  # candidates the predictor scored
    n_flagged: int  # scored candidates flagged as predicted losers
    n_probed: int  # flagged candidates actually given a reduced budget
    n_true_losers: int  # scored candidates dominated by the final records
    precision: float | None  # flagged -> true loser
    recall: float | None  # true loser -> flagged
    mae: float | None  # |predicted - measured| on full-budget scored records
    n_mae: int


def skip_report(records: Iterable[ModelRecord]) -> SkipReport:
    """Per-run skip precision/recall and prediction error (vectorized)."""
    records = list(records)
    reference = [
        r
        for r in records
        if not r.quarantined
        and r.budget_assigned is None
        and r.fitness is not None
        and r.flops is not None
    ]
    ref_fitness = np.asarray([r.fitness for r in reference], dtype=float)
    ref_flops = np.asarray([r.flops for r in reference], dtype=float)

    def dominated(fitness: float, flops: float) -> bool:
        if not reference:
            return False
        at_least = (ref_fitness >= fitness) & (ref_flops <= flops)
        strict = (ref_fitness > fitness) | (ref_flops < flops)
        return bool(np.any(at_least & strict))

    scored = [r for r in records if r.predicted_fitness is not None]
    flagged = [r for r in scored if r.skip_reason is not None]
    n_probed = sum(1 for r in flagged if r.budget_assigned is not None)

    true_losers = 0
    caught = 0
    errors = []
    for r in scored:
        estimate = (
            r.predicted_fitness if r.budget_assigned is not None else r.fitness
        )
        loser = estimate is not None and dominated(float(estimate), float(r.flops))
        true_losers += loser
        caught += loser and r.skip_reason is not None
        if r.budget_assigned is None and r.fitness is not None:
            errors.append(abs(float(r.predicted_fitness) - float(r.fitness)))
    return SkipReport(
        n_scored=len(scored),
        n_flagged=len(flagged),
        n_probed=n_probed,
        n_true_losers=true_losers,
        precision=(
            sum(1 for r in flagged if _flagged_loser(r, dominated)) / len(flagged)
            if flagged
            else None
        ),
        recall=caught / true_losers if true_losers else None,
        mae=float(np.mean(errors)) if errors else None,
        n_mae=len(errors),
    )


def _flagged_loser(record: ModelRecord, dominated: Callable[[float, float], bool]) -> bool:
    estimate = (
        record.predicted_fitness
        if record.budget_assigned is not None
        else record.fitness
    )
    return estimate is not None and dominated(float(estimate), float(record.flops))


class CommonsQuery:
    """Fluent filters over one run's (or the whole commons') records.

    >>> q = CommonsQuery.from_commons(commons, run_id)
    >>> best = q.where(lambda r: r.terminated_early).top_by_fitness(5)
    """

    def __init__(self, records: Iterable[ModelRecord]) -> None:
        self.records = list(records)

    @classmethod
    def from_commons(cls, commons: DataCommons, run_id: str | None = None) -> "CommonsQuery":
        """All records of one run, or of every run when ``run_id`` is None."""
        if run_id is not None:
            return cls(commons.load_models(run_id))
        return cls(record for _, record in commons.iter_all_models())

    def where(self, predicate: Callable[[ModelRecord], bool]) -> "CommonsQuery":
        """Keep records satisfying ``predicate``."""
        return CommonsQuery([r for r in self.records if predicate(r)])

    def terminated_early(self) -> "CommonsQuery":
        return self.where(lambda r: r.terminated_early)

    def in_generation(self, generation: int) -> "CommonsQuery":
        return self.where(lambda r: r.generation == generation)

    def fitness_at_least(self, threshold: float) -> "CommonsQuery":
        return self.where(lambda r: r.fitness is not None and r.fitness >= threshold)

    def top_by_fitness(self, k: int) -> list[ModelRecord]:
        """The ``k`` highest-fitness records."""
        scored = [r for r in self.records if r.fitness is not None]
        return sorted(scored, key=lambda r: -r.fitness)[:k]

    def table(self) -> list[dict]:
        """Flattened rows (see :func:`records_to_table`)."""
        return records_to_table(self.records)

    # -- aggregate metrics ------------------------------------------------------

    def mean_fitness(self) -> float:
        values = [r.fitness for r in self.records if r.fitness is not None]
        if not values:
            raise ValueError("no evaluated records in query")
        return float(np.mean(values))

    def mean_epochs_trained(self) -> float:
        if not self.records:
            raise ValueError("no records in query")
        return float(np.mean([r.epochs_trained for r in self.records]))

    def total_epochs_saved(self) -> int:
        return sum(r.epochs_saved for r in self.records)

    def __len__(self) -> int:
        return len(self.records)
