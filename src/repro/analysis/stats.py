"""Aggregate statistics the paper's conclusions ask about.

§6 closes with analysis questions the commons should answer — e.g. *"Is
there a significant correlation between high FLOPS and high validation
accuracy?"* and *"Are there structural similarities between successful
architectures?"*.  These helpers answer them over record trails.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sp_stats

from repro.lineage.records import ModelRecord
from repro.nas.genome import Genome

__all__ = [
    "CorrelationResult",
    "flops_accuracy_correlation",
    "structural_similarity",
    "bit_frequency_profile",
    "prediction_error_summary",
]


@dataclass(frozen=True)
class CorrelationResult:
    """Spearman correlation with its significance."""

    rho: float
    p_value: float
    n: int

    @property
    def significant(self) -> bool:
        """Conventional alpha = 0.05."""
        return self.p_value < 0.05


def flops_accuracy_correlation(records: list[ModelRecord]) -> CorrelationResult:
    """Spearman rank correlation between FLOPs and validation accuracy."""
    pairs = [
        (r.flops, r.fitness)
        for r in records
        if r.flops is not None and r.fitness is not None
    ]
    if len(pairs) < 3:
        raise ValueError(f"need >= 3 evaluated records, have {len(pairs)}")
    flops, fitness = map(np.asarray, zip(*pairs))
    rho, p = sp_stats.spearmanr(flops, fitness)
    return CorrelationResult(rho=float(rho), p_value=float(p), n=len(pairs))


def _bits(record: ModelRecord) -> np.ndarray:
    return np.asarray(Genome.from_dict(record.genome).to_bits(), dtype=int)


def structural_similarity(a: ModelRecord, b: ModelRecord) -> float:
    """Genome similarity in [0, 1]: 1 − normalized Hamming distance."""
    bits_a, bits_b = _bits(a), _bits(b)
    if bits_a.shape != bits_b.shape:
        raise ValueError("genomes have different layouts")
    return float(np.mean(bits_a == bits_b))


def bit_frequency_profile(records: list[ModelRecord]) -> np.ndarray:
    """Per-bit set frequency across records — the 'structural fingerprint'.

    Comparing the profile of top-fitness models against the whole
    archive shows which connections successful architectures share.
    """
    if not records:
        raise ValueError("no records supplied")
    stacked = np.stack([_bits(r) for r in records])
    return stacked.mean(axis=0)


@dataclass(frozen=True)
class PredictionErrorSummary:
    """How close converged predictions were to measured final fitness."""

    n: int
    mean_abs_error: float
    max_abs_error: float
    rmse: float


def prediction_error_summary(records: list[ModelRecord]) -> PredictionErrorSummary:
    """Compare engine predictions with measured fitness at termination.

    Only early-terminated models contribute — for them, ``fitness`` is
    the prediction and ``measured_fitness`` the last observed value.
    """
    errors = [
        abs(r.fitness - r.measured_fitness)
        for r in records
        if r.terminated_early
        and r.fitness is not None
        and r.measured_fitness is not None
    ]
    if not errors:
        raise ValueError("no early-terminated records with both values")
    errors = np.asarray(errors)
    return PredictionErrorSummary(
        n=len(errors),
        mean_abs_error=float(errors.mean()),
        max_abs_error=float(errors.max()),
        rmse=float(np.sqrt(np.mean(errors**2))),
    )
