"""Resuming interrupted searches from the data commons.

A paper-scale NAS run takes tens of (simulated) hours; real deployments
get pre-empted.  Because every record trail lands in the commons as its
model finishes, and every stochastic draw in the search derives from the
root seed plus stable keys (generation number, model id), a run can be
resumed from its last *complete* generation and will produce exactly the
archive an uninterrupted run would have.

The resume path reconstructs :class:`~repro.nas.population.Individual`
objects from published :class:`~repro.lineage.records.ModelRecord`
trails, replays NSGA-II environmental selection over them (deterministic
given the records), and hands the search a
:class:`~repro.nas.search.SearchState` to continue from.
"""

from __future__ import annotations

import numpy as np

from repro.core.plugin import TrainingResult
from repro.lineage.commons import DataCommons
from repro.lineage.records import ModelRecord
from repro.nas.evaluation import effective_budget
from repro.nas.genome import Genome
from repro.nas.nsga2 import environmental_selection, pareto_front_mask
from repro.nas.population import Individual, Population
from repro.nas.search import GenerationStats, SearchState, steady_insert
from repro.utils.logging import get_logger

__all__ = ["individual_from_record", "rebuild_search_state", "resume_workflow"]

_LOG = get_logger("workflow.resume")


def individual_from_record(record: ModelRecord) -> Individual:
    """Reconstruct an evaluated individual from its record trail."""
    if record.fitness is None or record.flops is None:
        raise ValueError(f"model {record.model_id} record is incomplete")
    # surrogate allocator decisions are replayed from the record, never
    # recomputed — resumed runs keep the original predictions even though
    # the predictor is refit from a prefix of the data
    predicted = {
        "predicted_fitness": record.predicted_fitness,
        "predicted_rank": record.predicted_rank,
        "budget_assigned": record.budget_assigned,
        "skip_reason": record.skip_reason,
    }
    if record.quarantined:
        # quarantined candidates carry penalized objectives but no
        # training result; rebuilding one keeps the resumed archive's
        # epoch budget honest
        return Individual(
            genome=Genome.from_dict(record.genome),
            model_id=record.model_id,
            generation=record.generation,
            fitness=float(record.fitness),
            flops=int(record.flops),
            quarantined=True,
            fault_events=[dict(e) for e in record.fault_events],
            **predicted,
        )
    if record.budget_assigned is not None and int(record.budget_assigned) <= 0:
        # zero-budget skip: the allocator pre-filled the objectives from
        # its prediction and the model never reached an evaluator, so
        # there is no training result to rebuild
        return Individual(
            genome=Genome.from_dict(record.genome),
            model_id=record.model_id,
            generation=record.generation,
            fitness=float(record.fitness),
            flops=int(record.flops),
            logical_tick=record.logical_tick,
            **predicted,
        )
    result = TrainingResult(
        fitness=float(record.fitness),
        epochs_trained=int(record.epochs_trained),
        terminated_early=bool(record.terminated_early),
        fitness_history=list(record.fitness_history),
        prediction_history=list(record.prediction_history),
        measured_fitness=float(record.measured_fitness)
        if record.measured_fitness is not None
        else float(record.fitness),
        engine_overhead_seconds=float(record.engine_overhead_seconds),
    )
    result._max_epochs = int(record.max_epochs)
    epoch_seconds = [
        float(e["epoch_seconds"]) if e.get("epoch_seconds") is not None else 0.0
        for e in record.epochs
    ]
    return Individual(
        genome=Genome.from_dict(record.genome),
        model_id=record.model_id,
        generation=record.generation,
        fitness=float(record.fitness),
        flops=int(record.flops),
        result=result,
        epoch_seconds=epoch_seconds,
        cache_hit=bool(record.cache_hit),
        cache_source=record.cache_source,
        logical_tick=record.logical_tick,
        **predicted,
    )


def _batch_stats(
    generation: int,
    evaluated: list[Individual],
    pop: Population,
    max_epochs: int | None = None,
) -> GenerationStats:
    fitnesses = [float(m.fitness) for m in evaluated]
    completed = [m for m in evaluated if m.result]
    epochs = sum(m.result.epochs_trained for m in completed)
    budget = sum(m.result._max_epochs for m in completed)
    skipped = 0
    if max_epochs is not None:
        skipped = sum(
            max_epochs - effective_budget(m, max_epochs)
            for m in evaluated
            if not m.quarantined
        )
    return GenerationStats(
        generation=generation,
        n_evaluated=len(evaluated),
        best_fitness=max(fitnesses),
        mean_fitness=float(np.mean(fitnesses)),
        epochs_trained=epochs,
        epochs_saved=budget - epochs,
        pareto_size=int(pareto_front_mask(pop.objective_array()).sum()),
        n_quarantined=sum(1 for m in evaluated if m.quarantined),
        n_cache_hits=sum(1 for m in evaluated if m.cache_hit),
        epochs_skipped=skipped,
    )


def _rebuild_steady(
    records: list[ModelRecord],
    population_size: int,
    offspring_per_generation: int,
    max_epochs: int | None = None,
) -> SearchState:
    """Steady-mode rebuild: replay one-in/one-out commits in tick order.

    Steady ticks equal model ids by construction, so the resumable
    prefix is the maximal contiguous run of complete records starting at
    model 0, cut back to a whole stats chunk so pseudo-generation stats
    stay exact.  Models past the cut are re-evaluated identically on
    resume (the logical clock re-breeds them from the same states).
    """
    ordered = sorted(records, key=lambda r: r.model_id)
    prefix: list[ModelRecord] = []
    for expected, record in enumerate(ordered):
        if record.model_id != expected or record.fitness is None or record.flops is None:
            break
        if record.logical_tick is not None and record.logical_tick != expected:
            raise ValueError(
                f"model {record.model_id} carries logical_tick "
                f"{record.logical_tick}, expected {expected}"
            )
        prefix.append(record)
    if len(prefix) < population_size:
        raise ValueError("initial population incomplete; nothing to resume from")
    chunks = 1 + (len(prefix) - population_size) // offspring_per_generation
    usable = population_size + (chunks - 1) * offspring_per_generation
    prefix = prefix[:usable]

    members: list[Individual] = []
    archive_members: list[Individual] = []
    stats: list[GenerationStats] = []
    chunk: list[Individual] = []
    for tick, record in enumerate(prefix):
        individual = individual_from_record(record)
        individual.logical_tick = tick
        archive_members.append(individual)
        members = steady_insert(members, individual, population_size)
        chunk.append(individual)
        committed = tick + 1
        if committed == population_size or (
            committed > population_size
            and (committed - population_size) % offspring_per_generation == 0
        ):
            generation = (
                0
                if committed == population_size
                else (committed - population_size) // offspring_per_generation
            )
            stats.append(_batch_stats(generation, chunk, Population(members), max_epochs))
            chunk = []
    return SearchState(
        population=Population(members),
        archive=Population(archive_members),
        next_generation=len(stats),
        next_model_id=usable,
        generation_stats=stats,
    )


def rebuild_search_state(
    records: list[ModelRecord],
    *,
    population_size: int,
    offspring_per_generation: int,
    evolution: str = "barrier",
    max_epochs: int | None = None,
) -> SearchState:
    """Rebuild the search state from the complete generations in ``records``.

    Incomplete trailing generations (interrupted mid-evaluation) are
    dropped; their models will be re-evaluated identically on resume.
    In steady mode the state is rebuilt by replaying the one-in/one-out
    commits in logical-tick order instead of per-generation batches.
    ``max_epochs`` (the full per-model budget) is needed to rebuild the
    surrogate ``epochs_skipped`` stat; ``None`` reports zero skips.
    """
    if evolution == "steady":
        return _rebuild_steady(
            records, population_size, offspring_per_generation, max_epochs
        )
    by_generation: dict[int, list[ModelRecord]] = {}
    for record in records:
        by_generation.setdefault(record.generation, []).append(record)
    if 0 not in by_generation or len(by_generation[0]) < population_size:
        raise ValueError("initial generation incomplete; nothing to resume from")

    complete: list[list[ModelRecord]] = [
        sorted(by_generation[0], key=lambda r: r.model_id)[:population_size]
    ]
    generation = 1
    while (
        generation in by_generation
        and len(by_generation[generation]) >= offspring_per_generation
    ):
        complete.append(
            sorted(by_generation[generation], key=lambda r: r.model_id)[
                :offspring_per_generation
            ]
        )
        generation += 1

    archive_members: list[Individual] = []
    stats: list[GenerationStats] = []
    population = Population(
        [individual_from_record(r) for r in complete[0]]
    )
    archive_members.extend(population.members)
    stats.append(_batch_stats(0, population.members, population, max_epochs))
    # replay environmental selection over each completed offspring batch
    for generation, batch in enumerate(complete[1:], start=1):
        offspring = [individual_from_record(r) for r in batch]
        archive_members.extend(offspring)
        combined = Population(population.members + offspring)
        survivors = environmental_selection(
            combined.objective_array(), population_size
        )
        population = combined.subset(survivors)
        stats.append(_batch_stats(generation, offspring, population, max_epochs))

    next_model_id = max(m.model_id for m in archive_members) + 1
    return SearchState(
        population=population,
        archive=Population(archive_members),
        next_generation=len(complete),
        next_model_id=next_model_id,
        generation_stats=stats,
    )


def resume_workflow(commons: DataCommons, run_id: str):
    """Continue a published (possibly partial) run to completion.

    Returns a fresh :class:`~repro.workflow.orchestrator.WorkflowResult`
    covering the whole run, and republishes the completed record trails
    under the same run id.
    """
    from repro.lineage.tracker import LineageTracker
    from repro.nas.search import NSGANet
    from repro.scheduler.simulator import simulate_walltime
    from repro.utils.rng import RngStream
    from repro.workflow.interfaces import WorkflowConfig
    from repro.workflow.orchestrator import A4NNOrchestrator, WorkflowResult

    run = commons.load_run(run_id)
    if run.workflow_config is None:
        raise ValueError(f"run {run_id!r} has no stored configuration")
    config = WorkflowConfig.from_dict(run.workflow_config)
    records = commons.load_models(run_id)
    state = rebuild_search_state(
        records,
        population_size=config.nas.population_size,
        offspring_per_generation=config.nas.offspring_per_generation,
        evolution=config.nas.evolution,
        max_epochs=config.nas.max_epochs,
    )
    _LOG.info(
        "resuming run %s from generation %d (%d models already evaluated)",
        run_id,
        state.next_generation,
        len(state.archive),
    )

    def restored(record: ModelRecord) -> bool:
        # steady mode resumes from a contiguous tick prefix (ticks are
        # model ids); barrier mode from complete generations
        if config.nas.evolution == "steady":
            return record.model_id < state.next_model_id
        return record.generation < state.next_generation

    orchestrator = A4NNOrchestrator(config, commons=commons)
    engine = orchestrator.build_engine()
    tracker = LineageTracker(
        engine_parameters=engine.describe() if engine else None,
        training_parameters={
            "mode": config.mode,
            "intensity": config.intensity.label,
            "fitness_measurement": "validation_accuracy_percent",
            "max_epochs": config.nas.max_epochs,
        },
    )
    # seed the tracker with the already-published trails so the
    # republished run is complete
    for record in records:
        if restored(record):
            tracker.records[record.model_id] = record
    evaluator = orchestrator.build_evaluator(tracker, engine)
    if orchestrator.allocator is not None:
        # replay the allocator's counters and the predictor's training
        # rows from the restored trails, in commit (model-id) order —
        # predictions stored on the records are kept, never recomputed,
        # so the resumed predictor sees exactly the live run's data
        orchestrator.allocator.restore(
            sorted((r for r in records if restored(r)), key=lambda r: r.model_id)
        )
    if orchestrator.memoizer is not None:
        # prime the cache from the restored trails so evaluations the
        # interrupted run already shared stay shared on resume (faulted
        # or quarantined records are never primed — same rule as live)
        restored_by_id = {r.model_id: r for r in records if restored(r)}
        primed = 0
        for individual in state.archive:
            record = restored_by_id.get(individual.model_id)
            if record is None:
                continue
            trace = [
                (e["epoch"], e["validation_accuracy"], e.get("prediction"))
                for e in record.epochs
            ]
            if orchestrator.memoizer.prime(individual, epoch_trace=trace):
                primed += 1
        _LOG.info("primed evaluation cache with %d restored evaluations", primed)
    nas = orchestrator.effective_nas()
    steady = nas.evolution == "steady"
    search = NSGANet(
        nas,
        evaluator,
        rng_stream=RngStream(config.seed).child("search"),
        on_individual=orchestrator._on_individual,
        on_candidate=orchestrator.allocator.score if orchestrator.allocator else None,
        executor=None if steady else orchestrator.build_executor(evaluator),
        stream=orchestrator.build_stream(evaluator) if steady else None,
    )
    try:
        result = search.run(resume=state)
    finally:
        orchestrator.close_pool()

    walltime = {n: simulate_walltime(result, n) for n in config.n_gpus}
    workflow_result = WorkflowResult(
        config=config,
        search=result,
        tracker=tracker,
        walltime=walltime,
        run_id=run_id,
    )
    orchestrator.publish(workflow_result)
    return workflow_result
