"""Workflow orchestration (paper §2.2, §2.6).

The orchestrator composes the prediction engine, NAS, shared histories,
lineage tracking, the data commons, and the resource manager from one
user-facing :class:`~repro.workflow.interfaces.WorkflowConfig`.
"""

from repro.workflow.driver import (
    ComparisonResult,
    run_comparison,
    run_standalone,
    run_workflow,
)
from repro.workflow.history import HistoryStore, ModelHistory
from repro.workflow.interfaces import WorkflowConfig
from repro.workflow.orchestrator import A4NNOrchestrator, WorkflowResult
from repro.workflow.resume import individual_from_record, rebuild_search_state, resume_workflow

__all__ = [
    "ComparisonResult",
    "run_comparison",
    "run_standalone",
    "run_workflow",
    "HistoryStore",
    "ModelHistory",
    "WorkflowConfig",
    "A4NNOrchestrator",
    "WorkflowResult",
    "individual_from_record",
    "rebuild_search_state",
    "resume_workflow",
]
