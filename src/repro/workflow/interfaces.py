"""User-facing workflow configuration (paper §2.6).

One document controls the three independently swappable pieces the
paper's user interface exposes: NAS settings (§2.6.1), the data path /
dataset definition (§2.6.2), and the prediction-engine settings
(§2.6.3).  ``WorkflowConfig`` round-trips to plain dicts, so it can be
driven from JSON files or command-line tooling.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.engine import EngineConfig
from repro.nas.evaluation import validate_rng_keying
from repro.nas.search import NSGANetConfig
from repro.nas.surrogate import SurrogateConfig
from repro.nn.dtype import dtype_label
from repro.scheduler.faults import FaultInjectionConfig, FaultPolicy
from repro.utils.validation import ValidationError
from repro.xfel.dataset import DatasetConfig
from repro.xfel.intensity import BeamIntensity

__all__ = ["WorkflowConfig"]

_MODES = ("real", "surrogate")
_BACKENDS = ("serial", "thread", "process")


@dataclass(frozen=True)
class WorkflowConfig:
    """Everything a user sets to launch an A4NN run.

    Attributes
    ----------
    nas:
        NSGA-Net settings (Table 2).
    engine:
        Prediction-engine settings (Table 1); ``None`` disables the
        engine, giving the standalone-NAS baseline.
    dataset:
        XFEL dataset definition (real mode) — also fixes the beam
        intensity in surrogate mode.
    mode:
        ``"real"`` (train NumPy CNNs) or ``"surrogate"`` (paper-scale
        synthetic curves).
    n_gpus:
        Pool sizes to simulate wall time for (paper: 1 and 4).
    seed:
        Root seed; the whole run is reproducible from it.
    run_id:
        Commons identifier; auto-derived when empty.
    checkpoint_models:
        Persist per-epoch model state (real mode only).
    n_workers:
        Concurrent evaluations per generation (real parallel execution
        via the FIFO worker pool; 1 = serial).
    backend:
        Generation-execution backend — ``"serial"`` (in-process loop,
        requires ``n_workers=1``), ``"thread"`` (FIFO thread pool; the
        default), or ``"process"`` (spawned worker processes sharing the
        dataset through shared memory; hard-kills timed-out
        evaluations).  See DESIGN "Execution backends".
    sanitize:
        Attach the runtime numerical sanitizer to every trained network
        (real mode): non-finite losses/activations/gradients raise
        :class:`~repro.tooling.sanitizer.NumericalFault`, recorded into
        the model's lineage record.
    sanitize_writes:
        Attach the runtime write guard to every trained network (real
        mode): borrowed inter-layer tensors are flipped read-only around
        layer calls, so an aliasing write raises a ``guarded-write``
        :class:`~repro.tooling.sanitizer.NumericalFault`.  Flag-flips
        only — an untripped guarded run stays byte-identical.
    faults:
        Optional :class:`~repro.scheduler.faults.FaultPolicy`.  When
        set, evaluation failures (crashes, timeouts, sanitizer faults)
        are retried with re-seeded RNG children and, if unrecoverable,
        quarantined with penalized objectives — one bad genome costs one
        penalized individual, never the run.  ``None`` keeps the legacy
        abort-on-first-fault behaviour.
    fault_injection:
        Optional deterministic fault-injection settings (test harness);
        requires ``faults`` so injected failures are routed rather than
        aborting the run.
    dtype:
        Compute dtype for real-mode evaluation (``"float32"`` or
        ``"float64"``).  New runs default to the float32 fast path;
        ``from_dict`` defaults *missing* keys to float64 so historical
        run documents replay byte-exactly.
    rng_keying:
        Evaluation RNG identity — see :data:`repro.nas.evaluation.
        RNG_KEYINGS`.  ``"genome"`` (new-run default) makes evaluation a
        pure function of the canonical genome, enabling the evaluation
        cache; ``"model"`` replays historical runs byte-exactly.
    eval_cache:
        Memoize evaluations of duplicate (isomorphic) genomes.  Requires
        ``rng_keying="genome"``.  Ignored while fault *injection* is
        active (the injection schedule is keyed per evaluation, so
        deduplication would change which candidates fault).
    arena:
        Train every real-mode network on the buffer-arena kernel fast
        path (:mod:`repro.nn.arena`) — allocation-free im2col GEMMs and
        pinned scratch.  ``None`` (the default) resolves to "on for
        float32, off for float64": arena GEMMs match the legacy kernels
        at gradcheck tolerance but not bitwise, and float64 is the
        byte-exact replay dtype.  ``from_dict`` defaults *missing* keys
        to ``False`` so historical run documents replay exactly.
    surrogate:
        Cross-architecture surrogate pre-ranking settings
        (:class:`~repro.nas.surrogate.SurrogateConfig`).  ``None`` (the
        default, and the ``from_dict`` default for missing keys) keeps
        the allocator off entirely — runs are byte-identical to
        pre-surrogate behaviour.
    """

    nas: NSGANetConfig = field(default_factory=NSGANetConfig)
    engine: EngineConfig | None = field(default_factory=EngineConfig)
    dataset: DatasetConfig = field(default_factory=DatasetConfig)
    mode: str = "surrogate"
    n_gpus: tuple = (1, 4)
    seed: int = 42
    run_id: str = ""
    checkpoint_models: bool = False
    n_workers: int = 1
    backend: str = "thread"
    sanitize: bool = False
    sanitize_writes: bool = False
    faults: FaultPolicy | None = None
    fault_injection: FaultInjectionConfig | None = None
    dtype: str = "float32"
    rng_keying: str = "genome"
    eval_cache: bool = True
    arena: bool | None = None
    surrogate: SurrogateConfig | None = None

    def __post_init__(self) -> None:
        if int(self.n_workers) < 1:
            raise ValidationError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.backend not in _BACKENDS:
            raise ValidationError(
                f"backend must be one of {_BACKENDS}, got {self.backend!r}"
            )
        if self.backend == "serial" and int(self.n_workers) != 1:
            raise ValidationError(
                f"backend='serial' requires n_workers=1, got {self.n_workers}"
            )
        if self.backend == "process" and self.checkpoint_models:
            raise ValidationError(
                "backend='process' cannot checkpoint per-epoch model state: "
                "trained networks live in the worker processes and only "
                "measurements travel back; use the thread or serial backend"
            )
        try:
            object.__setattr__(self, "dtype", dtype_label(self.dtype))
            validate_rng_keying(self.rng_keying)
        except ValueError as exc:
            raise ValidationError(str(exc)) from None
        if self.arena is None:
            # auto: fast path for float32, byte-exact legacy kernels for
            # the float64 replay dtype
            object.__setattr__(self, "arena", self.dtype == "float32")
        else:
            object.__setattr__(self, "arena", bool(self.arena))
        if self.eval_cache and self.rng_keying != "genome":
            raise ValidationError(
                "eval_cache requires rng_keying='genome': model-keyed "
                "evaluations are not pure functions of the genome, so "
                "sharing their results would change the run"
            )
        if (
            self.fault_injection is not None
            and self.fault_injection.rate > 0
            and self.faults is None
        ):
            raise ValidationError(
                "fault_injection without a fault policy would abort the run "
                "on the first injected fault; set faults=FaultPolicy(...)"
            )
        if self.mode not in _MODES:
            raise ValidationError(f"mode must be one of {_MODES}, got {self.mode!r}")
        if not self.n_gpus or any(int(n) < 1 for n in self.n_gpus):
            raise ValidationError(f"n_gpus must be positive pool sizes, got {self.n_gpus}")
        if self.engine is not None and self.engine.e_pred != self.nas.max_epochs:
            # Not fatal in general, but in the paper e_pred is the NAS
            # budget; silently different values usually mean a typo.
            raise ValidationError(
                f"engine.e_pred ({self.engine.e_pred}) should equal "
                f"nas.max_epochs ({self.nas.max_epochs}); construct the "
                f"engine config explicitly if this is intentional"
            )

    @property
    def intensity(self) -> BeamIntensity:
        return self.dataset.intensity

    def resolved_run_id(self) -> str:
        """The commons run id, derived when not set explicitly."""
        if self.run_id:
            return self.run_id
        engine_tag = "a4nn" if self.engine is not None else "standalone"
        return f"{engine_tag}_{self.mode}_{self.intensity.label}_seed{self.seed}"

    def standalone(self) -> "WorkflowConfig":
        """A copy with the prediction engine disabled (baseline runs)."""
        return replace(self, engine=None, run_id="")

    def to_dict(self) -> dict:
        return {
            "nas": self.nas.to_dict(),
            "engine": self.engine.to_dict() if self.engine else None,
            "dataset": {
                "intensity": self.dataset.intensity.label,
                "images_per_class": self.dataset.images_per_class,
                "image_size": self.dataset.image_size,
                "train_fraction": self.dataset.train_fraction,
                "seed": self.dataset.seed,
                "n_atoms": self.dataset.n_atoms,
                "q_max": self.dataset.q_max,
                "orientation_spread": self.dataset.orientation_spread,
                "dtype": self.dataset.dtype,
            },
            "mode": self.mode,
            "n_gpus": list(self.n_gpus),
            "seed": self.seed,
            "run_id": self.run_id,
            "checkpoint_models": self.checkpoint_models,
            "n_workers": self.n_workers,
            "backend": self.backend,
            "sanitize": self.sanitize,
            "sanitize_writes": self.sanitize_writes,
            "faults": self.faults.to_dict() if self.faults else None,
            "fault_injection": self.fault_injection.to_dict()
            if self.fault_injection
            else None,
            "dtype": self.dtype,
            "rng_keying": self.rng_keying,
            "eval_cache": self.eval_cache,
            "arena": self.arena,
            "surrogate": self.surrogate.to_dict() if self.surrogate else None,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "WorkflowConfig":
        dataset_payload = dict(payload.get("dataset", {}))
        if "intensity" in dataset_payload:
            dataset_payload["intensity"] = BeamIntensity.from_label(
                dataset_payload["intensity"]
            )
        engine_payload = payload.get("engine")
        return cls(
            nas=NSGANetConfig(**payload.get("nas", {})),
            engine=None
            if engine_payload is None
            else EngineConfig(
                **{
                    k: tuple(v) if k == "fitness_bounds" else v
                    for k, v in engine_payload.items()
                }
            ),
            dataset=DatasetConfig(**dataset_payload),
            mode=payload.get("mode", "surrogate"),
            n_gpus=tuple(payload.get("n_gpus", (1, 4))),
            seed=payload.get("seed", 42),
            run_id=payload.get("run_id", ""),
            checkpoint_models=payload.get("checkpoint_models", False),
            n_workers=payload.get("n_workers", 1),
            backend=payload.get("backend", "thread"),
            sanitize=payload.get("sanitize", False),
            sanitize_writes=payload.get("sanitize_writes", False),
            faults=FaultPolicy.from_dict(payload["faults"])
            if payload.get("faults")
            else None,
            fault_injection=FaultInjectionConfig.from_dict(payload["fault_injection"])
            if payload.get("fault_injection")
            else None,
            # missing keys default to the *legacy* behaviour, not the
            # new-run defaults: historical run documents predate the fast
            # path and must replay byte-exactly
            dtype=payload.get("dtype", "float64"),
            rng_keying=payload.get("rng_keying", "model"),
            eval_cache=payload.get("eval_cache", False),
            arena=payload.get("arena", False),
            surrogate=SurrogateConfig.from_dict(payload["surrogate"])
            if payload.get("surrogate")
            else None,
        )
