"""One-call drivers for the common workflow shapes.

Convenience wrappers over :class:`~repro.workflow.orchestrator.
A4NNOrchestrator` for the runs the paper's evaluation performs: an A4NN
run, its standalone-NAS baseline, and the paired comparison of both.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.lineage.commons import DataCommons
from repro.workflow.interfaces import WorkflowConfig
from repro.workflow.orchestrator import A4NNOrchestrator, WorkflowResult

__all__ = ["run_workflow", "run_standalone", "ComparisonResult", "run_comparison"]


def run_workflow(
    config: WorkflowConfig,
    *,
    commons_path: str | Path | None = None,
    checkpoint_dir: str | Path | None = None,
) -> WorkflowResult:
    """Run one configured workflow (A4NN if ``config.engine`` is set)."""
    commons = DataCommons(commons_path) if commons_path else None
    orchestrator = A4NNOrchestrator(
        config, commons=commons, checkpoint_dir=checkpoint_dir
    )
    return orchestrator.run()


def run_standalone(
    config: WorkflowConfig,
    *,
    commons_path: str | Path | None = None,
) -> WorkflowResult:
    """Run the standalone-NAS baseline for ``config`` (engine disabled)."""
    return run_workflow(config.standalone(), commons_path=commons_path)


@dataclass
class ComparisonResult:
    """Paired A4NN vs standalone outcome on identical settings and seed."""

    a4nn: WorkflowResult
    standalone: WorkflowResult

    @property
    def epochs_saved_percent(self) -> float:
        """Epoch savings of A4NN relative to the standalone baseline."""
        baseline = self.standalone.total_epochs_trained
        return 100.0 * (baseline - self.a4nn.total_epochs_trained) / baseline

    def walltime_saved_hours(self, n_gpus: int = 1) -> float:
        """Wall-time savings of A4NN on an ``n_gpus`` pool (hours)."""
        return (
            self.standalone.walltime[n_gpus].wall_hours
            - self.a4nn.walltime[n_gpus].wall_hours
        )

    def speedup(self, from_gpus: int, to_gpus: int) -> float:
        """A4NN wall-time speedup between two pool sizes."""
        return (
            self.a4nn.walltime[from_gpus].wall_seconds
            / self.a4nn.walltime[to_gpus].wall_seconds
        )


def run_comparison(
    config: WorkflowConfig,
    *,
    commons_path: str | Path | None = None,
) -> ComparisonResult:
    """Run A4NN and the standalone baseline with identical settings.

    Both runs share the NAS seed, so they evaluate comparable
    populations; the only difference is the prediction engine.
    """
    if config.engine is None:
        raise ValueError("comparison needs an engine-enabled config")
    return ComparisonResult(
        a4nn=run_workflow(config, commons_path=commons_path),
        standalone=run_standalone(config, commons_path=commons_path),
    )
