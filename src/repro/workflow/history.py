"""Shared fitness/prediction history store.

Paper §2.2.2: "The NAS and the A4NN engine share the fitness and
prediction history, optimizing the memory usage in the training loop."
The store keeps one append-only pair of histories per model id; both the
training loop and the lineage tracker read the same lists, so no copies
are made per epoch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ModelHistory", "HistoryStore"]


@dataclass
class ModelHistory:
    """Histories ``H`` and ``P`` for one model (shared, append-only)."""

    model_id: int
    fitness: list = field(default_factory=list)
    predictions: list = field(default_factory=list)

    def record_epoch(self, fitness: float, prediction: float | None) -> None:
        """Append one epoch's measurement and (optional) prediction."""
        self.fitness.append(float(fitness))
        if prediction is not None:
            self.predictions.append(float(prediction))

    @property
    def n_epochs(self) -> int:
        return len(self.fitness)


class HistoryStore:
    """Process-wide registry of per-model histories."""

    def __init__(self) -> None:
        self._histories: dict[int, ModelHistory] = {}

    def for_model(self, model_id: int) -> ModelHistory:
        """Get (or create) the shared history of a model."""
        history = self._histories.get(model_id)
        if history is None:
            history = ModelHistory(model_id)
            self._histories[model_id] = history
        return history

    def __contains__(self, model_id: int) -> bool:
        return model_id in self._histories

    def __len__(self) -> int:
        return len(self._histories)

    def model_ids(self) -> list[int]:
        return sorted(self._histories)
