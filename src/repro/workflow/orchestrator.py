"""The A4NN workflow orchestrator.

Ties together the components of the paper's Fig. 1: it instantiates the
prediction engine from user settings, plugs it into the NAS through the
Algorithm-1 evaluator, routes per-epoch data to the shared history store
and the lineage tracker, publishes record trails to the data commons,
and hands the recorded workload to the resource manager for wall-time
accounting on each requested GPU-pool size.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.core.engine import PredictionEngine
from repro.lineage.commons import DataCommons
from repro.lineage.records import RunRecord
from repro.lineage.tracker import LineageTracker
from repro.nas.evalcache import EvaluationCache, MemoizingEvaluator, MemoizingStream
from repro.nas.evaluation import TrainingEvaluator
from repro.nas.search import NSGANet, SearchResult
from repro.nas.surrogate import BudgetAllocator, SurrogateEvaluator
from repro.scheduler.faults import FaultInjectingEvaluator, FaultTolerantEvaluator
from repro.scheduler.pool import FifoWorkerPool
from repro.scheduler.procpool import EvalSpec, ProcessWorkerPool
from repro.scheduler.simulator import WallTimeReport, simulate_walltime
from repro.utils.logging import get_logger
from repro.utils.rng import RngStream
from repro.workflow.history import HistoryStore
from repro.workflow.interfaces import WorkflowConfig
from repro.xfel.dataset import load_or_generate
from repro.xfel.shm import share_dataset

__all__ = ["WorkflowResult", "A4NNOrchestrator"]

_LOG = get_logger("workflow.orchestrator")


@dataclass
class WorkflowResult:
    """Everything one orchestrated run produced.

    Attributes
    ----------
    config:
        The settings the run used.
    search:
        The NAS outcome (archive, survivors, per-generation stats).
    tracker:
        Lineage records for every evaluated model.
    walltime:
        Wall-time report per simulated pool size, keyed by GPU count.
    run_id:
        Commons identifier (set when published).
    """

    config: WorkflowConfig
    search: SearchResult
    tracker: LineageTracker
    walltime: dict = field(default_factory=dict)
    run_id: str = ""

    @property
    def total_epochs_trained(self) -> int:
        return self.search.total_epochs_trained

    @property
    def total_epochs_saved(self) -> int:
        return self.search.total_epochs_saved

    @property
    def total_epochs_skipped(self) -> int:
        """Epochs the surrogate allocator skipped by reducing budgets."""
        return self.search.total_epochs_skipped

    def epochs_saved_fraction(self) -> float:
        """Fraction of the 25-epoch budget the engine saved.

        The budget covers completed evaluations only (quarantined
        candidates never trained, so their budget was never at stake);
        see :attr:`~repro.nas.search.SearchResult.epoch_budget`.
        """
        budget = self.search.epoch_budget
        return self.total_epochs_saved / budget if budget else 0.0


class A4NNOrchestrator:
    """Build and run the composed workflow from one configuration.

    Parameters
    ----------
    config:
        The user-facing workflow settings (§2.6).
    commons:
        Optional data commons to publish record trails into.
    checkpoint_dir:
        Directory for per-epoch model state (real mode with
        ``config.checkpoint_models``).
    """

    def __init__(
        self,
        config: WorkflowConfig,
        *,
        commons: DataCommons | None = None,
        checkpoint_dir: str | Path | None = None,
    ) -> None:
        self.config = config
        self.commons = commons
        self.checkpoint_dir = checkpoint_dir
        self.history_store = HistoryStore()
        self.memoizer: MemoizingEvaluator | None = None
        self.allocator: BudgetAllocator | None = None
        self.pool = None  # WorkerPool behind the executor, when one exists
        self.pool_reports: list = []  # PoolReports kept after close_pool()
        self._tracker: LineageTracker | None = None
        self._base = None  # innermost evaluation backend
        self._dataset = None  # loaded dataset (real mode)

    # -- assembly ---------------------------------------------------------------

    def build_engine(self) -> PredictionEngine | None:
        """The prediction engine, or ``None`` for standalone baselines."""
        if self.config.engine is None:
            return None
        return PredictionEngine(self.config.engine)

    def _history_observer(self, individual, epoch, fitness, prediction, context) -> None:
        self.history_store.for_model(individual.model_id).record_epoch(fitness, prediction)

    def build_evaluator(self, tracker: LineageTracker, engine: PredictionEngine | None):
        """The evaluation backend for the configured mode, with observers wired.

        When the config carries a :class:`~repro.scheduler.faults.
        FaultPolicy`, the backend is wrapped so evaluation faults retry
        and then quarantine instead of aborting the search; configured
        fault injection (test harness) wraps *inside* the policy so
        injected failures are routed like real ones.
        """
        observers = [self._history_observer, tracker.observe_epoch]
        stream = RngStream(self.config.seed)
        self._tracker = tracker
        if self.config.mode == "real":
            dataset = load_or_generate(self.config.dataset).astype(self.config.dtype)
            self._dataset = dataset
            base = TrainingEvaluator(
                dataset,
                engine,
                max_epochs=self.config.nas.max_epochs,
                rng_stream=stream.child("eval"),
                observers=observers,
                sanitize=self.config.sanitize,
                sanitize_writes=self.config.sanitize_writes,
                on_fault=tracker.observe_fault,
                rng_keying=self.config.rng_keying,
                dtype=self.config.dtype,
                dataset_key=self.config.dataset.cache_key(),
                arena=self.config.arena,
            )
        else:
            base = SurrogateEvaluator(
                self.config.intensity,
                engine,
                max_epochs=self.config.nas.max_epochs,
                rng_stream=stream.child("eval"),
                observers=observers,
                rng_keying=self.config.rng_keying,
            )
        self._base = base
        evaluator = base
        injection = self.config.fault_injection
        injection_active = injection is not None and injection.rate > 0
        if injection_active:
            evaluator = FaultInjectingEvaluator(
                evaluator, injection, rng_stream=stream.child("inject")
            )
        if self.config.faults is not None:
            evaluator = FaultTolerantEvaluator(
                evaluator,
                self.config.faults,
                on_event=tracker.observe_fault_event,
            )
        # memoization wraps outermost so only post-retry, non-quarantined
        # outcomes are cached; with fault injection active the injection
        # schedule (keyed per evaluation) must stay undisturbed, so the
        # cache is bypassed
        self.memoizer = None
        if self.config.eval_cache and not injection_active:
            self.memoizer = MemoizingEvaluator(evaluator, base, cache=EvaluationCache())
            evaluator = self.memoizer
        # the surrogate pre-ranking allocator scores candidates at breed
        # time against the base evaluator's FLOP counter; its predictor
        # state lives here in the parent only (workers receive budgets
        # via EvalTask)
        self.allocator = None
        if self.config.surrogate is not None:
            self.allocator = BudgetAllocator(
                self.config.surrogate,
                max_epochs=self.config.nas.max_epochs,
                flops_fn=base.flops_for,
            )
        return evaluator

    def _on_individual(self, individual) -> None:
        """Commit hook: lineage first, then the surrogate refit."""
        self._tracker.observe_individual(individual)
        if self.allocator is not None:
            self.allocator.observe(individual)

    def _build_process_pool(self) -> ProcessWorkerPool:
        """Assemble the spawned-worker backend from the built evaluator chain.

        The dataset (real mode) is published into shared memory first so
        workers attach zero-copy; the pool owns the arena and unlinks it
        in :meth:`close_pool`.  Requires :meth:`build_evaluator` to have
        run (it wires the tracker and the live observers list the pool
        replays worker traces through).
        """
        if self._base is None or self._tracker is None:
            raise RuntimeError("build_evaluator must run before the process pool")
        config = self.config
        spec_kwargs = dict(
            mode=config.mode,
            seed=config.seed,
            max_epochs=config.nas.max_epochs,
            engine=config.engine,
            intensity_label=config.intensity.label,
            sanitize=config.sanitize,
            sanitize_writes=config.sanitize_writes,
            rng_keying=config.rng_keying,
            dtype=config.dtype,
            injection=config.fault_injection,
            arena=config.arena,
        )
        arena = None
        if config.mode == "real":
            dataset_spec, arena = share_dataset(self._dataset)
            spec_kwargs.update(
                dataset=dataset_spec, dataset_key=config.dataset.cache_key()
            )
        return ProcessWorkerPool(
            EvalSpec(**spec_kwargs),
            n_workers=config.n_workers,
            policy=config.faults,
            on_fault_event=self._tracker.observe_fault_event,
            observers=self._base.observers,
            on_fault=self._tracker.observe_fault,
            arena=arena,
        )

    def build_executor(self, evaluator):
        """Generation executor matching the configured backend/cache setup.

        With the cache active the memoizer partitions each generation
        deterministically (hits/leaders/followers) before dispatching,
        so serial and pooled execution produce identical record trails.
        Returns ``None`` when the legacy inline loop suffices (thread
        backend at ``n_workers=1``); any pool built here is kept on
        ``self.pool`` so callers can read its reports and so
        :meth:`close_pool` can release it.
        """
        backend = self.config.backend
        if backend == "process":
            self.pool = self._build_process_pool()
            if self.memoizer is not None:
                self.pool.on_result = self.memoizer.register_remote
                self.memoizer.executor = self.pool.evaluate_generation
                return self.memoizer.evaluate_generation
            return self.pool.evaluate_generation
        if backend == "serial" or self.config.n_workers > 1:
            inner = self.memoizer if self.memoizer is not None else evaluator
            self.pool = FifoWorkerPool(inner, n_workers=self.config.n_workers)
            if self.memoizer is not None:
                self.memoizer.executor = self.pool.evaluate_generation
                return self.memoizer.evaluate_generation
            return self.pool.evaluate_generation
        if self.memoizer is not None:
            return self.memoizer.evaluate_generation
        return None

    def build_stream(self, evaluator):
        """Streaming evaluation backend for steady-state evolution.

        The returned object satisfies the :class:`~repro.nas.search.
        EvalStream` seam.  With the cache active the pool runs the chain
        *below* the memoizer and a :class:`~repro.nas.evalcache.
        MemoizingStream` resolves hits at submit time and primes at
        commit time — both logical-clock events, so cache behaviour is
        identical on every backend.  The pool is kept on ``self.pool``
        so its report survives :meth:`close_pool`.
        """
        if self.config.backend == "process":
            # no on_result hook here: in steady mode the MemoizingStream
            # primes the cache at commit, in logical-clock order
            self.pool = self._build_process_pool()
        else:
            inner = self.memoizer.evaluator if self.memoizer is not None else evaluator
            self.pool = FifoWorkerPool(inner, n_workers=self.config.n_workers)
        if self.memoizer is not None:
            return MemoizingStream(self.memoizer, self.pool)
        return self.pool

    def effective_nas(self):
        """The NAS settings the run actually uses.

        Steady mode with ``steady_lag=None`` pins the lag to the worker
        count — the largest window the pool can keep busy.  Replays
        resolve the same lag from the stored config (it records the
        original ``n_workers``), so the resolution is reproducible.
        """
        nas = self.config.nas
        if nas.evolution == "steady" and nas.steady_lag is None:
            nas = replace(nas, steady_lag=self.config.n_workers)
        return nas

    def close_pool(self) -> None:
        """Release the executor's worker pool (idempotent; no-op without one).

        For the process backend this stops every worker and unlinks the
        shared-memory dataset, so it must run even when the search
        raises — :meth:`run` calls it from a ``finally`` block.
        """
        if self.pool is not None:
            # close first (it flushes an interrupted stream's report),
            # then keep the reports so callers (the scaling bench, the
            # pool-timeline renderers) can read them after the run
            self.pool.close()
            self.pool_reports = list(self.pool.reports)
            self.pool = None

    # -- execution ----------------------------------------------------------------

    def run(self) -> WorkflowResult:
        """Execute search → lineage → wall-time accounting → publish."""
        config = self.config
        engine = self.build_engine()
        tracker = LineageTracker(
            engine_parameters=engine.describe() if engine else None,
            checkpoint_dir=self.checkpoint_dir if config.checkpoint_models else None,
            training_parameters={
                "mode": config.mode,
                "intensity": config.intensity.label,
                "fitness_measurement": "validation_accuracy_percent",
                "max_epochs": config.nas.max_epochs,
            },
        )
        evaluator = self.build_evaluator(tracker, engine)
        nas = self.effective_nas()
        steady = nas.evolution == "steady"
        search = NSGANet(
            nas,
            evaluator,
            rng_stream=RngStream(config.seed).child("search"),
            on_individual=self._on_individual,
            on_candidate=self.allocator.score if self.allocator else None,
            executor=None if steady else self.build_executor(evaluator),
            stream=self.build_stream(evaluator) if steady else None,
        )
        _LOG.info(
            "starting %s run: mode=%s intensity=%s seed=%d",
            "A4NN" if engine else "standalone NAS",
            config.mode,
            config.intensity.label,
            config.seed,
        )
        try:
            result = search.run()
        finally:
            self.close_pool()

        walltime: dict[int, WallTimeReport] = {
            n: simulate_walltime(result, n) for n in config.n_gpus
        }

        workflow_result = WorkflowResult(
            config=config,
            search=result,
            tracker=tracker,
            walltime=walltime,
            run_id=config.resolved_run_id(),
        )
        if self.commons is not None:
            self.publish(workflow_result)
        return workflow_result

    def publish(self, result: WorkflowResult) -> None:
        """Push the run's record trails into the data commons."""
        if self.commons is None:
            raise RuntimeError("orchestrator was built without a data commons")
        run = RunRecord(
            run_id=result.run_id,
            intensity=self.config.intensity.label,
            nas_parameters=self.config.nas.to_dict(),
            engine_parameters=self.config.engine.to_dict() if self.config.engine else None,
            notes=f"mode={self.config.mode}, seed={self.config.seed}",
            workflow_config=self.config.to_dict(),
            generation_stats=[
                {
                    "generation": g.generation,
                    "n_evaluated": g.n_evaluated,
                    "best_fitness": g.best_fitness,
                    "mean_fitness": g.mean_fitness,
                    "epochs_trained": g.epochs_trained,
                    "epochs_saved": g.epochs_saved,
                    "epochs_skipped": g.epochs_skipped,
                    "pareto_size": g.pareto_size,
                    "n_quarantined": g.n_quarantined,
                    "n_cache_hits": g.n_cache_hits,
                }
                for g in result.search.generations
            ],
        )
        self.commons.publish_run(run, result.tracker)
        _LOG.info("published run %s to commons", result.run_id)
