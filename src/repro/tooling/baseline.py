"""Committed baseline of grandfathered findings.

Adopting a new rule pack on a mature tree shouldn't force fixing every
historical finding before the gate turns green — but it also must not
let *new* violations ride in on the old ones' backs.  The baseline file
(committed as ``.a4nn-baseline.json``) records a count per finding
fingerprint; ``a4nn check --baseline`` subtracts matching findings from
the failure set (reporting them separately) while anything beyond the
recorded count still fails.

Fingerprints are ``(path, rule id, message digest)`` — deliberately
*line-independent*, so unrelated edits shifting a grandfathered finding
down the file do not resurrect it, while a genuinely new instance of
the same rule in the same file (different message, or one more
occurrence of an identical message) is still caught.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from pathlib import Path

from repro.tooling.context import package_path
from repro.tooling.diagnostics import Diagnostic

__all__ = ["fingerprint", "load_baseline", "write_baseline", "apply_baseline"]

SCHEMA = "a4nn-baseline/1"


def fingerprint(diagnostic: Diagnostic) -> str:
    """Stable, line-independent identity of one finding."""
    digest = hashlib.blake2b(
        diagnostic.message.encode("utf-8"), digest_size=8
    ).hexdigest()
    return f"{package_path(diagnostic.path)}::{diagnostic.rule_id}::{digest}"


def load_baseline(path: str | Path) -> Counter:
    """Read a baseline document into fingerprint counts.

    A missing file is an empty baseline; a malformed one is an error —
    silently ignoring it would un-grandfather everything at once.
    """
    path = Path(path)
    if not path.exists():
        return Counter()
    payload = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or payload.get("schema") != SCHEMA:
        raise ValueError(f"{path} is not an {SCHEMA} document")
    entries = payload.get("findings", {})
    return Counter({str(k): int(v) for k, v in entries.items()})


def write_baseline(diagnostics: list[Diagnostic], path: str | Path) -> Path:
    """Record the current findings as the new grandfathered set."""
    counts = Counter(fingerprint(d) for d in diagnostics)
    payload = {
        "schema": SCHEMA,
        "findings": {k: counts[k] for k in sorted(counts)},
    }
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def apply_baseline(
    diagnostics: list[Diagnostic], baseline: Counter
) -> tuple[list[Diagnostic], list[Diagnostic]]:
    """Split findings into ``(fresh, grandfathered)``.

    Matching is per fingerprint with multiplicity: a baseline count of 2
    absorbs the first two identical findings (in stable sort order) and
    the third fails the check as new.
    """
    budget = Counter(baseline)
    fresh: list[Diagnostic] = []
    grandfathered: list[Diagnostic] = []
    for diagnostic in sorted(diagnostics, key=Diagnostic.sort_key):
        key = fingerprint(diagnostic)
        if budget[key] > 0:
            budget[key] -= 1
            grandfathered.append(diagnostic)
        else:
            fresh.append(diagnostic)
    return fresh, grandfathered
