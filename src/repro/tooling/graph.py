"""Project-wide semantic graph: imports, symbols, and an approximate call graph.

Single-file AST rules cannot see the bugs that matter once evaluator
chains span modules and processes: an unseeded RNG reached *indirectly*
from the eval path, or module-level state mutated three calls below a
worker entry point.  This module builds the shared substrate those
cross-file rules stand on:

* a **symbol table** per module (imports resolved to dotted targets,
  top-level assignments, functions and methods with stable qualnames);
* an **import graph** (which ``repro`` modules each module imports); and
* an **approximate call graph**.  Edges come in two precisions:
  ``resolved`` edges follow statically certain bindings (module-level
  functions, imported functions, ``self.method`` within a class), while
  ``name`` edges match a method/function call by bare name against every
  same-named definition in the project.  Name edges over-approximate
  (that is the point: reachability queries must not miss a path through
  a duck-typed seam like ``evaluator.evaluate(...)``); precision-first
  rules can ask for resolved edges only.

The graph is rebuilt per linter invocation from the already-parsed
:class:`~repro.tooling.context.ProjectContext` — the incremental cache
makes re-parsing cheap, and building the graph itself is linear in the
AST size.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.tooling.context import ModuleContext, ProjectContext

__all__ = ["FunctionInfo", "ModuleSymbols", "ProjectGraph", "build_graph"]


@dataclass
class FunctionInfo:
    """One function or method definition with its call sites."""

    qualname: str  #: e.g. ``repro.nas.evaluation.TrainingEvaluator.evaluate``
    bare_name: str  #: the trailing identifier, e.g. ``evaluate``
    module: str  #: dotted module name
    class_name: str | None  #: owning class, if a method
    node: ast.AST  #: the ``FunctionDef`` / ``AsyncFunctionDef``
    calls: list[tuple[str, str]] = field(default_factory=list)  #: (kind, target)


@dataclass
class ModuleSymbols:
    """Symbol table for one module."""

    name: str
    context: ModuleContext
    imports: dict[str, str] = field(default_factory=dict)  #: local name → dotted target
    module_assigns: dict[str, ast.expr] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)  #: qualname → info
    classes: dict[str, ast.ClassDef] = field(default_factory=dict)

    def resolve(self, chain: str) -> str | None:
        """Resolve a dotted reference through this module's imports.

        ``EvalSpec`` imported from ``repro.scheduler.procpool`` resolves
        to ``repro.scheduler.procpool.EvalSpec``; ``procpool.EvalSpec``
        after ``from repro.scheduler import procpool`` does too.  Returns
        ``None`` when the head is not an import or module symbol.
        """
        head, _, rest = chain.partition(".")
        target = self.imports.get(head)
        if target is None:
            local = f"{self.name}.{head}"
            if head in self.classes or local in self.functions or head in self.module_assigns:
                target = local
            else:
                return None
        return f"{target}.{rest}" if rest else target


def _relative_base(mod_name: str, level: int, is_package: bool) -> str:
    """The package a ``from ...x import y`` (level dots) resolves against."""
    parts = mod_name.split(".")
    # a package module (__init__) is its own first parent
    drop = level - 1 if is_package else level
    if drop > 0:
        parts = parts[:-drop] if drop < len(parts) else []
    return ".".join(parts)


def _collect_imports(module: ModuleContext, symbols: ModuleSymbols) -> None:
    is_package = module.pkg_path.endswith("/__init__.py")
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                symbols.imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                prefix = _relative_base(symbols.name, node.level, is_package)
                base = f"{prefix}.{base}" if base and prefix else (prefix or base)
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                symbols.imports[local] = f"{base}.{alias.name}" if base else alias.name


class _FunctionCollector(ast.NodeVisitor):
    """Index functions/methods; nested defs fold into their enclosing function."""

    def __init__(self, symbols: ModuleSymbols) -> None:
        self.symbols = symbols
        self._class_stack: list[str] = []
        self._func_stack: list[FunctionInfo] = []

    def _visit_func(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        if self._func_stack:
            # nested function: its body belongs to the enclosing function
            self._func_stack.append(self._func_stack[-1])
            self.generic_visit(node)
            self._func_stack.pop()
            return
        class_name = self._class_stack[-1] if self._class_stack else None
        prefix = f"{self.symbols.name}.{class_name}." if class_name else f"{self.symbols.name}."
        info = FunctionInfo(
            qualname=f"{prefix}{node.name}",
            bare_name=node.name,
            module=self.symbols.name,
            class_name=class_name,
            node=node,
        )
        self.symbols.functions[info.qualname] = info
        self._func_stack.append(info)
        self.generic_visit(node)
        self._func_stack.pop()

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._func_stack:
            self.generic_visit(node)
            return
        self.symbols.classes[node.name] = node
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class ProjectGraph:
    """Import graph + symbol tables + call graph over one project."""

    modules: dict[str, ModuleSymbols] = field(default_factory=dict)
    imports: dict[str, set[str]] = field(default_factory=dict)  #: module → imported modules
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    by_bare_name: dict[str, list[str]] = field(default_factory=dict)

    # -- queries ---------------------------------------------------------------

    def functions_in(self, *mod_names: str) -> list[FunctionInfo]:
        """All functions defined in the named modules (exact dotted names)."""
        wanted = set(mod_names)
        return [f for f in self.functions.values() if f.module in wanted]

    def imported_by(self, mod_name: str) -> set[str]:
        """Project modules the named module imports (transitively closed
        by calling repeatedly; this returns the direct edge set)."""
        return self.imports.get(mod_name, set())

    def reachable(
        self, entries: list[str], *, name_matches: bool = True
    ) -> dict[str, tuple[str, ...]]:
        """Call-graph closure from ``entries`` with witness chains.

        Returns ``{qualname: (entry, ..., qualname)}`` — the first
        discovered path from an entry point, breadth-first, so the
        witness in a diagnostic is a *shortest* chain.  ``name_matches``
        includes the approximate by-bare-name edges; precision-first
        rules (e.g. the dtype pack) pass ``False`` to follow only
        statically resolved bindings.
        """
        frontier = [q for q in entries if q in self.functions]
        chains: dict[str, tuple[str, ...]] = {q: (q,) for q in frontier}
        while frontier:
            next_frontier: list[str] = []
            for qualname in frontier:
                info = self.functions[qualname]
                for kind, target in info.calls:
                    if kind == "name" and not name_matches:
                        continue
                    candidates = (
                        self.by_bare_name.get(target, ())
                        if kind == "name"
                        else ((target,) if target in self.functions else ())
                    )
                    for candidate in candidates:
                        if candidate not in chains:
                            chains[candidate] = chains[qualname] + (candidate,)
                            next_frontier.append(candidate)
            frontier = next_frontier
        return chains


def _collect_calls(graph: ProjectGraph, symbols: ModuleSymbols) -> None:
    """Attach (kind, target) call edges to every function in ``symbols``."""
    method_index = {
        (f.module, f.class_name, f.bare_name): f.qualname
        for f in symbols.functions.values()
        if f.class_name is not None
    }
    seen_funcs: dict[int, FunctionInfo] = {}
    for info in symbols.functions.values():
        if id(info.node) in seen_funcs:
            continue
        seen_funcs[id(info.node)] = info
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            chain = _dotted(node.func)
            if chain is None:
                continue
            head, _, rest = chain.partition(".")
            if not rest:
                # bare call: module function, imported function, else unresolved
                local = f"{symbols.name}.{head}"
                if local in graph.functions:
                    info.calls.append(("resolved", local))
                    continue
                resolved = symbols.imports.get(head)
                if resolved is not None:
                    if resolved in graph.functions:
                        info.calls.append(("resolved", resolved))
                    elif head in graph.by_bare_name:
                        info.calls.append(("name", head))
                elif head in graph.by_bare_name:
                    info.calls.append(("name", head))
                continue
            final = chain.rsplit(".", 1)[1]
            if head == "self" and info.class_name is not None and chain.count(".") == 1:
                own = method_index.get((symbols.name, info.class_name, final))
                if own is not None:
                    info.calls.append(("resolved", own))
                    continue
                info.calls.append(("name", final))
                continue
            resolved = symbols.resolve(chain)
            if resolved is not None and resolved in graph.functions:
                info.calls.append(("resolved", resolved))
            elif final in graph.by_bare_name:
                info.calls.append(("name", final))


def build_graph(project: ProjectContext) -> ProjectGraph:
    """Build the full semantic graph for one parsed project.

    Memoized on the project: every project-scoped rule in one linter
    invocation shares a single graph build (the project's module list
    is fully populated before any rule runs).
    """
    cached = getattr(project, "_graph_cache", None)
    if cached is not None and cached[0] == len(project.modules):
        return cached[1]
    graph = ProjectGraph()
    for module in project.modules:
        symbols = ModuleSymbols(name=module.mod_name, context=module)
        _collect_imports(module, symbols)
        _FunctionCollector(symbols).visit(module.tree)
        for stmt in module.tree.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        symbols.module_assigns[target.id] = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if isinstance(stmt.target, ast.Name):
                    symbols.module_assigns[stmt.target.id] = stmt.value
        graph.modules[symbols.name] = symbols
        graph.functions.update(symbols.functions)
    # import graph restricted to modules in the project
    known = set(graph.modules)
    for name, symbols in graph.modules.items():
        edges = set()
        for target in symbols.imports.values():
            probe = target
            while probe:
                if probe in known and probe != name:
                    edges.add(probe)
                    break
                probe = probe.rpartition(".")[0]
        graph.imports[name] = edges
    for info in graph.functions.values():
        graph.by_bare_name.setdefault(info.bare_name, []).append(info.qualname)
    for symbols in graph.modules.values():
        _collect_calls(graph, symbols)
    project._graph_cache = (len(project.modules), graph)
    return graph
