"""Correctness tooling for the A4NN stack.

Two halves (see README § ``a4nn check``):

* a self-hosted AST linter (:mod:`repro.tooling.linter`) with
  project-specific rules enforcing the determinism, API-contract,
  numerical-safety, and lineage invariants the workflow relies on; and
* an opt-in runtime sanitizer (:mod:`repro.tooling.sanitizer`) that
  asserts finite activations/gradients/losses and layer shape
  contracts during real training, raising a structured
  :class:`~repro.tooling.sanitizer.NumericalFault` recorded into
  lineage.
"""

from repro.tooling.diagnostics import Diagnostic, Severity, render_json, render_text
from repro.tooling.linter import CheckResult, Linter, run_check
from repro.tooling.rules import Rule, all_rules, register, rule_ids
from repro.tooling.sanitizer import NumericalFault, Sanitizer

__all__ = [
    "CheckResult",
    "Diagnostic",
    "Linter",
    "NumericalFault",
    "Rule",
    "Sanitizer",
    "Severity",
    "all_rules",
    "register",
    "render_json",
    "render_text",
    "rule_ids",
    "run_check",
]
