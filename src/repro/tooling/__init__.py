"""Correctness tooling for the A4NN stack.

Three layers (see README § ``a4nn check``):

* a self-hosted AST linter (:mod:`repro.tooling.linter`) with
  project-specific rules enforcing the determinism, API-contract,
  numerical-safety, and lineage invariants the workflow relies on;
* a project-wide semantic engine (:mod:`repro.tooling.graph`,
  :mod:`repro.tooling.dataflow`) giving cross-file rules an import
  graph, symbol tables, an approximate call graph, and value tracing —
  plus an incremental per-file cache (:mod:`repro.tooling.cache`), a
  grandfathered-findings baseline (:mod:`repro.tooling.baseline`), and
  span-exact autofixes (:mod:`repro.tooling.fixes`); and
* an opt-in runtime sanitizer (:mod:`repro.tooling.sanitizer`) that
  asserts finite activations/gradients/losses and layer shape
  contracts during real training, raising a structured
  :class:`~repro.tooling.sanitizer.NumericalFault` recorded into
  lineage.
"""

from repro.tooling.baseline import apply_baseline, load_baseline, write_baseline
from repro.tooling.cache import AnalysisCache
from repro.tooling.diagnostics import (
    Diagnostic,
    Fix,
    RelatedLocation,
    Severity,
    render_json,
    render_sarif,
    render_text,
)
from repro.tooling.fixes import apply_fixes
from repro.tooling.graph import ProjectGraph, build_graph
from repro.tooling.linter import CheckResult, Linter, run_check
from repro.tooling.rules import Rule, all_rules, markdown_catalog, register, rule_ids
from repro.tooling.sanitizer import NumericalFault, Sanitizer

__all__ = [
    "AnalysisCache",
    "CheckResult",
    "Diagnostic",
    "Fix",
    "Linter",
    "NumericalFault",
    "ProjectGraph",
    "RelatedLocation",
    "Rule",
    "Sanitizer",
    "Severity",
    "all_rules",
    "apply_baseline",
    "apply_fixes",
    "build_graph",
    "load_baseline",
    "markdown_catalog",
    "register",
    "render_json",
    "render_sarif",
    "render_text",
    "rule_ids",
    "run_check",
    "write_baseline",
]
