"""Parsed-module and project contexts handed to lint rules.

Rules never read the filesystem themselves: the linter parses every
file once into a :class:`ModuleContext` (source, AST, comment tokens)
and groups them in a :class:`ProjectContext` so cross-file rules (e.g.
the lineage schema-drift check) can look up sibling modules whether the
sources came from disk or from in-memory test fixtures.
"""

from __future__ import annotations

import ast
import hashlib
import io
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["ModuleContext", "ProjectContext", "package_path", "module_name", "content_hash"]

_PACKAGE_ROOT = "repro"


def module_name(pkg_path: str) -> str:
    """Dotted module name for a package-rooted path.

    ``repro/nn/layers/dense.py`` → ``repro.nn.layers.dense``;
    ``repro/nn/layers/__init__.py`` → ``repro.nn.layers``.  Paths outside
    the package keep their stem chain so fixtures still get stable names.
    """
    parts = pkg_path.split("/")
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def content_hash(data: str | bytes) -> str:
    """Stable BLAKE2b digest of file content (the incremental-cache key)."""
    if isinstance(data, str):
        data = data.encode("utf-8")
    return hashlib.blake2b(data, digest_size=16).hexdigest()


def package_path(path: str | Path) -> str:
    """The path tail starting at the ``repro`` package root, POSIX style.

    ``src/repro/nn/layers/dense.py`` → ``repro/nn/layers/dense.py``.
    Paths outside the package are returned unchanged (as POSIX), which
    keeps location-scoped rules inert on foreign files.
    """
    posix = Path(path).as_posix()
    parts = posix.split("/")
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == _PACKAGE_ROOT:
            return "/".join(parts[i:])
    return posix


@dataclass
class ModuleContext:
    """One parsed source file plus its location metadata.

    Attributes
    ----------
    display_path:
        The path reported in diagnostics (as the user supplied it, or
        the virtual path of an in-memory fixture).
    pkg_path:
        ``repro/...``-rooted POSIX path used for rule scoping.
    source, tree:
        Raw text and parsed AST.
    project:
        The owning :class:`ProjectContext` (for cross-file rules).
    """

    display_path: str
    pkg_path: str
    source: str
    tree: ast.Module
    project: "ProjectContext | None" = None
    _comments: "list[tuple[int, int, str]] | None" = None

    @classmethod
    def parse(
        cls, source: str, display_path: str, *, pkg_path: str | None = None
    ) -> "ModuleContext":
        """Parse ``source``; raises :class:`SyntaxError` on bad input."""
        tree = ast.parse(source, filename=display_path)
        return cls(
            display_path=display_path,
            pkg_path=pkg_path if pkg_path is not None else package_path(display_path),
            source=source,
            tree=tree,
        )

    @classmethod
    def from_cache(
        cls,
        source: str,
        display_path: str,
        tree: ast.Module,
        comments: list[tuple[int, int, str]],
    ) -> "ModuleContext":
        """Rebuild a context from cached artifacts without re-parsing."""
        return cls(
            display_path=display_path,
            pkg_path=package_path(display_path),
            source=source,
            tree=tree,
            _comments=list(comments),
        )

    @property
    def mod_name(self) -> str:
        """Dotted module name derived from ``pkg_path``."""
        return module_name(self.pkg_path)

    def in_location(self, *suffixes_or_dirs: str) -> bool:
        """Whether this module lives at any of the given package spots.

        Arguments ending in ``/`` match directories (prefix under the
        package root); others match exact file suffixes, e.g.
        ``utils/rng.py`` or ``nn/layers/``.
        """
        for spec in suffixes_or_dirs:
            probe = f"{_PACKAGE_ROOT}/{spec}"
            if spec.endswith("/"):
                if self.pkg_path.startswith(probe):
                    return True
            elif self.pkg_path == probe or self.pkg_path.endswith("/" + spec):
                return True
        return False

    def comments(self) -> list[tuple[int, int, str]]:
        """All comment tokens as ``(line, col, text)`` triples.

        Tokenization failures (which imply the file would not parse
        either) yield an empty list; the parse-error diagnostic is
        raised separately by the linter.  The result is memoized (and
        pre-seeded when the module was rebuilt from the analysis cache).
        """
        if self._comments is not None:
            return self._comments
        found: list[tuple[int, int, str]] = []
        try:
            for token in tokenize.generate_tokens(io.StringIO(self.source).readline):
                if token.type == tokenize.COMMENT:
                    found.append((token.start[0], token.start[1], token.string))
        except (tokenize.TokenError, IndentationError, SyntaxError):
            found = []
        self._comments = found
        return found


@dataclass
class ProjectContext:
    """The set of modules under analysis in one linter invocation."""

    modules: list[ModuleContext] = field(default_factory=list)

    def add(self, module: ModuleContext) -> ModuleContext:
        module.project = self
        self.modules.append(module)
        return module

    def find(self, suffix: str) -> ModuleContext | None:
        """The first scanned module at package location ``suffix``."""
        for module in self.modules:
            if module.in_location(suffix):
                return module
        return None
