"""Abstract interpretation over the nn tensor stack.

This module gives the linter a *semantic* view of the kernel code that
PR 7 made aggressively in-place: it symbolically executes function
bodies in ``nn/`` and ``nas/decoder.py`` over four small abstract
domains and records facts the SHAPE/ALIAS/EFF rule packs turn into
diagnostics.

Domains (see DESIGN §13 for soundness limits):

* **Shape expressions** — every dimension is a :class:`Poly`, an integer
  polynomial over named size symbols (``n``, ``self.out_channels``,
  ``(h//2)``).  Two dims are *provably* unequal only when their
  difference is provably positive under the positive-dims assumption
  (every size symbol ≥ 1), so all mismatch findings are conservative.
* **Dtype tokens** — concrete numpy names (``"float32"``), symbolic
  tokens tied to a value (``"~x.dtype"``), or ``None`` (unknown).
  Findings fire only when *both* sides are concrete floats.
* **May-alias roots** — each array value carries the set of storage
  roots it may view: function parameters (``param:x``), attributes
  reached from ``self`` (``self.weight``), arena scratch
  (``buf:cols``), and fresh allocations (``alloc:line:col``).  Two
  values may alias iff their root sets intersect.  Unknown calls return
  rootless values: the analysis *under*-approximates aliasing, which is
  exactly what the runtime write guard backstops.
* **Effect summaries** — mutation events (in-place stores, ``out=``
  targets, augmented assigns) keyed by the roots they hit, folded into
  a per-function ``mutates: ...`` summary.

The interpreter is intraprocedural: calls are opaque except for numpy
(resolved through the project import graph so ``import numpy as xp``
still counts), arena ``_buf``/``buffer`` allocation, and a handful of
array methods.  Branches join; loop bodies run once and join.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field, replace

from repro.tooling.context import ModuleContext

__all__ = [
    "AValue",
    "FunctionFacts",
    "ModuleFacts",
    "Poly",
    "TensorInterp",
    "declared_mutations",
    "module_facts",
]


# ---------------------------------------------------------------------------
# shape polynomials


@dataclass(frozen=True)
class Poly:
    """Integer polynomial over named size symbols.

    ``terms`` maps a monomial (sorted tuple of symbol names, repeats for
    powers) to its coefficient; stored as a sorted tuple so instances
    hash and compare structurally.  Non-polynomial arithmetic (``//``,
    ``%``) collapses into a *derived symbol* named from the rendered
    operands, so the same source expression evaluated twice compares
    equal — enough to prove ``oh*ow == oh*ow`` across statements.
    """

    const: int = 0
    terms: tuple[tuple[tuple[str, ...], int], ...] = ()

    @staticmethod
    def of(value: int) -> "Poly":
        return Poly(const=int(value))

    @staticmethod
    def sym(name: str) -> "Poly":
        return Poly(terms=(((name,), 1),))

    @staticmethod
    def _norm(const: int, terms: dict[tuple[str, ...], int]) -> "Poly":
        kept = tuple(sorted((m, c) for m, c in terms.items() if c != 0))
        return Poly(const=const, terms=kept)

    def __add__(self, other: "Poly") -> "Poly":
        terms = dict(self.terms)
        for mono, coeff in other.terms:
            terms[mono] = terms.get(mono, 0) + coeff
        return Poly._norm(self.const + other.const, terms)

    def __sub__(self, other: "Poly") -> "Poly":
        return self + (-other)

    def __neg__(self) -> "Poly":
        return Poly(const=-self.const, terms=tuple((m, -c) for m, c in self.terms))

    def __mul__(self, other: "Poly") -> "Poly":
        terms: dict[tuple[str, ...], int] = {}
        if other.const:
            for mono, coeff in self.terms:
                terms[mono] = terms.get(mono, 0) + coeff * other.const
        if self.const:
            for mono, coeff in other.terms:
                terms[mono] = terms.get(mono, 0) + coeff * self.const
        for m1, c1 in self.terms:
            for m2, c2 in other.terms:
                mono = tuple(sorted(m1 + m2))
                terms[mono] = terms.get(mono, 0) + c1 * c2
        return Poly._norm(self.const * other.const, terms)

    @property
    def as_const(self) -> int | None:
        return self.const if not self.terms else None

    def is_provably_positive(self) -> bool:
        """True when the value is > 0 whenever every symbol is ≥ 1."""
        if self.const < 0 or any(c < 0 for _, c in self.terms):
            return False
        return self.const > 0 or any(c > 0 for _, c in self.terms)

    def render(self) -> str:
        parts: list[str] = []
        for mono, coeff in self.terms:
            body = "*".join(mono)
            parts.append(body if coeff == 1 else f"{coeff}*{body}")
        if self.const or not parts:
            parts.append(str(self.const))
        return "+".join(parts)


def provably_ne(a: Poly, b: Poly) -> bool:
    """True only when ``a != b`` is certain under positive dims."""
    diff = a - b
    return diff.is_provably_positive() or (-diff).is_provably_positive()


# ---------------------------------------------------------------------------
# dtype tokens

_NP_DTYPE_ATTRS = {
    "float16",
    "float32",
    "float64",
    "int8",
    "int16",
    "int32",
    "int64",
    "uint8",
    "intp",
    "bool_",
    "complex64",
    "complex128",
}
_CONCRETE_FLOATS = {"float16", "float32", "float64"}


def _both_concrete_floats(a: str | None, b: str | None) -> bool:
    return a in _CONCRETE_FLOATS and b in _CONCRETE_FLOATS


# ---------------------------------------------------------------------------
# abstract values


_EMPTY_ROOTS: frozenset[str] = frozenset()


@dataclass(frozen=True)
class AValue:
    """One abstract value: array facets + scalar polynomial + tuple."""

    shape: tuple[Poly, ...] | None = None
    dtype: str | None = None
    roots: frozenset[str] = _EMPTY_ROOTS
    poly: Poly | None = None
    tup: "tuple[AValue, ...] | None" = None

    def all_roots(self) -> frozenset[str]:
        roots = self.roots
        if self.tup:
            for elt in self.tup:
                roots = roots | elt.all_roots()
        return roots


def _join(a: AValue, b: AValue, fresh: "_SymGen") -> AValue:
    if a is b or a == b:
        return a
    shape: tuple[Poly, ...] | None = None
    if a.shape is not None and b.shape is not None and len(a.shape) == len(b.shape):
        shape = tuple(
            da if da == db else fresh.sym() for da, db in zip(a.shape, b.shape)
        )
    dtype = a.dtype if a.dtype == b.dtype else None
    poly = a.poly if a.poly == b.poly else None
    tup: tuple[AValue, ...] | None = None
    if a.tup is not None and b.tup is not None and len(a.tup) == len(b.tup):
        tup = tuple(_join(x, y, fresh) for x, y in zip(a.tup, b.tup))
    return AValue(shape=shape, dtype=dtype, roots=a.roots | b.roots, poly=poly, tup=tup)


class _SymGen:
    """Deterministic fresh-symbol source (site-keyed, run-stable)."""

    def __init__(self, tag: str) -> None:
        self._tag = tag
        self._n = 0

    def sym(self) -> Poly:
        self._n += 1
        return Poly.sym(f"?{self._tag}.{self._n}")


# ---------------------------------------------------------------------------
# facts


@dataclass
class FunctionFacts:
    """Everything the interpreter proved about one function body."""

    qualname: str
    node: ast.AST
    shape_findings: list[tuple[ast.AST, str]] = field(default_factory=list)
    dtype_findings: list[tuple[ast.AST, str]] = field(default_factory=list)
    alias_findings: list[tuple[ast.AST, str]] = field(default_factory=list)
    #: (node, kind, root, detail); kind in {returned, stored-on-self,
    #: captured, stored-in-container}
    escapes: list[tuple[ast.AST, str, str, str]] = field(default_factory=list)
    #: (node, roots, how)
    mutations: list[tuple[ast.AST, frozenset[str], str]] = field(default_factory=list)

    def effect_summary(self) -> tuple[str, ...]:
        """Human-readable ``mutates:`` entries, sorted and deduped."""
        out: set[str] = set()
        for _node, roots, _how in self.mutations:
            for root in roots:
                if root.startswith("param:"):
                    out.add(root.split(":", 1)[1])
                elif root.startswith("self."):
                    out.add(root)
                elif root.startswith("buf:"):
                    out.add(f"scratch({root.split(':', 1)[1]})")
        return tuple(sorted(out))


@dataclass
class ModuleFacts:
    functions: list[FunctionFacts] = field(default_factory=list)


# ---------------------------------------------------------------------------
# effect-contract annotations

_MUTATES_RE = re.compile(r"#\s*a4nn:\s*mutates\(([^)]*)\)(?:\s*--\s*(\S.*))?")


def declared_mutations(module: ModuleContext, func_node: ast.AST) -> dict[str, str]:
    """``# a4nn: mutates(name, ...) -- reason`` comments inside a function.

    Returns parameter name → justification.  These are the explicit
    in-place contracts EFF001 honours instead of flagging.
    """
    start = getattr(func_node, "lineno", 0)
    end = getattr(func_node, "end_lineno", start)
    declared: dict[str, str] = {}
    for line, _col, text in module.comments():
        if not start <= line <= end:
            continue
        match = _MUTATES_RE.search(text)
        if match is None:
            continue
        reason = (match.group(2) or "").strip()
        for name in match.group(1).split(","):
            name = name.strip()
            if name:
                declared[name] = reason
    return declared


# ---------------------------------------------------------------------------
# numpy call classification

#: ufuncs whose out= may alias an input operand (elementwise semantics
#: make the overlap well-defined).
SAFE_OUT_UFUNCS = {
    "abs",
    "absolute",
    "add",
    "arctan",
    "clip",
    "copysign",
    "copyto",
    "cos",
    "divide",
    "equal",
    "exp",
    "floor_divide",
    "greater",
    "greater_equal",
    "less",
    "less_equal",
    "log",
    "logical_and",
    "logical_not",
    "logical_or",
    "maximum",
    "minimum",
    "mod",
    "multiply",
    "negative",
    "not_equal",
    "power",
    "remainder",
    "sign",
    "sin",
    "sqrt",
    "square",
    "subtract",
    "tanh",
    "true_divide",
    "where",
}

#: calls where out= aliasing a read operand is undefined behaviour —
#: the kernel reads operands non-elementwise while writing out.
UNSAFE_OUT_CALLS = {
    "amax",
    "amin",
    "argmax",
    "argmin",
    "cross",
    "cumprod",
    "cumsum",
    "dot",
    "einsum",
    "inner",
    "matmul",
    "max",
    "mean",
    "median",
    "min",
    "outer",
    "prod",
    "std",
    "sum",
    "take",
    "tensordot",
    "var",
}

_ALLOCATORS = {"arange", "empty", "full", "ones", "zeros"}
_ALLOCATOR_LIKES = {"empty_like", "full_like", "ones_like", "zeros_like"}
_REDUCTIONS = {
    "amax",
    "amin",
    "argmax",
    "argmin",
    "max",
    "mean",
    "median",
    "min",
    "prod",
    "std",
    "sum",
    "var",
}
_VIEW_CALLS = {
    "ascontiguousarray",
    "asarray",
    "atleast_2d",
    "broadcast_to",
    "ravel",
    "sliding_window_view",
    "squeeze",
}


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# ---------------------------------------------------------------------------
# the interpreter


class TensorInterp:
    """Abstractly execute one function body and record facts."""

    def __init__(
        self,
        module: ModuleContext,
        func_node: ast.FunctionDef | ast.AsyncFunctionDef,
        *,
        qualname: str,
        symbols=None,
        np_names: frozenset[str] = frozenset({"np", "numpy"}),
    ) -> None:
        self.module = module
        self.func = func_node
        self.symbols = symbols
        self.np_names = np_names
        self.facts = FunctionFacts(qualname=qualname, node=func_node)
        self._fresh = _SymGen(f"{func_node.lineno}")
        self.param_names: list[str] = []

    # -- entry ----------------------------------------------------------

    def run(self) -> FunctionFacts:
        env: dict[str, AValue] = {}
        args = self.func.args
        every = [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
        ]
        for i, arg in enumerate(every):
            name = arg.arg
            if i == 0 and name in {"self", "cls"}:
                env[name] = AValue()
                continue
            self.param_names.append(name)
            env[name] = AValue(
                roots=frozenset({f"param:{name}"}),
                dtype=f"~{name}.dtype",
                poly=Poly.sym(name),
            )
        for extra in (args.vararg, args.kwarg):
            if extra is not None:
                env[extra.arg] = AValue(roots=frozenset({f"param:{extra.arg}"}))
                self.param_names.append(extra.arg)
        self._exec_block(self.func.body, env)
        return self.facts

    # -- statements -----------------------------------------------------

    def _exec_block(self, stmts: list[ast.stmt], env: dict[str, AValue]) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt, env)

    def _join_envs(
        self, base: dict[str, AValue], *branches: dict[str, AValue]
    ) -> dict[str, AValue]:
        names: set[str] = set()
        for branch in branches:
            names.update(branch)
        joined: dict[str, AValue] = {}
        for name in names:
            avs = [b[name] for b in branches if name in b]
            if len(avs) < len(branches):
                avs.append(base.get(name, AValue()))
            acc = avs[0]
            for av in avs[1:]:
                acc = _join(acc, av, self._fresh)
            joined[name] = acc
        return joined

    def _exec_stmt(self, stmt: ast.stmt, env: dict[str, AValue]) -> None:
        if isinstance(stmt, ast.Assign):
            self._exec_assign(stmt, env)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                av = self._eval(stmt.value, env)
                self._assign_target(stmt.target, av, stmt, env)
        elif isinstance(stmt, ast.AugAssign):
            self._exec_augassign(stmt, env)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value, env)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                av = self._eval(stmt.value, env)
                for root in sorted(av.all_roots()):
                    if root.startswith("buf:"):
                        self.facts.escapes.append(
                            (stmt, "returned", root, self.func.name)
                        )
        elif isinstance(stmt, ast.If):
            then_env = dict(env)
            else_env = dict(env)
            self._eval(stmt.test, env)
            self._exec_block(stmt.body, then_env)
            self._exec_block(stmt.orelse, else_env)
            joined = self._join_envs(env, then_env, else_env)
            env.clear()
            env.update(joined)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._exec_for(stmt, env)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test, env)
            body_env = dict(env)
            self._exec_block(stmt.body, body_env)
            self._exec_block(stmt.orelse, body_env)
            env.update(self._join_envs(env, dict(env), body_env))
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                ctx = self._eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._assign_target(
                        item.optional_vars, AValue(roots=ctx.roots), stmt, env
                    )
            self._exec_block(stmt.body, env)
        elif isinstance(stmt, ast.Try):
            body_env = dict(env)
            self._exec_block(stmt.body, body_env)
            branch_envs = [body_env]
            for handler in stmt.handlers:
                h_env = dict(env)
                self._exec_block(handler.body, h_env)
                branch_envs.append(h_env)
            else_env = dict(body_env)
            self._exec_block(stmt.orelse, else_env)
            branch_envs.append(else_env)
            env.update(self._join_envs(env, *branch_envs))
            self._exec_block(stmt.finalbody, env)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._scan_captures(stmt, env)
        elif isinstance(stmt, (ast.Assert, ast.Raise)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child, env)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        # Pass / Break / Continue / Global / Import / class defs: no-op

    def _exec_assign(self, stmt: ast.Assign, env: dict[str, AValue]) -> None:
        # special case: `n, c, h, w = x.shape` binds dim symbols and
        # back-patches x's shape so later reshape checks can use it
        value = stmt.value
        if (
            isinstance(value, ast.Attribute)
            and value.attr == "shape"
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], (ast.Tuple, ast.List))
            and all(isinstance(e, ast.Name) for e in stmt.targets[0].elts)
        ):
            base_av = self._eval(value.value, env)
            elts = stmt.targets[0].elts
            if base_av.shape is not None and len(base_av.shape) == len(elts):
                dims = base_av.shape
            else:
                chain = _dotted(value.value) or f"?{value.lineno}:{value.col_offset}"
                dims = tuple(Poly.sym(f"{chain}.{i}") for i in range(len(elts)))
                if isinstance(value.value, ast.Name):
                    env[value.value.id] = replace(base_av, shape=dims)
            for elt, dim in zip(elts, dims):
                env[elt.id] = AValue(poly=dim)
            return
        av = self._eval(value, env)
        for target in stmt.targets:
            self._assign_target(target, av, stmt, env, value_node=value)

    def _assign_target(
        self,
        target: ast.expr,
        av: AValue,
        stmt: ast.stmt,
        env: dict[str, AValue],
        *,
        value_node: ast.expr | None = None,
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = av
        elif isinstance(target, (ast.Tuple, ast.List)):
            self._unpack_tuple(target, av, stmt, env, value_node)
        elif isinstance(target, ast.Starred):
            self._assign_target(target.value, av, stmt, env)
        elif isinstance(target, ast.Attribute):
            base_av = self._eval(target.value, env)
            escaped = sorted(
                r for r in av.all_roots() if r.startswith("buf:")
            )
            for root in escaped:
                self.facts.escapes.append(
                    (stmt, "stored-on-self", root, target.attr)
                )
            if base_av.roots:
                self.facts.mutations.append(
                    (stmt, base_av.roots, f"attribute store .{target.attr}")
                )
        elif isinstance(target, ast.Subscript):
            base_av = self._eval(target.value, env)
            self._eval(target.slice, env)
            if base_av.roots:
                self.facts.mutations.append(
                    (stmt, base_av.roots, "subscript store")
                )
            if any(r.startswith("self.") for r in base_av.roots):
                for root in sorted(av.all_roots()):
                    if root.startswith("buf:"):
                        self.facts.escapes.append(
                            (stmt, "stored-in-container", root, "subscript")
                        )

    def _unpack_tuple(
        self,
        target: ast.Tuple | ast.List,
        av: AValue,
        stmt: ast.stmt,
        env: dict[str, AValue],
        value_node: ast.expr | None,
    ) -> None:
        elts = target.elts
        starred = [i for i, e in enumerate(elts) if isinstance(e, ast.Starred)]
        if av.tup is not None and not starred and len(av.tup) == len(elts):
            for elt, item in zip(elts, av.tup):
                self._assign_target(elt, item, stmt, env)
            return
        if av.tup is not None and len(starred) == 1 and len(av.tup) >= len(elts) - 1:
            s = starred[0]
            n_tail = len(elts) - s - 1
            for elt, item in zip(elts[:s], av.tup[:s]):
                self._assign_target(elt, item, stmt, env)
            middle = av.tup[s : len(av.tup) - n_tail]
            mid_av = AValue(tup=middle) if middle else AValue()
            self._assign_target(elts[s], mid_av, stmt, env)
            if n_tail:
                for elt, item in zip(elts[s + 1 :], av.tup[-n_tail:]):
                    self._assign_target(elt, item, stmt, env)
            return
        # opaque source: every bound name may view the source's storage
        chain = (
            _dotted(value_node)
            if value_node is not None
            else None
        ) or f"?{getattr(stmt, 'lineno', 0)}"
        for i, elt in enumerate(elts):
            item = AValue(roots=av.roots, poly=Poly.sym(f"{chain}.{i}"))
            self._assign_target(elt, item, stmt, env)

    def _exec_augassign(self, stmt: ast.AugAssign, env: dict[str, AValue]) -> None:
        self._eval(stmt.value, env)
        target = stmt.target
        if isinstance(target, ast.Name):
            current = env.get(target.id, AValue())
            if current.roots:
                self.facts.mutations.append(
                    (stmt, current.roots, "augmented assignment")
                )
            # scalar bookkeeping: drop the stale polynomial, keep storage
            env[target.id] = replace(current, poly=None)
        elif isinstance(target, ast.Attribute):
            base_av = self._eval(target.value, env)
            if base_av.roots:
                self.facts.mutations.append(
                    (stmt, base_av.roots, f"augmented assignment .{target.attr}")
                )
        elif isinstance(target, ast.Subscript):
            base_av = self._eval(target.value, env)
            self._eval(target.slice, env)
            if base_av.roots:
                self.facts.mutations.append(
                    (stmt, base_av.roots, "augmented subscript store")
                )

    def _exec_for(self, stmt: ast.For | ast.AsyncFor, env: dict[str, AValue]) -> None:
        iter_node = stmt.iter
        target_av = AValue()
        if (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Name)
            and iter_node.func.id in {"range", "enumerate", "reversed", "sorted", "zip"}
        ):
            for arg in iter_node.args:
                self._eval(arg, env)
            if iter_node.func.id == "range" and isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = AValue(poly=Poly.sym(stmt.target.id))
                target_av = None  # handled
        elif isinstance(iter_node, ast.Call) and isinstance(
            iter_node.func, ast.Attribute
        ):
            # iterating a method call on a rooted object hands out views
            # of that object's storage (`for _, p in net.parameters()`)
            base_av = self._eval(iter_node.func.value, env)
            for arg in iter_node.args:
                self._eval(arg, env)
            target_av = AValue(roots=base_av.roots)
        else:
            it = self._eval(iter_node, env)
            target_av = AValue(roots=it.roots)
        if target_av is not None:
            if isinstance(stmt.target, (ast.Tuple, ast.List)):
                for elt in stmt.target.elts:
                    self._assign_target(elt, AValue(roots=target_av.roots), stmt, env)
            else:
                self._assign_target(stmt.target, target_av, stmt, env)
        body_env = dict(env)
        self._exec_block(stmt.body, body_env)
        self._exec_block(stmt.orelse, body_env)
        env.update(self._join_envs(env, dict(env), body_env))

    # -- captures -------------------------------------------------------

    def _scan_captures(self, node: ast.AST, env: dict[str, AValue]) -> None:
        """Flag arena scratch captured by a nested function/lambda/genexp."""
        seen: set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                av = env.get(sub.id)
                if av is None or sub.id in seen:
                    continue
                for root in sorted(av.all_roots()):
                    if root.startswith("buf:"):
                        seen.add(sub.id)
                        self.facts.escapes.append(
                            (node, "captured", root, sub.id)
                        )

    # -- expressions ----------------------------------------------------

    def _eval(self, node: ast.expr, env: dict[str, AValue]) -> AValue:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return AValue()
            if isinstance(node.value, int):
                return AValue(poly=Poly.of(node.value))
            return AValue()
        if isinstance(node, ast.Name):
            return env.get(node.id, AValue())
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node, env)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node, env)
        if isinstance(node, ast.UnaryOp):
            operand = self._eval(node.operand, env)
            if isinstance(node.op, ast.USub) and operand.poly is not None:
                return replace(operand, poly=-operand.poly)
            return operand
        if isinstance(node, ast.Compare):
            self._eval(node.left, env)
            for comp in node.comparators:
                self._eval(comp, env)
            return AValue(dtype="bool_")
        if isinstance(node, ast.BoolOp):
            avs = [self._eval(v, env) for v in node.values]
            acc = avs[0]
            for av in avs[1:]:
                acc = _join(acc, av, self._fresh)
            return acc
        if isinstance(node, ast.IfExp):
            self._eval(node.test, env)
            return _join(
                self._eval(node.body, env), self._eval(node.orelse, env), self._fresh
            )
        if isinstance(node, (ast.Tuple, ast.List)):
            return AValue(tup=tuple(self._eval(e, env) for e in node.elts))
        if isinstance(node, ast.Starred):
            return self._eval(node.value, env)
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node, env)
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, (ast.Lambda, ast.GeneratorExp)):
            self._scan_captures(node, env)
            return AValue()
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
            for gen in node.generators:
                self._eval(gen.iter, env)
            return AValue()
        if isinstance(node, ast.JoinedStr):
            return AValue()
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self._eval(part, env)
            return AValue()
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    self._eval(key, env)
            for value in node.values:
                self._eval(value, env)
            return AValue()
        if isinstance(node, ast.NamedExpr):
            av = self._eval(node.value, env)
            self._assign_target(node.target, av, node, env)  # type: ignore[arg-type]
            return av
        return AValue()

    def _eval_attribute(self, node: ast.Attribute, env: dict[str, AValue]) -> AValue:
        chain = _dotted(node)
        attr = node.attr
        # numpy dtype literals: np.float32 and friends
        if chain is not None:
            head, _, tail = chain.partition(".")
            if (head in self.np_names) and tail in _NP_DTYPE_ATTRS:
                return AValue(dtype=tail.rstrip("_"))
        base = self._eval(node.value, env)
        if attr == "T":
            shape = tuple(reversed(base.shape)) if base.shape is not None else None
            return replace(base, shape=shape, poly=None, tup=None)
        if attr == "shape":
            if base.shape is not None:
                return AValue(tup=tuple(AValue(poly=d) for d in base.shape))
            return AValue(poly=None)
        if attr == "dtype":
            token = base.dtype
            if token is None and chain is not None:
                token = f"~{chain}"
            return AValue(dtype=token)
        if attr == "size":
            if base.shape is not None:
                numel = Poly.of(1)
                for dim in base.shape:
                    numel = numel * dim
                return AValue(poly=numel)
            return AValue()
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            return AValue(
                roots=frozenset({f"self.{attr}"}),
                poly=Poly.sym(f"self.{attr}"),
            )
        # generic attribute access keeps the base's storage roots
        poly = Poly.sym(chain) if chain is not None else None
        return AValue(roots=base.roots, poly=poly)

    def _eval_binop(self, node: ast.BinOp, env: dict[str, AValue]) -> AValue:
        left = self._eval(node.left, env)
        right = self._eval(node.right, env)
        if isinstance(node.op, ast.MatMult):
            return self._matmul(node, left, right, None, env)
        # tuple concatenation: (n,) + shape
        if isinstance(node.op, ast.Add) and left.tup is not None and right.tup is not None:
            return AValue(tup=left.tup + right.tup)
        poly: Poly | None = None
        if left.poly is not None and right.poly is not None:
            if isinstance(node.op, ast.Add):
                poly = left.poly + right.poly
            elif isinstance(node.op, ast.Sub):
                poly = left.poly - right.poly
            elif isinstance(node.op, ast.Mult):
                poly = left.poly * right.poly
            elif isinstance(node.op, ast.Pow):
                exp = right.poly.as_const
                if exp is not None and 0 <= exp <= 4:
                    poly = Poly.of(1)
                    for _ in range(exp):
                        poly = poly * left.poly
            elif isinstance(node.op, (ast.FloorDiv, ast.Mod, ast.Div)):
                op = {ast.FloorDiv: "//", ast.Mod: "%", ast.Div: "/"}[type(node.op)]
                poly = Poly.sym(f"({left.poly.render()}{op}{right.poly.render()})")
        shape: tuple[Poly, ...] | None = None
        if left.shape is not None or right.shape is not None:
            shape = self._broadcast(node, left.shape, right.shape)
        dtype: str | None = None
        if left.dtype is not None or right.dtype is not None:
            if left.dtype == right.dtype:
                dtype = left.dtype
            elif _both_concrete_floats(left.dtype, right.dtype):
                self.facts.dtype_findings.append(
                    (
                        node,
                        f"mixed-precision arithmetic: {left.dtype} and "
                        f"{right.dtype} operands (result silently widens)",
                    )
                )
                dtype = "float64" if "float64" in (left.dtype, right.dtype) else None
        return AValue(shape=shape, dtype=dtype, poly=poly)

    def _broadcast(
        self,
        node: ast.AST,
        a: tuple[Poly, ...] | None,
        b: tuple[Poly, ...] | None,
    ) -> tuple[Poly, ...] | None:
        if a is None or b is None:
            return a if a is not None else b
        out: list[Poly] = []
        la, lb = len(a), len(b)
        for i in range(max(la, lb)):
            da = a[la - 1 - i] if i < la else None
            db = b[lb - 1 - i] if i < lb else None
            if da is None:
                out.append(db)  # type: ignore[arg-type]
            elif db is None:
                out.append(da)
            elif da == db:
                out.append(da)
            else:
                ca, cb = da.as_const, db.as_const
                if ca == 1:
                    out.append(db)
                elif cb == 1:
                    out.append(da)
                elif ca is not None and cb is not None:
                    self.facts.shape_findings.append(
                        (
                            node,
                            f"broadcast mismatch: dimension {ca} vs {cb} "
                            "cannot broadcast",
                        )
                    )
                    out.append(da)
                else:
                    out.append(self._fresh.sym())
        return tuple(reversed(out))

    def _eval_subscript(self, node: ast.Subscript, env: dict[str, AValue]) -> AValue:
        base = self._eval(node.value, env)
        idx = node.slice
        if base.tup is not None:
            if isinstance(idx, ast.Constant) and isinstance(idx.value, int):
                i = idx.value
                if -len(base.tup) <= i < len(base.tup):
                    return base.tup[i]
                return AValue()
            if isinstance(idx, ast.UnaryOp) and isinstance(idx.op, ast.USub):
                inner = idx.operand
                if isinstance(inner, ast.Constant) and isinstance(inner.value, int):
                    i = -inner.value
                    if -len(base.tup) <= i < 0:
                        return base.tup[i]
                return AValue()
            if isinstance(idx, ast.Slice):
                lo = idx.lower.value if isinstance(idx.lower, ast.Constant) else None
                hi = idx.upper.value if isinstance(idx.upper, ast.Constant) else None
                if idx.step is None:
                    return AValue(tup=base.tup[slice(lo, hi)])
            return AValue()
        self._eval(idx, env)
        # array indexing returns a view of the same storage
        return AValue(roots=base.roots, dtype=base.dtype)

    # -- calls ----------------------------------------------------------

    def _np_tail(self, chain: str) -> str | None:
        head, _, tail = chain.partition(".")
        if head in self.np_names:
            return tail or None
        if self.symbols is not None:
            resolved = self.symbols.resolve(chain)
            if resolved is not None and resolved.startswith("numpy."):
                return resolved[len("numpy.") :] or None
        return None

    def _eval_call(self, node: ast.Call, env: dict[str, AValue]) -> AValue:
        for arg in node.args:
            if isinstance(arg, (ast.Lambda, ast.GeneratorExp)):
                self._scan_captures(arg, env)
        for kw in node.keywords:
            if isinstance(kw.value, (ast.Lambda, ast.GeneratorExp)):
                self._scan_captures(kw.value, env)
        func = node.func
        if isinstance(func, ast.Attribute):
            chain = _dotted(func)
            if chain is not None:
                tail = self._np_tail(chain)
                if tail is not None:
                    return self._eval_numpy(tail, node, env)
                if func.attr == "_buf" and isinstance(func.value, ast.Name):
                    return self._eval_buf(node, env, owner=None)
                if func.attr == "buffer" and len(node.args) >= 3:
                    return self._eval_arena_buffer(node, env)
            base = self._eval(func.value, env)
            return self._eval_method(func.attr, base, node, env)
        if isinstance(func, ast.Name):
            return self._eval_name_call(func.id, node, env)
        self._eval(func, env)
        for arg in node.args:
            self._eval(arg, env)
        for kw in node.keywords:
            self._eval(kw.value, env)
        return AValue()

    # arena allocation ---------------------------------------------------

    def _buf_token(self, arg: ast.expr) -> str:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
        return f"?{arg.lineno}:{arg.col_offset}"

    def _eval_buf(
        self, node: ast.Call, env: dict[str, AValue], *, owner: str | None
    ) -> AValue:
        args = node.args
        if not args:
            return AValue()
        name = self._buf_token(args[0])
        root = f"buf:{owner}:{name}" if owner else f"buf:{name}"
        shape = self._shape_from_arg(args[1], env) if len(args) > 1 else None
        dtype = None
        if len(args) > 2:
            dtype = self._dtype_from_arg(args[2], env)
        for kw in node.keywords:
            if kw.arg == "dtype":
                dtype = self._dtype_from_arg(kw.value, env)
        if dtype is None:
            dtype = "~self.dtype"
        return AValue(shape=shape, dtype=dtype, roots=frozenset({root}))

    def _eval_arena_buffer(self, node: ast.Call, env: dict[str, AValue]) -> AValue:
        owner = self._buf_token(node.args[0])
        inner = ast.Call(
            func=node.func,
            args=node.args[1:],
            keywords=node.keywords,
        )
        ast.copy_location(inner, node)
        return self._eval_buf(inner, env, owner=owner)

    def _shape_from_arg(
        self, arg: ast.expr, env: dict[str, AValue]
    ) -> tuple[Poly, ...] | None:
        if isinstance(arg, (ast.Tuple, ast.List)):
            return tuple(self._dim_poly(e, env) for e in arg.elts)
        av = self._eval(arg, env)
        if av.tup is not None:
            return tuple(
                e.poly if e.poly is not None else self._fresh.sym() for e in av.tup
            )
        return None

    def _dim_poly(self, expr: ast.expr, env: dict[str, AValue]) -> Poly:
        av = self._eval(expr, env)
        if av.poly is not None:
            return av.poly
        return Poly.sym(f"?{expr.lineno}:{expr.col_offset}")

    def _dtype_from_arg(self, arg: ast.expr, env: dict[str, AValue]) -> str | None:
        chain = _dotted(arg)
        if chain is not None:
            head, _, tail = chain.partition(".")
            if head in self.np_names and tail in _NP_DTYPE_ATTRS:
                return tail.rstrip("_")
            av = self._eval(arg, env)
            if av.dtype is not None:
                return av.dtype
            return f"~{chain}"
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
        av = self._eval(arg, env)
        return av.dtype

    # numpy ---------------------------------------------------------------

    def _kw(self, node: ast.Call, name: str) -> ast.expr | None:
        for kw in node.keywords:
            if kw.arg == name:
                return kw.value
        return None

    def _record_mutation(
        self, node: ast.AST, roots: frozenset[str], how: str
    ) -> None:
        if roots:
            self.facts.mutations.append((node, roots, how))

    def _handle_out(
        self,
        node: ast.Call,
        env: dict[str, AValue],
        operands: list[AValue],
        *,
        safe: bool,
        result_shape: tuple[Poly, ...] | None,
        result_dtype: str | None,
        what: str,
    ) -> None:
        out_node = self._kw(node, "out")
        if out_node is None:
            return
        out_av = self._eval(out_node, env)
        self._record_mutation(node, out_av.roots, f"out= of {what}")
        if not safe:
            for operand in operands:
                overlap = out_av.roots & operand.roots
                if overlap:
                    self.facts.alias_findings.append(
                        (
                            node,
                            f"out= target of {what} may alias read operand "
                            f"(shared storage: {', '.join(sorted(overlap))}); "
                            f"{what} reads operands non-elementwise while "
                            "writing out, so overlap corrupts the result",
                        )
                    )
                    break
        if (
            result_shape is not None
            and out_av.shape is not None
            and len(result_shape) == len(out_av.shape)
        ):
            for i, (want, have) in enumerate(zip(result_shape, out_av.shape)):
                if provably_ne(want, have):
                    self.facts.shape_findings.append(
                        (
                            node,
                            f"out= buffer of {what} has dimension {i} = "
                            f"{have.render()} but the result needs "
                            f"{want.render()}",
                        )
                    )
                    break
        if _both_concrete_floats(result_dtype, out_av.dtype) and (
            result_dtype != out_av.dtype
        ):
            self.facts.dtype_findings.append(
                (
                    node,
                    f"out= buffer of {what} is {out_av.dtype} but the result "
                    f"dtype is {result_dtype}: silent "
                    + ("narrowing" if out_av.dtype == "float32" else "widening")
                    + " outside the nn/dtype policy seam",
                )
            )

    def _eval_numpy(
        self, tail: str, node: ast.Call, env: dict[str, AValue]
    ) -> AValue:
        if tail.endswith(".at"):
            # ufunc.at(target, idx[, value]) mutates target in place
            avs = [self._eval(a, env) for a in node.args]
            if avs:
                self._record_mutation(node, avs[0].roots, f"np.{tail}")
            return AValue()
        name = tail.rsplit(".", 1)[-1]
        if name in _ALLOCATORS:
            return self._numpy_alloc(name, node, env)
        if name in _ALLOCATOR_LIKES:
            return self._numpy_alloc_like(node, env)
        if name in {"matmul", "dot"}:
            left = self._eval(node.args[0], env) if node.args else AValue()
            right = self._eval(node.args[1], env) if len(node.args) > 1 else AValue()
            return self._matmul(node, left, right, node, env)
        if name == "einsum":
            return self._einsum(node, env)
        if name in _REDUCTIONS:
            return self._reduction(name, node, env)
        if name in {"cumsum", "cumprod"}:
            src = self._eval(node.args[0], env) if node.args else AValue()
            self._handle_out(
                node, env, [src], safe=False,
                result_shape=src.shape, result_dtype=src.dtype, what=f"np.{name}",
            )
            for kw in node.keywords:
                if kw.arg != "out":
                    self._eval(kw.value, env)
            return AValue(shape=src.shape, dtype=src.dtype)
        if name == "copyto":
            return self._copyto(node, env)
        if name == "take":
            src = self._eval(node.args[0], env) if node.args else AValue()
            for arg in node.args[1:]:
                self._eval(arg, env)
            self._handle_out(
                node, env, [src], safe=False,
                result_shape=None, result_dtype=src.dtype, what="np.take",
            )
            return AValue(dtype=src.dtype)
        if name in _VIEW_CALLS:
            src = self._eval(node.args[0], env) if node.args else AValue()
            for arg in node.args[1:]:
                self._eval(arg, env)
            for kw in node.keywords:
                self._eval(kw.value, env)
            shape = src.shape if name in {"asarray", "ascontiguousarray"} else None
            return AValue(shape=shape, dtype=src.dtype, roots=src.roots)
        if name in SAFE_OUT_UFUNCS:
            operands = [self._eval(a, env) for a in node.args]
            shapes = [av.shape for av in operands if av.shape is not None]
            result_shape = None
            if shapes:
                result_shape = shapes[0]
                for other in shapes[1:]:
                    result_shape = self._broadcast(node, result_shape, other)
            result_dtype = self._elementwise_dtype(node, name, operands)
            self._handle_out(
                node, env, operands, safe=True,
                result_shape=result_shape, result_dtype=result_dtype,
                what=f"np.{name}",
            )
            for kw in node.keywords:
                if kw.arg not in {"out"}:
                    self._eval(kw.value, env)
            if name in {
                "equal", "greater", "greater_equal", "less", "less_equal",
                "logical_and", "logical_not", "logical_or", "not_equal",
            }:
                result_dtype = "bool_"
            return AValue(shape=result_shape, dtype=result_dtype)
        # unknown numpy call: evaluate operands, return a fresh value
        for arg in node.args:
            self._eval(arg, env)
        for kw in node.keywords:
            self._eval(kw.value, env)
        return AValue()

    def _elementwise_dtype(
        self, node: ast.AST, name: str, operands: list[AValue]
    ) -> str | None:
        dtypes = [av.dtype for av in operands if av.dtype is not None]
        concrete = [d for d in dtypes if d in _CONCRETE_FLOATS]
        if len(set(concrete)) > 1:
            self.facts.dtype_findings.append(
                (
                    node,
                    f"np.{name} mixes {' and '.join(sorted(set(concrete)))} "
                    "operands: result widens outside the nn/dtype policy seam",
                )
            )
            return "float64"
        if concrete:
            return concrete[0]
        if len(set(dtypes)) == 1:
            return dtypes[0]
        return None

    def _numpy_alloc(
        self, name: str, node: ast.Call, env: dict[str, AValue]
    ) -> AValue:
        root = frozenset({f"alloc:{node.lineno}:{node.col_offset}"})
        dtype = None
        dtype_node = self._kw(node, "dtype")
        if dtype_node is None and name in {"empty", "full", "zeros", "ones"}:
            if len(node.args) > 1 and name != "full":
                dtype_node = node.args[1]
            elif name == "full" and len(node.args) > 2:
                dtype_node = node.args[2]
        if dtype_node is not None:
            dtype = self._dtype_from_arg(dtype_node, env)
        shape = None
        if name == "arange":
            for arg in node.args:
                self._eval(arg, env)
            if dtype is None:
                dtype = "intp" if all(
                    isinstance(a, ast.Constant) and isinstance(a.value, int)
                    for a in node.args
                ) else None
        elif node.args:
            shape = self._shape_from_arg(node.args[0], env)
            if shape is None:
                av = self._eval(node.args[0], env)
                if av.poly is not None:
                    shape = (av.poly,)
        if name == "full" and len(node.args) > 1:
            self._eval(node.args[1], env)
        return AValue(shape=shape, dtype=dtype, roots=root)

    def _numpy_alloc_like(self, node: ast.Call, env: dict[str, AValue]) -> AValue:
        src = self._eval(node.args[0], env) if node.args else AValue()
        dtype = src.dtype
        dtype_node = self._kw(node, "dtype")
        if dtype_node is not None:
            dtype = self._dtype_from_arg(dtype_node, env)
        root = frozenset({f"alloc:{node.lineno}:{node.col_offset}"})
        return AValue(shape=src.shape, dtype=dtype, roots=root)

    def _matmul(
        self,
        node: ast.AST,
        left: AValue,
        right: AValue,
        call: ast.Call | None,
        env: dict[str, AValue],
    ) -> AValue:
        shape: tuple[Poly, ...] | None = None
        if (
            left.shape is not None
            and right.shape is not None
            and len(left.shape) >= 2
            and len(right.shape) >= 2
        ):
            inner_l = left.shape[-1]
            inner_r = right.shape[-2]
            if provably_ne(inner_l, inner_r):
                self.facts.shape_findings.append(
                    (
                        node,
                        f"matmul inner dimensions differ: {inner_l.render()} "
                        f"vs {inner_r.render()}",
                    )
                )
            batch = self._broadcast(node, left.shape[:-2], right.shape[:-2])
            if batch is not None:
                shape = batch + (left.shape[-2], right.shape[-1])
        if _both_concrete_floats(left.dtype, right.dtype) and left.dtype != right.dtype:
            self.facts.dtype_findings.append(
                (
                    node,
                    f"matmul mixes {left.dtype} and {right.dtype} operands: "
                    "result widens outside the nn/dtype policy seam",
                )
            )
        dtype = left.dtype if left.dtype == right.dtype else None
        if call is not None:
            self._handle_out(
                call, env, [left, right], safe=False,
                result_shape=shape, result_dtype=dtype, what="np.matmul",
            )
        return AValue(shape=shape, dtype=dtype)

    def _einsum(self, node: ast.Call, env: dict[str, AValue]) -> AValue:
        if not node.args or not (
            isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            for arg in node.args:
                self._eval(arg, env)
            return AValue()
        spec = node.args[0].value
        operands = [self._eval(a, env) for a in node.args[1:]]
        shape: tuple[Poly, ...] | None = None
        dtype = None
        concrete = {av.dtype for av in operands if av.dtype in _CONCRETE_FLOATS}
        if len(concrete) > 1:
            self.facts.dtype_findings.append(
                (
                    node,
                    f"einsum mixes {' and '.join(sorted(concrete))} operands: "
                    "result widens outside the nn/dtype policy seam",
                )
            )
        elif len(concrete) == 1:
            dtype = next(iter(concrete))
        if "..." not in spec and "->" in spec:
            lhs, _, rhs = spec.partition("->")
            in_specs = [s.strip() for s in lhs.split(",")]
            bindings: dict[str, Poly] = {}
            for labels, av in zip(in_specs, operands):
                if av.shape is None or len(av.shape) != len(labels):
                    continue
                for label, dim in zip(labels, av.shape):
                    bound = bindings.get(label)
                    if bound is None:
                        bindings[label] = dim
                    elif provably_ne(bound, dim):
                        self.facts.shape_findings.append(
                            (
                                node,
                                f"einsum '{spec}' binds '{label}' to both "
                                f"{bound.render()} and {dim.render()}",
                            )
                        )
            rhs = rhs.strip()
            if all(label in bindings for label in rhs):
                shape = tuple(bindings[label] for label in rhs)
        self._handle_out(
            node, env, operands, safe=False,
            result_shape=shape, result_dtype=dtype, what="np.einsum",
        )
        return AValue(shape=shape, dtype=dtype)

    def _axis_dims(self, node: ast.Call, pos: int = 1) -> tuple[int, ...] | None:
        axis = self._kw(node, "axis")
        if axis is None and len(node.args) > pos:
            axis = node.args[pos]
        if axis is None:
            return None
        if isinstance(axis, ast.Constant) and isinstance(axis.value, int):
            return (axis.value,)
        if isinstance(axis, ast.UnaryOp) and isinstance(axis.op, ast.USub):
            inner = axis.operand
            if isinstance(inner, ast.Constant) and isinstance(inner.value, int):
                return (-inner.value,)
        if isinstance(axis, (ast.Tuple, ast.List)):
            dims: list[int] = []
            for elt in axis.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, int):
                    dims.append(elt.value)
                elif (
                    isinstance(elt, ast.UnaryOp)
                    and isinstance(elt.op, ast.USub)
                    and isinstance(elt.operand, ast.Constant)
                    and isinstance(elt.operand.value, int)
                ):
                    dims.append(-elt.operand.value)
                else:
                    return None
            return tuple(dims)
        return None

    def _reduction(self, name: str, node: ast.Call, env: dict[str, AValue]) -> AValue:
        src = self._eval(node.args[0], env) if node.args else AValue()
        axes = self._axis_dims(node)
        keepdims = self._kw(node, "keepdims") is not None
        shape: tuple[Poly, ...] | None = None
        if src.shape is not None and axes is not None and not keepdims:
            rank = len(src.shape)
            normed = {a % rank for a in axes if -rank <= a < rank}
            if len(normed) == len(axes):
                shape = tuple(d for i, d in enumerate(src.shape) if i not in normed)
        dtype = "intp" if name in {"argmax", "argmin"} else src.dtype
        self._handle_out(
            node, env, [src], safe=False,
            result_shape=shape, result_dtype=dtype, what=f"np.{name}",
        )
        for kw in node.keywords:
            if kw.arg not in {"out"}:
                self._eval(kw.value, env)
        return AValue(shape=shape, dtype=dtype)

    def _copyto(self, node: ast.Call, env: dict[str, AValue]) -> AValue:
        if not node.args:
            return AValue()
        dst = self._eval(node.args[0], env)
        src = self._eval(node.args[1], env) if len(node.args) > 1 else AValue()
        for kw in node.keywords:
            self._eval(kw.value, env)
        self._record_mutation(node, dst.roots, "np.copyto destination")
        if _both_concrete_floats(dst.dtype, src.dtype) and dst.dtype != src.dtype:
            self.facts.dtype_findings.append(
                (
                    node,
                    f"np.copyto casts {src.dtype} into a {dst.dtype} "
                    "destination: silent conversion outside the nn/dtype "
                    "policy seam",
                )
            )
        if (
            dst.shape is not None
            and src.shape is not None
            and len(dst.shape) == len(src.shape)
        ):
            for i, (d, s) in enumerate(zip(dst.shape, src.shape)):
                if provably_ne(d, s):
                    self.facts.shape_findings.append(
                        (
                            node,
                            f"np.copyto destination dimension {i} = "
                            f"{d.render()} but source has {s.render()}",
                        )
                    )
                    break
        return AValue()

    # array methods -------------------------------------------------------

    def _eval_method(
        self, name: str, base: AValue, node: ast.Call, env: dict[str, AValue]
    ) -> AValue:
        if name == "reshape":
            return self._reshape(base, node, env)
        if name == "transpose":
            perm: list[int] | None = []
            for arg in node.args:
                if isinstance(arg, ast.Constant) and isinstance(arg.value, int):
                    perm.append(arg.value)
                else:
                    perm = None
                    break
            shape = None
            if base.shape is not None:
                if perm:
                    if sorted(perm) == list(range(len(base.shape))):
                        shape = tuple(base.shape[i] for i in perm)
                elif perm == []:
                    shape = tuple(reversed(base.shape))
            return AValue(shape=shape, dtype=base.dtype, roots=base.roots)
        if name == "astype":
            dtype = None
            if node.args:
                dtype = self._dtype_from_arg(node.args[0], env)
            kw = self._kw(node, "dtype")
            if kw is not None:
                dtype = self._dtype_from_arg(kw, env)
            root = frozenset({f"alloc:{node.lineno}:{node.col_offset}"})
            return AValue(shape=base.shape, dtype=dtype, roots=root)
        if name == "copy":
            root = frozenset({f"alloc:{node.lineno}:{node.col_offset}"})
            return AValue(shape=base.shape, dtype=base.dtype, roots=root)
        if name == "ravel":
            shape = None
            if base.shape is not None:
                numel = Poly.of(1)
                for dim in base.shape:
                    numel = numel * dim
                shape = (numel,)
            return AValue(shape=shape, dtype=base.dtype, roots=base.roots)
        if name == "flatten":
            root = frozenset({f"alloc:{node.lineno}:{node.col_offset}"})
            return AValue(dtype=base.dtype, roots=root)
        if name in _REDUCTIONS:
            # method-form reduction; axis is the first positional argument
            axes = self._axis_dims(node, pos=0)
            shape = None
            if base.shape is not None and axes is not None:
                rank = len(base.shape)
                normed = {a % rank for a in axes if -rank <= a < rank}
                if len(normed) == len(axes):
                    shape = tuple(
                        d for i, d in enumerate(base.shape) if i not in normed
                    )
            dtype = "intp" if name in {"argmax", "argmin"} else base.dtype
            return AValue(shape=shape, dtype=dtype)
        if name == "view":
            return AValue(shape=base.shape, roots=base.roots)
        if name == "item":
            return AValue()
        # unknown method: evaluate arguments for nested effects, return ⊤
        for arg in node.args:
            self._eval(arg, env)
        for kw in node.keywords:
            self._eval(kw.value, env)
        return AValue()

    def _reshape(self, base: AValue, node: ast.Call, env: dict[str, AValue]) -> AValue:
        dims = self._reshape_dims(node, env)
        if dims is None:
            return AValue(dtype=base.dtype, roots=base.roots)
        target: list[Poly | None] = []
        for expr_or_poly in dims:
            target.append(expr_or_poly)
        if (
            base.shape is not None
            and all(d is not None for d in target)
        ):
            have = Poly.of(1)
            for dim in base.shape:
                have = have * dim
            want = Poly.of(1)
            for dim in target:
                want = want * dim  # type: ignore[operator]
            if provably_ne(have, want):
                self.facts.shape_findings.append(
                    (
                        node,
                        f"reshape target has {want.render()} elements but the "
                        f"source has {have.render()}",
                    )
                )
        shape = tuple(d if d is not None else self._fresh.sym() for d in target)
        return AValue(shape=shape, dtype=base.dtype, roots=base.roots)

    def _reshape_dims(
        self, node: ast.Call, env: dict[str, AValue]
    ) -> list[Poly | None] | None:
        """Target dims for a reshape call; None when the target is opaque.

        A single non-literal argument (``x.reshape(some_shape)``) is a
        whole-shape value, not a 1-d size, so it yields dims only when
        the argument's tuple value is known.
        """
        args = node.args
        if len(args) == 1:
            arg = args[0]
            if isinstance(arg, (ast.Tuple, ast.List)):
                return [self._soft_dim(e, env) for e in arg.elts]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, int):
                return [Poly.of(arg.value)]
            if isinstance(arg, ast.UnaryOp) and isinstance(arg.op, ast.USub):
                return [None]  # reshape(-1)
            av = self._eval(arg, env)
            if av.tup is not None:
                return [e.poly for e in av.tup]
            return None
        dims: list[Poly | None] = []
        for arg in args:
            dims.append(self._soft_dim(arg, env))
        return dims if dims else None

    def _soft_dim(self, expr: ast.expr, env: dict[str, AValue]) -> Poly | None:
        """A dim polynomial, or None for -1 / opaque expressions."""
        if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.USub):
            inner = expr.operand
            if isinstance(inner, ast.Constant) and inner.value == 1:
                return None
        av = self._eval(expr, env)
        return av.poly

    # plain-name calls ----------------------------------------------------

    def _eval_name_call(
        self, name: str, node: ast.Call, env: dict[str, AValue]
    ) -> AValue:
        avs = [self._eval(a, env) for a in node.args]
        for kw in node.keywords:
            self._eval(kw.value, env)
        if name == "len" and avs:
            if avs[0].tup is not None:
                return AValue(poly=Poly.of(len(avs[0].tup)))
            if avs[0].shape is not None and avs[0].shape:
                return AValue(poly=avs[0].shape[0])
            return AValue()
        if name in {"int", "float", "abs"} and avs:
            return AValue(poly=avs[0].poly)
        if name in {"min", "max"} and len(avs) >= 2:
            if all(av.poly is not None for av in avs):
                same = avs[0].poly
                if all(av.poly == same for av in avs[1:]):
                    return AValue(poly=same)
            return AValue(poly=self._fresh.sym())
        if name in {"tuple", "list"} and avs:
            return AValue(tup=avs[0].tup, roots=avs[0].roots)
        return AValue()


# ---------------------------------------------------------------------------
# module driver


def _np_aliases(tree: ast.AST) -> frozenset[str]:
    names = {"numpy"}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    names.add(alias.asname or "numpy")
    return frozenset(names)


def _module_functions(tree: ast.Module):
    """Yield (qualname-suffix, node) for top-level functions and methods."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.name, node
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield f"{node.name}.{item.name}", item


def module_facts(module: ModuleContext) -> ModuleFacts:
    """Interpret every function in ``module``; memoized per context."""
    cached = getattr(module, "_a4nn_tensor_facts", None)
    if cached is not None:
        return cached
    symbols = None
    if module.project is not None:
        from repro.tooling.graph import build_graph

        symbols = build_graph(module.project).modules.get(module.mod_name)
    np_names = _np_aliases(module.tree)
    facts = ModuleFacts()
    for suffix, node in _module_functions(module.tree):
        interp = TensorInterp(
            module,
            node,
            qualname=f"{module.mod_name}.{suffix}",
            symbols=symbols,
            np_names=np_names,
        )
        facts.functions.append(interp.run())
    module._a4nn_tensor_facts = facts
    return facts
