"""Dataflow pass framework: "does value X reach seam Y".

Built on :mod:`repro.tooling.graph`, this module gives cross-file rules
two primitives:

* **Reachability with witnesses** — :func:`reach_from` wraps the call
  graph's breadth-first closure and renders human-readable witness
  chains for diagnostics ("via a → b → c").
* **Value tracing** — :func:`trace_value` follows an expression
  backwards through local and module-level assignments (a bounded,
  intraprocedural reaching-definitions approximation) and classifies
  what flows at a seam: a lambda, a locally-defined closure, a call to
  a known factory, a constant, or an unresolvable opaque value.  Rules
  then decide which origins are hostile at their seam (non-picklable
  values entering ``EvalSpec``, RNG objects parked on module globals).

The analysis is deliberately approximate — it must be fast enough to
run on every ``a4nn check`` and never crash on strange code — but the
approximations are one-sided per use: reachability over-approximates
(no missed paths), value tracing under-approximates (``unknown`` is
never flagged).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.tooling.graph import FunctionInfo, ModuleSymbols, ProjectGraph

__all__ = [
    "ValueOrigin",
    "reach_from",
    "render_chain",
    "trace_value",
    "unseeded_rng_call",
    "rng_factory_call",
    "iter_unseeded_rng_calls",
    "RNG_FACTORY_CHAINS",
    "MUTABLE_CONSTRUCTORS",
]

# np.random attributes that construct explicit generator machinery rather
# than touching hidden global state (mirrors DET001's allowlist).
_ALLOWED_NP_RANDOM = {
    "Generator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "SeedSequence",
    "BitGenerator",
}

#: Call chains that produce an RNG *object* (seeded or not) — parking one
#: of these on a module global is shared mutable state (DET004) and
#: shipping one into an ``EvalSpec`` violates the "RNG is re-derived, not
#: shipped" contract (CONC002).
RNG_FACTORY_CHAINS = {
    "np.random.default_rng",
    "numpy.random.default_rng",
    "np.random.RandomState",
    "numpy.random.RandomState",
    "np.random.Generator",
    "numpy.random.Generator",
    "random.Random",
    "random.SystemRandom",
    "derive_rng",
    "fallback_rng",
}

#: Module-level constructors whose result is mutable shared state.
MUTABLE_CONSTRUCTORS = {"dict", "list", "set", "defaultdict", "deque", "OrderedDict", "Counter"}


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def unseeded_rng_call(node: ast.AST) -> str | None:
    """Describe ``node`` when it is an unseeded/global-state RNG call.

    The single source of truth shared by the syntactic DET001 rule and
    the cross-file DET003 flow rule, so the two packs can never drift on
    what "unseeded" means.  Returns a short description or ``None``.
    """
    if not isinstance(node, ast.Call):
        return None
    chain = _dotted(node.func)
    if chain is None:
        return None
    if chain.startswith(("np.random.", "numpy.random.")):
        tail = chain.split(".", 2)[2]
        if tail in _ALLOWED_NP_RANDOM:
            return None
        if tail == "default_rng":
            if not node.args and not node.keywords:
                return f"{chain}() without a seed"
            return None
        return f"{chain}() (numpy hidden global RNG state)"
    if chain.startswith("random.") and chain.count(".") == 1:
        tail = chain.rsplit(".", 1)[1]
        if tail == "SystemRandom":
            return f"{chain}() (draws OS entropy)"
        if tail == "Random":
            if not node.args and not node.keywords:
                return f"{chain}() without a seed"
            return None
        return f"{chain}() (stdlib global RNG)"
    return None


def iter_unseeded_rng_calls(tree: ast.AST):
    """Yield ``(node, description)`` for every unseeded RNG call under ``tree``."""
    for node in ast.walk(tree):
        what = unseeded_rng_call(node)
        if what is not None:
            yield node, what


def rng_factory_call(node: ast.AST) -> str | None:
    """The factory chain when ``node`` constructs an RNG object, else ``None``."""
    if not isinstance(node, ast.Call):
        return None
    chain = _dotted(node.func)
    if chain in RNG_FACTORY_CHAINS:
        return chain
    return None


# -- reachability --------------------------------------------------------------


def reach_from(
    graph: ProjectGraph, entry_modules: list[str], *, name_matches: bool = True
) -> dict[str, tuple[str, ...]]:
    """Call-graph closure from every function defined in ``entry_modules``.

    Returns ``{qualname: witness chain}`` including the entries
    themselves (chain length 1).
    """
    entries = [f.qualname for f in graph.functions_in(*entry_modules)]
    return graph.reachable(entries, name_matches=name_matches)


def render_chain(chain: tuple[str, ...], *, max_hops: int = 4) -> str:
    """``a → b → c`` witness text, elided in the middle when long."""
    names = [q.rsplit(".", 2)[-1] if q.count(".") < 2 else ".".join(q.split(".")[-2:]) for q in chain]
    if len(names) > max_hops:
        names = names[:2] + ["…"] + names[-1:]
    return " → ".join(names)


# -- value tracing -------------------------------------------------------------


@dataclass(frozen=True)
class ValueOrigin:
    """Classification of what an expression evaluates to.

    ``kind`` is one of ``lambda``, ``closure``, ``genexp``, ``call``,
    ``constant``, ``mapping``, ``sequence``, ``view``, or ``unknown``;
    ``detail`` carries the resolved call chain (for ``call`` and
    ``view``) or the local function name (for ``closure``); ``node`` is
    the AST node where the value originates (used to anchor diagnostics
    at the *source* end of the edge).  A ``view`` is a ``__getitem__``
    projection of a traced base (``spec[0]``, ``arr[i:j]``) — the base's
    classification rides along in ``detail`` so seam rules can decide
    whether slicing launders the origin.
    """

    kind: str
    detail: str = ""
    node: ast.AST | None = None


def _unpack_literal(target: ast.AST, value: ast.AST, assigns: dict[str, ast.AST]) -> None:
    """Bind names in a tuple/list target against a tuple/list literal RHS.

    Handles exact positional unpacking (``a, b = x, y``) and a single
    ``*rest`` anywhere in the target (``a, *mid, b = w, x, y, z``): the
    prefix/suffix names bind positionally, and the starred name binds to
    a synthesized list of the middle values so later tracing still sees
    a literal.  Shape-mismatched unpacks bind nothing (the code would
    raise at runtime anyway).
    """
    elts = list(target.elts)
    values = list(value.elts)
    stars = [i for i, t in enumerate(elts) if isinstance(t, ast.Starred)]
    if not stars:
        if len(elts) != len(values):
            return
        for t, v in zip(elts, values):
            if isinstance(t, ast.Name):
                assigns[t.id] = v
        return
    if len(stars) != 1 or len(values) < len(elts) - 1:
        return
    star = stars[0]
    n_after = len(elts) - star - 1
    for t, v in zip(elts[:star], values[:star]):
        if isinstance(t, ast.Name):
            assigns[t.id] = v
    for t, v in zip(elts[star + 1 :], values[len(values) - n_after :]):
        if isinstance(t, ast.Name):
            assigns[t.id] = v
    star_name = elts[star].value
    if isinstance(star_name, ast.Name):
        middle = values[star : len(values) - n_after]
        assigns[star_name.id] = ast.copy_location(
            ast.List(elts=middle, ctx=ast.Load()), value
        )


def _local_assignments(func: ast.AST) -> dict[str, ast.AST]:
    """Last textual assignment to each local name (approximate reaching defs)."""
    assigns: dict[str, ast.AST] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    assigns[target.id] = node.value
                elif isinstance(target, (ast.Tuple, ast.List)) and isinstance(
                    node.value, (ast.Tuple, ast.List)
                ):
                    _unpack_literal(target, node.value, assigns)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                assigns[node.target.id] = node.value
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not func:
            assigns[node.name] = node
    return assigns


def trace_value(
    symbols: ModuleSymbols,
    scope: FunctionInfo | None,
    expr: ast.AST,
    *,
    _depth: int = 0,
) -> ValueOrigin:
    """Classify the value ``expr`` evaluates to, following assignments.

    ``scope`` is the function whose locals to search (``None`` for
    module-level expressions).  Resolution is bounded (depth 8) and
    falls back to ``unknown`` rather than guessing.
    """
    if _depth > 8:
        return ValueOrigin("unknown", node=expr)
    if isinstance(expr, ast.Lambda):
        return ValueOrigin("lambda", node=expr)
    if isinstance(expr, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return ValueOrigin("closure", detail=expr.name, node=expr)
    if isinstance(expr, (ast.GeneratorExp,)):
        return ValueOrigin("genexp", node=expr)
    if isinstance(expr, ast.Constant):
        return ValueOrigin("constant", node=expr)
    if isinstance(expr, ast.Dict):
        return ValueOrigin("mapping", node=expr)
    if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
        return ValueOrigin("sequence", node=expr)
    if isinstance(expr, ast.Subscript):
        base = trace_value(symbols, scope, expr.value, _depth=_depth + 1)
        detail = base.detail or (base.kind if base.kind != "unknown" else "")
        return ValueOrigin("view", detail=detail, node=expr)
    if isinstance(expr, ast.Call):
        chain = _dotted(expr.func)
        if chain == "dict":
            return ValueOrigin("mapping", node=expr)
        if chain is not None:
            resolved = symbols.resolve(chain) or chain
            return ValueOrigin("call", detail=resolved, node=expr)
        return ValueOrigin("unknown", node=expr)
    if isinstance(expr, ast.Name):
        if scope is not None:
            local = _local_assignments(scope.node).get(expr.id)
            if local is not None and local is not expr:
                return trace_value(symbols, scope, local, _depth=_depth + 1)
        module_value = symbols.module_assigns.get(expr.id)
        if module_value is not None:
            return trace_value(symbols, None, module_value, _depth=_depth + 1)
        return ValueOrigin("unknown", node=expr)
    return ValueOrigin("unknown", node=expr)


def mapping_values(
    symbols: ModuleSymbols, scope: FunctionInfo | None, expr: ast.AST
) -> list[tuple[str | None, ast.AST]]:
    """Expand a dict literal / ``dict(...)`` call into ``(key, value)`` pairs.

    Used to see through ``Spec(**kwargs)`` construction: the caller
    traces each value individually.  Unresolvable mappings yield ``[]``.
    """
    if isinstance(expr, ast.Name):
        origin_expr = None
        if scope is not None:
            origin_expr = _local_assignments(scope.node).get(expr.id)
        if origin_expr is None:
            origin_expr = symbols.module_assigns.get(expr.id)
        if origin_expr is None or origin_expr is expr:
            return []
        expr = origin_expr
    pairs: list[tuple[str | None, ast.AST]] = []
    if isinstance(expr, ast.Dict):
        for key, value in zip(expr.keys, expr.values):
            name = key.value if isinstance(key, ast.Constant) and isinstance(key.value, str) else None
            pairs.append((name, value))
    elif isinstance(expr, ast.Call) and _dotted(expr.func) == "dict":
        for kw in expr.keywords:
            if kw.arg is not None:
                pairs.append((kw.arg, kw.value))
    return pairs
