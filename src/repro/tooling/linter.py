"""The ``a4nn check`` linter: run the rule catalog over a source tree.

The linter parses every file once, hands the whole project to each
registered rule (so cross-file rules can see siblings), applies the
justified-``noqa`` suppressions, and returns sorted diagnostics.  It is
importable (the test suite runs it in-process on ``src/``) and drives
the ``a4nn check`` CLI subcommand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

from repro.tooling.context import ModuleContext, ProjectContext
from repro.tooling.diagnostics import Diagnostic, Severity
from repro.tooling.rules import Rule, all_rules, rule_ids
from repro.tooling.rules.suppressions import parse_suppressions

__all__ = ["CheckResult", "Linter", "collect_files", "run_check", "PARSE_ERROR_ID"]

#: Pseudo-rule id for files that do not parse at all.
PARSE_ERROR_ID = "GEN001"


@dataclass
class CheckResult:
    """Outcome of one linter invocation."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    n_files: int = 0

    @property
    def n_errors(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity is Severity.ERROR)

    @property
    def exit_code(self) -> int:
        """0 when clean; 1 when any error-severity diagnostic fired."""
        return 1 if self.n_errors else 0


def collect_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated ``*.py`` list."""
    seen: dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                seen.setdefault(candidate, None)
        elif path.is_file():
            seen.setdefault(path, None)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return list(seen)


class Linter:
    """Run a rule set over a project.

    Parameters
    ----------
    rules:
        Rules to run; defaults to the full registered catalog.
    select, ignore:
        Optional rule-id allowlist / denylist applied on top.
    """

    def __init__(
        self,
        rules: Iterable[Rule] | None = None,
        *,
        select: Iterable[str] | None = None,
        ignore: Iterable[str] | None = None,
    ) -> None:
        chosen = list(rules) if rules is not None else all_rules()
        if select is not None:
            wanted = set(select)
            unknown = wanted - {r.rule_id for r in chosen}
            if unknown:
                raise ValueError(f"--select names unknown rule id(s): {sorted(unknown)}")
            chosen = [r for r in chosen if r.rule_id in wanted]
        if ignore is not None:
            dropped = set(ignore)
            chosen = [r for r in chosen if r.rule_id not in dropped]
        self.rules = chosen

    # -- entry points -----------------------------------------------------------

    def lint_paths(self, paths: Iterable[str | Path]) -> CheckResult:
        """Lint files/directories from disk."""
        project = ProjectContext()
        parse_failures: list[Diagnostic] = []
        files = collect_files(paths)
        for path in files:
            try:
                source = path.read_text(encoding="utf-8")
                project.add(ModuleContext.parse(source, str(path)))
            except (SyntaxError, UnicodeDecodeError) as exc:
                parse_failures.append(_parse_failure(str(path), exc))
        result = self._lint_project(project)
        result.diagnostics.extend(parse_failures)
        result.diagnostics.sort(key=Diagnostic.sort_key)
        result.n_files = len(files)
        return result

    def lint_sources(self, sources: Mapping[str, str]) -> CheckResult:
        """Lint in-memory ``{virtual_path: source}`` fixtures (tests)."""
        project = ProjectContext()
        parse_failures: list[Diagnostic] = []
        for virtual_path, source in sources.items():
            try:
                project.add(ModuleContext.parse(source, virtual_path))
            except SyntaxError as exc:
                parse_failures.append(_parse_failure(virtual_path, exc))
        result = self._lint_project(project)
        result.diagnostics.extend(parse_failures)
        result.diagnostics.sort(key=Diagnostic.sort_key)
        result.n_files = len(sources)
        return result

    # -- core -------------------------------------------------------------------

    def _lint_project(self, project: ProjectContext) -> CheckResult:
        known = set(rule_ids())
        diagnostics: list[Diagnostic] = []
        for module in project.modules:
            found: list[Diagnostic] = []
            for rule in self.rules:
                if rule.applies_to(module):
                    found.extend(rule.check(module))
            suppressed, _ = parse_suppressions(module, known)
            for diagnostic in found:
                if diagnostic.rule_id in suppressed.get(diagnostic.line, ()):
                    continue
                diagnostics.append(diagnostic)
        return CheckResult(diagnostics=diagnostics, n_files=len(project.modules))


def _parse_failure(path: str, exc: Exception) -> Diagnostic:
    line = getattr(exc, "lineno", None) or 1
    col = (getattr(exc, "offset", None) or 1) - 1
    return Diagnostic(
        path=path,
        line=int(line),
        col=max(int(col), 0),
        rule_id=PARSE_ERROR_ID,
        severity=Severity.ERROR,
        message=f"file does not parse: {exc.msg if hasattr(exc, 'msg') else exc}",
    )


def run_check(
    paths: Iterable[str | Path],
    *,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> CheckResult:
    """One-call convenience used by the CLI and the self-check test."""
    return Linter(select=select, ignore=ignore).lint_paths(paths)
