"""The ``a4nn check`` linter: run the rule catalog over a source tree.

The linter parses every file once (or rehydrates it from the
incremental cache), runs **file-scoped** rules per module and
**project-scoped** rules once per invocation, applies the justified-
``noqa`` suppressions (statement-span aware, and honored at *either*
end of a cross-file finding), and returns sorted diagnostics.  It is
importable (the test suite runs it in-process on ``src/``) and drives
the ``a4nn check`` CLI subcommand.

Cache discipline: a warm run re-parses only files whose content hash
changed.  Cache entries store the AST, comment tokens, and the
*pre-suppression* file-scoped diagnostics — suppressions and
project-scoped rules are re-evaluated every run, because both can
legitimately change without the file itself changing.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import get_all_start_methods, get_context
from pathlib import Path
from typing import Iterable, Mapping

from repro.tooling.baseline import apply_baseline, load_baseline
from repro.tooling.cache import AnalysisCache
from repro.tooling.context import ModuleContext, ProjectContext, content_hash
from repro.tooling.diagnostics import Diagnostic, Severity
from repro.tooling.rules import Rule, all_rules, rule_ids
from repro.tooling.rules.suppressions import suppressed_lines

__all__ = [
    "CheckResult",
    "Linter",
    "collect_files",
    "resolve_jobs",
    "run_check",
    "PARSE_ERROR_ID",
    "SKIPPED_FILE_ID",
]

#: Pseudo-rule id for files that do not parse at all.
PARSE_ERROR_ID = "GEN001"

#: Pseudo-rule id (warning) for files skipped because they are not UTF-8.
SKIPPED_FILE_ID = "GEN002"


@dataclass
class CheckResult:
    """Outcome of one linter invocation."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    n_files: int = 0
    n_cache_hits: int = 0  #: files rehydrated from the analysis cache
    n_analyzed: int = 0  #: files parsed + file-rule-analyzed this run
    grandfathered: list[Diagnostic] = field(default_factory=list)

    @property
    def n_errors(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity is Severity.ERROR)

    @property
    def exit_code(self) -> int:
        """0 when clean; 1 when any error-severity diagnostic fired."""
        return 1 if self.n_errors else 0


#: Per-process linter rebuilt by the ``--jobs`` pool initializer.
_WORKER_LINTER: "Linter | None" = None


def _init_parallel_worker(file_rule_ids: tuple[str, ...]) -> None:
    """Build each worker's file-rule-only linter once (spawn context)."""
    global _WORKER_LINTER
    _WORKER_LINTER = Linter(select=list(file_rule_ids))


def _lint_one_file(item: tuple[str, str]):
    """Parse + file-rule-lint one source in a pool worker.

    Returns ``(display, tree, comments, file_diags, parse_failure)`` —
    everything the parent needs to rehydrate the module (the same
    artifacts a cache entry stores), so project-scoped rules and
    suppression filtering stay a single pass in the parent process.
    """
    display, source = item
    try:
        module = ModuleContext.parse(source, display)
    except SyntaxError as exc:
        return (display, None, None, [], _parse_failure(display, source, exc))
    found: list[Diagnostic] = []
    for rule in _WORKER_LINTER.file_rules:
        if rule.applies_to(module):
            found.extend(rule.check(module))
    return (display, module.tree, module.comments(), found, None)


def resolve_jobs(jobs: int | None) -> int | None:
    """Normalize a ``--jobs`` request: ``0`` means one per CPU."""
    if jobs is None:
        return None
    jobs = int(jobs)
    if jobs < 0:
        raise ValueError(f"--jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def _excluded(rel_parts: tuple[str, ...]) -> bool:
    return any(part == "__pycache__" or part.startswith(".") for part in rel_parts)


def collect_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated ``*.py`` list.

    Directory walks deterministically skip ``__pycache__`` and hidden
    directories (any path component starting with ``.``); explicitly
    named files are always included.
    """
    seen: dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if _excluded(candidate.relative_to(path).parts):
                    continue
                seen.setdefault(candidate, None)
        elif path.is_file():
            seen.setdefault(path, None)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return list(seen)


class Linter:
    """Run a rule set over a project.

    Parameters
    ----------
    rules:
        Rules to run; defaults to the full registered catalog.
    select, ignore:
        Optional rule-id allowlist / denylist applied on top.
    """

    def __init__(
        self,
        rules: Iterable[Rule] | None = None,
        *,
        select: Iterable[str] | None = None,
        ignore: Iterable[str] | None = None,
    ) -> None:
        chosen = list(rules) if rules is not None else all_rules()
        if select is not None:
            wanted = set(select)
            unknown = wanted - {r.rule_id for r in chosen}
            if unknown:
                raise ValueError(f"--select names unknown rule id(s): {sorted(unknown)}")
            chosen = [r for r in chosen if r.rule_id in wanted]
        if ignore is not None:
            dropped = set(ignore)
            chosen = [r for r in chosen if r.rule_id not in dropped]
        self.rules = chosen
        self.file_rules = [r for r in chosen if getattr(r, "scope", "file") == "file"]
        self.project_rules = [r for r in chosen if getattr(r, "scope", "file") == "project"]

    # -- entry points -----------------------------------------------------------

    def lint_paths(
        self,
        paths: Iterable[str | Path],
        *,
        cache: AnalysisCache | None = None,
        jobs: int | None = None,
    ) -> CheckResult:
        """Lint files/directories from disk, optionally through the cache.

        ``jobs`` > 1 fans the per-file parse + file-rule stage out over a
        process pool (cache misses only — hits rehydrate in-process, and
        project-scoped rules plus suppression filtering always run as a
        single pass in the parent, so results are identical to serial).
        """
        project = ProjectContext()
        pseudo: list[Diagnostic] = []
        cached_diags: dict[str, list[Diagnostic]] = {}
        hashes: dict[str, str] = {}
        sources: dict[str, str] = {}
        order: list[str] = []
        entries: dict[str, object] = {}
        pending: list[tuple[str, str]] = []
        files = collect_files(paths)
        n_cache_hits = 0
        jobs = resolve_jobs(jobs)
        parallel = jobs is not None and jobs > 1
        for path in files:
            display = str(path)
            try:
                raw = path.read_bytes()
                source = raw.decode("utf-8")
            except UnicodeDecodeError as exc:
                pseudo.append(_skip_warning(display, exc))
                continue
            digest = content_hash(raw)
            hashes[display] = digest
            sources[display] = source
            order.append(display)
            entry = cache.lookup(display, digest) if cache is not None else None
            if entry is not None:
                entries[display] = entry
                cached_diags[display] = list(entry.file_diagnostics)
                n_cache_hits += 1
            elif parallel:
                pending.append((display, source))
        worker_results: dict[str, tuple] = {}
        if parallel and pending:
            file_rule_ids = tuple(sorted({r.rule_id for r in self.file_rules}))
            # fork keeps worker start-up (interpreter + numpy import) off
            # the critical path; platforms without it pay the spawn cost
            method = "fork" if "fork" in get_all_start_methods() else "spawn"
            ctx = get_context(method)
            chunksize = max(1, len(pending) // (jobs * 4))
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(pending)),
                mp_context=ctx,
                initializer=_init_parallel_worker,
                initargs=(file_rule_ids,),
            ) as pool:
                for display, tree, comments, diags, failure in pool.map(
                    _lint_one_file, pending, chunksize=chunksize
                ):
                    worker_results[display] = (tree, comments, diags, failure)
        for display in order:
            entry = entries.get(display)
            if entry is not None:
                module = ModuleContext.from_cache(
                    sources[display], display, entry.tree, entry.comments
                )
            elif display in worker_results:
                tree, comments, diags, failure = worker_results[display]
                if failure is not None:
                    pseudo.append(failure)
                    continue
                module = ModuleContext.from_cache(sources[display], display, tree, comments)
                cached_diags[display] = diags
                if cache is not None:
                    cache.store(display, hashes[display], tree, comments, diags)
            else:
                try:
                    module = ModuleContext.parse(sources[display], display)
                except SyntaxError as exc:
                    pseudo.append(_parse_failure(display, sources[display], exc))
                    continue
            project.add(module)
        result = self._lint_project(project, cache=cache, cached_diags=cached_diags, hashes=hashes)
        result.diagnostics.extend(pseudo)
        result.diagnostics.sort(key=Diagnostic.sort_key)
        result.n_files = len(files)
        result.n_cache_hits = n_cache_hits
        result.n_analyzed = len(project.modules) - n_cache_hits
        return result

    def lint_sources(self, sources: Mapping[str, str]) -> CheckResult:
        """Lint in-memory ``{virtual_path: source}`` fixtures (tests)."""
        project = ProjectContext()
        pseudo: list[Diagnostic] = []
        for virtual_path, source in sources.items():
            try:
                project.add(ModuleContext.parse(source, virtual_path))
            except SyntaxError as exc:
                pseudo.append(_parse_failure(virtual_path, source, exc))
        result = self._lint_project(project)
        result.diagnostics.extend(pseudo)
        result.diagnostics.sort(key=Diagnostic.sort_key)
        result.n_files = len(sources)
        result.n_analyzed = len(project.modules)
        return result

    # -- core -------------------------------------------------------------------

    def _lint_project(
        self,
        project: ProjectContext,
        *,
        cache: AnalysisCache | None = None,
        cached_diags: dict[str, list[Diagnostic]] | None = None,
        hashes: dict[str, str] | None = None,
    ) -> CheckResult:
        cached_diags = cached_diags or {}
        hashes = hashes or {}
        found: list[Diagnostic] = []

        for module in project.modules:
            if module.display_path in cached_diags:
                found.extend(cached_diags[module.display_path])
                continue
            file_found: list[Diagnostic] = []
            for rule in self.file_rules:
                if rule.applies_to(module):
                    file_found.extend(rule.check(module))
            found.extend(file_found)
            digest = hashes.get(module.display_path)
            if cache is not None and digest is not None:
                cache.store(
                    module.display_path,
                    digest,
                    module.tree,
                    module.comments(),
                    file_found,
                )

        for module in project.modules:
            for rule in self.project_rules:
                if rule.applies_to(module):
                    found.extend(rule.check(module))

        # suppression filtering: statement-span aware, and a cross-file
        # finding is silenced by a justified noqa at either end
        known = set(rule_ids())
        effective: dict[str, dict[int, set[str]]] = {}
        for module in project.modules:
            effective[module.display_path] = suppressed_lines(module, known)

        def is_suppressed(d: Diagnostic) -> bool:
            if d.rule_id in effective.get(d.path, {}).get(d.line, ()):
                return True
            if d.related is not None and d.rule_id in effective.get(
                d.related.path, {}
            ).get(d.related.line, ()):
                return True
            return False

        diagnostics = [d for d in found if not is_suppressed(d)]
        return CheckResult(diagnostics=diagnostics, n_files=len(project.modules))


def _parse_failure(path: str, source: str, exc: SyntaxError) -> Diagnostic:
    line = int(getattr(exc, "lineno", None) or 1)
    col = max(int((getattr(exc, "offset", None) or 1) - 1), 0)
    offending = (getattr(exc, "text", None) or "").strip()
    if not offending:
        lines = source.splitlines()
        if 0 < line <= len(lines):
            offending = lines[line - 1].strip()
    msg = exc.msg if hasattr(exc, "msg") else str(exc)
    detail = f"file does not parse: {msg} at line {line}, col {col + 1}"
    if offending:
        detail += f": {offending!r}"
    return Diagnostic(
        path=path,
        line=line,
        col=col,
        rule_id=PARSE_ERROR_ID,
        severity=Severity.ERROR,
        message=detail,
    )


def _skip_warning(path: str, exc: UnicodeDecodeError) -> Diagnostic:
    return Diagnostic(
        path=path,
        line=1,
        col=0,
        rule_id=SKIPPED_FILE_ID,
        severity=Severity.WARNING,
        message=f"skipped: file is not valid UTF-8 ({exc.reason} at byte {exc.start})",
    )


def run_check(
    paths: Iterable[str | Path],
    *,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    cache_dir: str | Path | None = None,
    baseline: str | Path | None = None,
    jobs: int | None = None,
) -> CheckResult:
    """One-call convenience used by the CLI and the self-check test.

    ``cache_dir`` enables the incremental cache rooted there (``None``
    disables caching); ``baseline`` subtracts grandfathered findings
    recorded in the named baseline file from the failure set; ``jobs``
    parallelizes the cold per-file stage (``0`` = one per CPU).
    """
    linter = Linter(select=select, ignore=ignore)
    cache = None
    if cache_dir is not None:
        cache = AnalysisCache(
            cache_dir, fingerprint=AnalysisCache.ruleset_fingerprint(linter.rules)
        )
    result = linter.lint_paths(paths, cache=cache, jobs=jobs)
    if baseline is not None:
        fresh, grandfathered = apply_baseline(
            result.diagnostics, load_baseline(baseline)
        )
        result.diagnostics = fresh
        result.grandfathered = grandfathered
    return result
