"""API-contract rules: layer interface, serialization registry, experiments.

The NN framework, the checkpoint machinery, and the experiment harness
all rely on structural conventions that nothing previously enforced:

* ``API001`` — every :class:`~repro.nn.layers.base.Layer` subclass must
  define ``forward``/``backward`` as a pair, with the base signatures
  (``forward(self, x, training=False)``, ``backward(self, grad_out)``).
  A layer with only half the pair trains forward but silently breaks
  backprop (or vice versa); a drifted signature breaks every positional
  call site in :class:`~repro.nn.network.Network`.
* ``API002`` — every public concrete layer in ``nn/layers/`` must be
  registered in ``LAYER_TYPES``; an unregistered layer checkpoints fine
  but can never be *loaded* back (lineage replay then fails late).
* ``API003`` — every ``experiments/fig*.py`` must expose the common
  entrypoint shape (``run_figN``/``format_figN``/``FigNResult`` in
  ``__all__``) that the benchmark harness and CLI reporting rely on.
"""

from __future__ import annotations

import ast
import fnmatch
from typing import Iterable

from repro.tooling.context import ModuleContext
from repro.tooling.diagnostics import Diagnostic
from repro.tooling.rules import BaseRule, register

__all__ = ["LayerPairRule", "LayerRegistryRule", "ExperimentShapeRule"]

_LAYER_SCOPES = ("nn/layers/", "nas/decoder.py")


def _base_names(cls: ast.ClassDef) -> list[str]:
    names = []
    for base in cls.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _layer_classes(tree: ast.Module) -> list[ast.ClassDef]:
    """Classes subclassing ``Layer`` directly or via an in-module base."""
    classes = [n for n in tree.body if isinstance(n, ast.ClassDef)]
    layerish: set[str] = {"Layer"}
    # fixpoint over in-module inheritance chains (e.g. _BatchNorm -> BatchNorm2D)
    changed = True
    while changed:
        changed = False
        for cls in classes:
            if cls.name not in layerish and any(b in layerish for b in _base_names(cls)):
                layerish.add(cls.name)
                changed = True
    return [c for c in classes if c.name in layerish and c.name != "Layer"]


def _methods(cls: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    return {n.name: n for n in cls.body if isinstance(n, ast.FunctionDef)}


def _positional_names(fn: ast.FunctionDef) -> list[str]:
    return [a.arg for a in fn.args.posonlyargs + fn.args.args]


@register
class LayerPairRule(BaseRule):
    rule_id = "API001"
    category = "api-contract"
    doc = (
        "every layer defines `forward(self, x, training=False)` **and** "
        "`backward(self, grad_out)` with exactly those signatures"
    )
    description = (
        "Layer subclass must define forward/backward as a pair with the "
        "base signatures forward(self, x, training=False) / backward(self, grad_out)"
    )

    def applies_to(self, module: ModuleContext) -> bool:
        return module.in_location(*_LAYER_SCOPES)

    def check(self, module: ModuleContext) -> Iterable[Diagnostic]:
        for cls in _layer_classes(module.tree):
            methods = _methods(cls)
            forward, backward = methods.get("forward"), methods.get("backward")
            if (forward is None) != (backward is None):
                present, missing = (
                    ("forward", "backward") if backward is None else ("backward", "forward")
                )
                yield self.diag(
                    module,
                    cls,
                    f"layer {cls.name} defines {present} without {missing}; "
                    "training would break half way through the pass",
                )
                continue
            if forward is not None and _positional_names(forward) != ["self", "x", "training"]:
                yield self.diag(
                    module,
                    forward,
                    f"{cls.name}.forward must be forward(self, x, training=False), "
                    f"got ({', '.join(_positional_names(forward))})",
                )
            if forward is not None and not forward.args.defaults:
                yield self.diag(
                    module,
                    forward,
                    f"{cls.name}.forward must default training (training=False)",
                )
            if backward is not None and _positional_names(backward) != ["self", "grad_out"]:
                yield self.diag(
                    module,
                    backward,
                    f"{cls.name}.backward must be backward(self, grad_out), "
                    f"got ({', '.join(_positional_names(backward))})",
                )


def _registered_layer_names(init_tree: ast.Module) -> set[str] | None:
    """Names registered in the ``LAYER_TYPES`` mapping, parsed statically."""
    for node in ast.walk(init_tree):
        if not isinstance(node, ast.Assign):
            continue
        targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if "LAYER_TYPES" not in targets:
            continue
        names: set[str] = set()
        value = node.value
        if isinstance(value, ast.DictComp):
            for gen in value.generators:
                if isinstance(gen.iter, (ast.Tuple, ast.List)):
                    names.update(
                        e.id for e in gen.iter.elts if isinstance(e, ast.Name)
                    )
        elif isinstance(value, ast.Dict):
            for v in value.values:
                if isinstance(v, ast.Name):
                    names.add(v.id)
        return names
    return None


@register
class LayerRegistryRule(BaseRule):
    rule_id = "API002"
    category = "api-contract"
    scope = "project"
    doc = (
        "every public layer class is registered in `LAYER_TYPES`, so checkpoints "
        "of any architecture can be reloaded"
    )
    description = "public layer class missing from the LAYER_TYPES serialization registry"

    def applies_to(self, module: ModuleContext) -> bool:
        return module.in_location("nn/layers/__init__.py")

    def check(self, module: ModuleContext) -> Iterable[Diagnostic]:
        registered = _registered_layer_names(module.tree)
        if registered is None:
            yield self.diag(
                module, None, "nn/layers/__init__.py no longer defines LAYER_TYPES"
            )
            return
        project = module.project
        if project is None:
            return
        for sibling in project.modules:
            if not sibling.in_location("nn/layers/") or sibling.in_location(
                "nn/layers/__init__.py", "nn/layers/base.py"
            ):
                continue
            for cls in _layer_classes(sibling.tree):
                if cls.name.startswith("_"):
                    continue
                if cls.name not in registered:
                    yield self.diag(
                        sibling,
                        cls,
                        f"layer {cls.name} is not registered in LAYER_TYPES; "
                        "its checkpoints could never be loaded back",
                    )


@register
class ExperimentShapeRule(BaseRule):
    rule_id = "API003"
    category = "api-contract"
    doc = (
        "every `experiments/fig*.py` exports the common `run_*` / `format_*` / "
        "`*Result` entrypoint shape the benchmark harness drives"
    )
    description = (
        "experiments/fig*.py must expose run_figN / format_figN / FigNResult in __all__"
    )

    def applies_to(self, module: ModuleContext) -> bool:
        return fnmatch.fnmatch(module.pkg_path, "repro/experiments/fig*.py")

    def check(self, module: ModuleContext) -> Iterable[Diagnostic]:
        stem = module.pkg_path.rsplit("/", 1)[-1].removesuffix(".py")
        tag = stem.split("_")[0]  # fig2_prediction -> fig2
        required = {
            f"run_{tag}": "the paper-artifact entrypoint",
            f"format_{tag}": "the report renderer",
            f"{tag.capitalize()}Result": "the result dataclass",
        }
        defined = {
            n.name
            for n in module.tree.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
        }
        exported: set[str] = set()
        for node in module.tree.body:
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
            ):
                if isinstance(node.value, (ast.List, ast.Tuple)):
                    exported = {
                        e.value
                        for e in node.value.elts
                        if isinstance(e, ast.Constant) and isinstance(e.value, str)
                    }
        for name, role in required.items():
            if name not in defined:
                yield self.diag(
                    module, None, f"missing {name} ({role}); the harness drives every "
                    "figure module through this common shape"
                )
            elif name not in exported:
                yield self.diag(
                    module, None, f"{name} is defined but not exported in __all__"
                )
