"""Cross-file numerical rules: dtype discipline along the nn hot path.

PERF001 catches float64-*forcing* constructs syntactically inside
``nn/``.  These rules close the two remaining holes:

* ``NUM005`` — a dtype-*unannotated* allocation (``np.zeros`` /
  ``np.ones`` / ``np.empty`` / ``np.full`` without ``dtype=``) in any
  function reachable from the nn hot path — the modules PERF001 already
  polices, plus the helpers they call through *statically resolved*
  call edges (precision-first: duck-typed name matches are excluded so
  the rule never guesses).  NumPy defaults those constructors to
  float64, so one bare ``np.zeros(n)`` in a helper quietly upcasts the
  whole float32 pipeline.  Allocations immediately ``.astype(...)``-ed
  and the ``*_like`` constructors (which inherit dtype) are exempt.
  The mechanical case — a ``dtype`` name already in scope — is
  autofixable (``a4nn check --fix`` appends ``dtype=dtype``).
* ``NUM006`` — a float64-*defaulting* producer (``rng.random``,
  ``rng.normal``, ``rng.standard_normal``, ``rng.uniform``,
  ``np.linspace``, ``np.eye``, ``np.identity``) without ``dtype=`` and
  without an immediate ``.astype(...)`` inside a loop body of the
  trainer/optimizer/network/schedules modules.  Mixing one float64 draw
  into a float32 update upcasts the whole parameter state from that
  iteration on — the most expensive place to leak precision policy.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Iterable

from repro.tooling.context import ModuleContext
from repro.tooling.dataflow import reach_from, render_chain
from repro.tooling.diagnostics import Diagnostic, Fix, RelatedLocation
from repro.tooling.graph import ProjectGraph, build_graph
from repro.tooling.rules import BaseRule, dotted_name, register

__all__ = ["DtypeFlowRule", "LoopUpcastRule", "HOT_PATH_PREFIX"]

#: The nn hot path: PERF001's scope, expressed as dotted-module prefix.
HOT_PATH_PREFIX = "repro.nn"
_POLICY_MODULE = "repro.nn.dtype"

_ALLOC_CALLS = {
    "np.zeros",
    "numpy.zeros",
    "np.ones",
    "numpy.ones",
    "np.empty",
    "numpy.empty",
    "np.full",
    "numpy.full",
}

_F64_PRODUCER_ATTRS = {"random", "normal", "standard_normal", "uniform"}
_F64_PRODUCER_CALLS = {
    "np.linspace",
    "numpy.linspace",
    "np.eye",
    "numpy.eye",
    "np.identity",
    "numpy.identity",
}

_LOOP_MODULES = (
    "nn/trainer.py",
    "nn/optimizers.py",
    "nn/network.py",
    "nn/schedules.py",
)


def _has_dtype_kwarg(node: ast.Call) -> bool:
    return any(kw.arg == "dtype" for kw in node.keywords)


def _astype_receivers(tree: ast.AST) -> set[int]:
    """ids of call nodes that are immediately ``.astype(...)``-ed."""
    wrapped: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) and node.attr == "astype":
            wrapped.add(id(node.value))
    return wrapped


def _dtype_in_scope(func: ast.AST) -> bool:
    """Whether a name ``dtype`` is a parameter or local of ``func``."""
    args = getattr(func, "args", None)
    if args is not None:
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            if arg.arg == "dtype":
                return True
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "dtype":
                    return True
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.target.id == "dtype":
                return True
        elif isinstance(node, ast.Attribute) and node.attr == "dtype":
            # `self.dtype` / `x.dtype` available — still mechanical, but
            # choosing the receiver is a human call; no autofix
            continue
    return False


def _hot_entry_modules(graph: ProjectGraph) -> list[str]:
    return [
        name
        for name in graph.modules
        if (name == HOT_PATH_PREFIX or name.startswith(HOT_PATH_PREFIX + "."))
        and name != _POLICY_MODULE
    ]


@register
class DtypeFlowRule(BaseRule):
    rule_id = "NUM005"
    category = "numerical-safety"
    scope = "project"
    description = (
        "dtype-unannotated array allocation reachable from the nn hot path "
        "(defaults to float64, defeating the compute-dtype policy)"
    )
    doc = (
        "no dtype-unannotated allocations (`np.zeros(n)` et al. default to "
        "float64) in any function statically reachable from the `nn/` hot path — "
        "pass `dtype=` or `.astype(...)` the result; `a4nn check --fix` appends "
        "`dtype=dtype` when the name is already in scope"
    )

    def applies_to(self, module: ModuleContext) -> bool:
        return module.project is not None and module.project.modules[0] is module

    def check(self, module: ModuleContext) -> Iterable[Diagnostic]:
        graph = build_graph(module.project)
        entry_modules = _hot_entry_modules(graph)
        if not entry_modules:
            return
        chains = reach_from(graph, entry_modules, name_matches=False)
        seen: set[tuple[str, int, int]] = set()
        for qualname, chain in sorted(chains.items()):
            info = graph.functions[qualname]
            if info.module == _POLICY_MODULE:
                continue
            owner = graph.modules[info.module].context
            wrapped = _astype_receivers(info.node)
            in_hot_module = info.module in entry_modules
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                chain_name = dotted_name(node.func)
                if chain_name not in _ALLOC_CALLS:
                    continue
                if _has_dtype_kwarg(node) or id(node) in wrapped:
                    continue
                key = (owner.display_path, node.lineno, node.col_offset)
                if key in seen:
                    continue
                seen.add(key)
                where = (
                    "in nn hot-path code"
                    if in_hot_module
                    else f"reachable from the nn hot path via {render_chain(chain)}"
                )
                fix = None
                if _dtype_in_scope(info.node) and node.end_lineno is not None:
                    fix = Fix(
                        start=(node.end_lineno, node.end_col_offset - 1),
                        end=(node.end_lineno, node.end_col_offset - 1),
                        replacement=", dtype=dtype",
                        description="thread the in-scope dtype through the allocation",
                    )
                related = None
                if not in_hot_module:
                    entry_info = graph.functions[chain[0]]
                    entry_ctx = graph.modules[entry_info.module].context
                    related = RelatedLocation(
                        path=entry_ctx.display_path,
                        line=entry_info.node.lineno,
                        col=entry_info.node.col_offset,
                        note=f"nn hot-path entry point {chain[0]}",
                    )
                yield dataclasses.replace(
                    Diagnostic(
                        path=owner.display_path,
                        line=node.lineno,
                        col=node.col_offset,
                        rule_id=self.rule_id,
                        severity=self.severity,
                        message=(
                            f"{chain_name}(...) without dtype= {where} defaults "
                            "to float64 and silently upcasts the configured "
                            "compute dtype; pass dtype= (or .astype the result)"
                        ),
                        related=related,
                    ),
                    fix=fix,
                )


@register
class LoopUpcastRule(BaseRule):
    rule_id = "NUM006"
    category = "numerical-safety"
    description = (
        "float64-defaulting producer (rng draw, linspace, eye) without dtype "
        "inside a trainer/optimizer loop body"
    )
    doc = (
        "no float64-defaulting producers (`rng.random`, `rng.normal`, "
        "`np.linspace`, `np.eye`, ...) without `dtype=`/`.astype` inside loop "
        "bodies of `nn/trainer.py`, `nn/optimizers.py`, `nn/network.py`, "
        "`nn/schedules.py` — one float64 draw upcasts the parameter state for "
        "every following iteration"
    )

    def applies_to(self, module: ModuleContext) -> bool:
        return module.in_location(*_LOOP_MODULES)

    def check(self, module: ModuleContext) -> Iterable[Diagnostic]:
        wrapped = _astype_receivers(module.tree)
        seen: set[int] = set()
        for loop in ast.walk(module.tree):
            if not isinstance(loop, (ast.For, ast.While)):
                continue
            for node in ast.walk(loop):
                if not isinstance(node, ast.Call) or id(node) in seen:
                    continue
                seen.add(id(node))
                chain = dotted_name(node.func)
                if chain is None:
                    continue
                is_producer = chain in _F64_PRODUCER_CALLS or (
                    "." in chain
                    and chain.rsplit(".", 1)[1] in _F64_PRODUCER_ATTRS
                    and not chain.startswith(("np.", "numpy."))
                )
                if not is_producer:
                    continue
                if _has_dtype_kwarg(node) or id(node) in wrapped:
                    continue
                yield self.diag(
                    module,
                    node,
                    f"{chain}(...) defaults to float64 inside a training loop; "
                    "pass dtype= or .astype the result so one draw cannot "
                    "upcast the loop-carried state",
                )
