"""Performance rules: constructs that silently force float64 in hot paths.

The evaluation fast path runs every layer, loss, and optimizer in the
configured compute dtype (float32 by default for new runs — see
:mod:`repro.nn.dtype`).  A single ``dtype=float`` default or bare
``astype(float)`` in a hot-path module upcasts the whole pipeline back
to float64 and quietly throws the speedup away, which is exactly how
the pre-fast-path losses module defeated float32 training:

* ``PERF001`` — inside ``nn/`` hot-path code, ``dtype=float``,
  ``np.float64``/``numpy.float64``, and bare ``astype(float)`` /
  ``astype("float64")`` all force float64 regardless of the configured
  policy.  Derive the dtype from the data (``targets = np.asarray(t,
  dtype=predictions.dtype)``) or thread it through
  :func:`repro.nn.dtype.resolve_dtype`.  ``nn/dtype.py`` itself is
  exempt — the float64 *default* has to be named somewhere, and that
  module is its sanctioned home.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.tooling.context import ModuleContext
from repro.tooling.diagnostics import Diagnostic
from repro.tooling.rules import BaseRule, dotted_name, register

__all__ = ["Float64ForcingRule"]

_WIDE_ATTRS = {"np.float64", "numpy.float64", "np.double", "numpy.double"}
_WIDE_LITERALS = {"float64", "double"}


def _forces_float64(arg: ast.AST) -> str | None:
    """Human-readable description when ``arg`` pins float64, else ``None``."""
    if isinstance(arg, ast.Name) and arg.id == "float":
        return "builtin float"
    if isinstance(arg, ast.Attribute) and dotted_name(arg) in _WIDE_ATTRS:
        return dotted_name(arg)
    if (
        isinstance(arg, ast.Constant)
        and isinstance(arg.value, str)
        and arg.value in _WIDE_LITERALS
    ):
        return repr(arg.value)
    return None


@register
class Float64ForcingRule(BaseRule):
    rule_id = "PERF001"
    category = "performance"
    description = "construct that forces float64 in nn/ hot-path code, defeating the dtype policy"

    def applies_to(self, module: ModuleContext) -> bool:
        return module.in_location("nn/") and not module.in_location("nn/dtype.py")

    def check(self, module: ModuleContext) -> Iterable[Diagnostic]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                chain = dotted_name(node)
                if chain in _WIDE_ATTRS:
                    yield self.diag(
                        module,
                        node,
                        f"{chain} pins float64 regardless of the configured "
                        "compute dtype; derive the dtype from the data or from "
                        "repro.nn.dtype.resolve_dtype",
                    )
            elif isinstance(node, ast.Call):
                chain = dotted_name(node.func) or ""
                is_astype = chain.endswith(".astype")
                candidates = [
                    kw.value for kw in node.keywords if kw.arg == "dtype"
                ]
                if is_astype:
                    candidates.extend(node.args)
                for arg in candidates:
                    what = _forces_float64(arg)
                    # np.float64 attributes are already reported above
                    if what is not None and not isinstance(arg, ast.Attribute):
                        site = f"astype({what})" if is_astype else f"dtype={what}"
                        yield self.diag(
                            module,
                            arg,
                            f"{site} silently upcasts the pipeline to "
                            "float64, defeating the float32 fast path; derive "
                            "the dtype from the data or from "
                            "repro.nn.dtype.resolve_dtype",
                        )
