"""Performance rules: constructs that silently force float64 in hot paths.

The evaluation fast path runs every layer, loss, and optimizer in the
configured compute dtype (float32 by default for new runs — see
:mod:`repro.nn.dtype`).  A single ``dtype=float`` default or bare
``astype(float)`` in a hot-path module upcasts the whole pipeline back
to float64 and quietly throws the speedup away, which is exactly how
the pre-fast-path losses module defeated float32 training:

* ``PERF001`` — inside ``nn/`` hot-path code, ``dtype=float``,
  ``np.float64``/``numpy.float64``, and bare ``astype(float)`` /
  ``astype("float64")`` all force float64 regardless of the configured
  policy.  Derive the dtype from the data (``targets = np.asarray(t,
  dtype=predictions.dtype)``) or thread it through
  :func:`repro.nn.dtype.resolve_dtype`.  ``nn/dtype.py`` itself is
  exempt — the float64 *default* has to be named somewhere, and that
  module is its sanctioned home.

* ``PERF002`` — inside the worker-entry modules of the process backend
  (``scheduler/procpool.py``, ``xfel/shm.py``), constructs that cannot
  cross a ``spawn`` pickle boundary or that smuggle per-process state:
  lambdas (unpicklable — every callable shipped to a worker must be a
  module-level function), closures returned from functions (same
  problem, harder to spot), and module-level RNG state (each spawned
  worker re-imports the module and gets its *own* generator, silently
  desynchronizing workers from the serial path — derive generators from
  :class:`repro.utils.rng.RngStream` per evaluation instead).

* ``PERF003`` — inside the training hot loop (``nn/layers/``,
  ``nn/trainer.py``, ``nn/optimizers.py``, ``nas/decoder.py``),
  allocating numpy constructors (``np.zeros``/``np.empty``/
  ``np.concatenate``/...) and ``.copy()``/``.astype()`` calls inside
  ``for``/``while`` loop bodies.  A loop-carried allocation runs once
  per batch or per node for every epoch of every candidate network —
  the buffer arena (:mod:`repro.nn.arena`) exists precisely so this
  scratch is requested once and reused.  The legacy allocate-per-call
  paths that float64 replay depends on are kept byte-exact and carry
  justified ``a4nn: noqa(PERF003)`` suppressions instead of being
  rewritten.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.tooling.context import ModuleContext
from repro.tooling.diagnostics import Diagnostic
from repro.tooling.rules import BaseRule, dotted_name, register, walk_functions

__all__ = ["Float64ForcingRule", "PicklingHostileRule", "LoopAllocationRule"]

_WIDE_ATTRS = {"np.float64", "numpy.float64", "np.double", "numpy.double"}
_WIDE_LITERALS = {"float64", "double"}


def _forces_float64(arg: ast.AST) -> str | None:
    """Human-readable description when ``arg`` pins float64, else ``None``."""
    if isinstance(arg, ast.Name) and arg.id == "float":
        return "builtin float"
    if isinstance(arg, ast.Attribute) and dotted_name(arg) in _WIDE_ATTRS:
        return dotted_name(arg)
    if (
        isinstance(arg, ast.Constant)
        and isinstance(arg.value, str)
        and arg.value in _WIDE_LITERALS
    ):
        return repr(arg.value)
    return None


@register
class Float64ForcingRule(BaseRule):
    rule_id = "PERF001"
    category = "performance"
    doc = (
        "no float64-forcing constructs (`dtype=float`, `np.float64`, `astype(float)`) "
        "inside `nn/` outside `nn/dtype.py` — a single upcast silently defeats the "
        "float32 fast path"
    )
    description = "construct that forces float64 in nn/ hot-path code, defeating the dtype policy"

    def applies_to(self, module: ModuleContext) -> bool:
        return module.in_location("nn/") and not module.in_location("nn/dtype.py")

    def check(self, module: ModuleContext) -> Iterable[Diagnostic]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                chain = dotted_name(node)
                if chain in _WIDE_ATTRS:
                    yield self.diag(
                        module,
                        node,
                        f"{chain} pins float64 regardless of the configured "
                        "compute dtype; derive the dtype from the data or from "
                        "repro.nn.dtype.resolve_dtype",
                    )
            elif isinstance(node, ast.Call):
                chain = dotted_name(node.func) or ""
                is_astype = chain.endswith(".astype")
                candidates = [
                    kw.value for kw in node.keywords if kw.arg == "dtype"
                ]
                if is_astype:
                    candidates.extend(node.args)
                for arg in candidates:
                    what = _forces_float64(arg)
                    # np.float64 attributes are already reported above
                    if what is not None and not isinstance(arg, ast.Attribute):
                        site = f"astype({what})" if is_astype else f"dtype={what}"
                        yield self.diag(
                            module,
                            arg,
                            f"{site} silently upcasts the pipeline to "
                            "float64, defeating the float32 fast path; derive "
                            "the dtype from the data or from "
                            "repro.nn.dtype.resolve_dtype",
                        )


#: Calls whose result, bound at module level, is per-process RNG state.
_RNG_FACTORIES = {
    "np.random.default_rng",
    "numpy.random.default_rng",
    "np.random.RandomState",
    "numpy.random.RandomState",
    "np.random.seed",
    "numpy.random.seed",
    "random.Random",
    "random.seed",
}

#: Modules that define what worker processes execute or attach to.
_WORKER_ENTRY_FILES = ("scheduler/procpool.py", "xfel/shm.py")


@register
class PicklingHostileRule(BaseRule):
    rule_id = "PERF002"
    category = "performance"
    doc = (
        "no pickling-hostile constructs (lambdas, returned closures, module-level "
        "RNG state) in the process-backend worker-entry modules "
        "(`scheduler/procpool.py`, `xfel/shm.py`) — everything shipped to a spawned "
        "worker must cross the pickle boundary and re-derive RNG state"
    )
    description = (
        "pickling-hostile construct (lambda, returned closure, module-level "
        "RNG state) in a process-backend worker-entry module"
    )

    def applies_to(self, module: ModuleContext) -> bool:
        return module.in_location(*_WORKER_ENTRY_FILES)

    def _module_level_rng(self, module: ModuleContext) -> Iterable[Diagnostic]:
        for stmt in module.tree.body:
            targets: list[ast.AST]
            if isinstance(stmt, ast.Assign):
                value, targets = stmt.value, stmt.targets
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                value, targets = stmt.value, [stmt.target]
            elif isinstance(stmt, ast.Expr):
                # bare np.random.seed(...) at import time
                value, targets = stmt.value, []
            else:
                continue
            if not isinstance(value, ast.Call):
                continue
            chain = dotted_name(value.func)
            if chain in _RNG_FACTORIES:
                yield self.diag(
                    module,
                    value,
                    f"module-level {chain}(...) gives every spawned worker its "
                    "own generator state, silently desynchronizing workers "
                    "from the serial path; derive generators from an "
                    "RngStream per evaluation instead",
                )

    def _returned_closures(self, module: ModuleContext) -> Iterable[Diagnostic]:
        for func in walk_functions(module.tree):
            nested = {
                child.name
                for stmt in func.body
                for child in ast.walk(stmt)
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                and child is not func
            }
            if not nested:
                continue
            for node in ast.walk(func):
                if (
                    isinstance(node, ast.Return)
                    and isinstance(node.value, ast.Name)
                    and node.value.id in nested
                ):
                    yield self.diag(
                        module,
                        node,
                        f"returning nested function {node.value.id!r} creates "
                        "a closure that cannot cross the spawn pickle "
                        "boundary; promote it to a module-level function",
                    )

    def check(self, module: ModuleContext) -> Iterable[Diagnostic]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Lambda):
                yield self.diag(
                    module,
                    node,
                    "lambdas are unpicklable and cannot be shipped to a "
                    "spawned worker; use a module-level function",
                )
        yield from self._module_level_rng(module)
        yield from self._returned_closures(module)


#: Numpy constructors whose result is a fresh heap array every call.
_ALLOCATORS = {
    "zeros",
    "empty",
    "ones",
    "full",
    "zeros_like",
    "empty_like",
    "ones_like",
    "full_like",
    "arange",
    "ascontiguousarray",
    "concatenate",
    "stack",
    "tile",
    "repeat",
}

#: Array methods that allocate a fresh copy of their receiver.
_COPYING_METHODS = {"copy", "astype"}

#: The modules whose loops run once per batch/node/epoch per candidate.
_HOT_LOOP_LOCATIONS = (
    "nn/layers/",
    "nn/trainer.py",
    "nn/optimizers.py",
    "nas/decoder.py",
)


def _allocating_call(node: ast.Call) -> str | None:
    """Describe ``node`` when it allocates a fresh array, else ``None``."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None
    # method calls match on the attribute alone so subscripted/chained
    # receivers (grads[i].copy()) are caught too
    if func.attr in _COPYING_METHODS:
        return f".{func.attr}(...)"
    chain = dotted_name(func)
    if chain is not None:
        head, _, tail = chain.rpartition(".")
        if head in ("np", "numpy") and tail in _ALLOCATORS:
            return f"{chain}(...)"
    return None


@register
class LoopAllocationRule(BaseRule):
    rule_id = "PERF003"
    category = "performance"
    doc = (
        "no allocating numpy constructors (`np.zeros`, `np.empty`, `np.concatenate`, "
        "...) or `.copy()`/`.astype()` calls inside `for`/`while` loop bodies of the "
        "training hot loop (`nn/layers/`, `nn/trainer.py`, `nn/optimizers.py`, "
        "`nas/decoder.py`) — request pinned scratch from the buffer arena once and "
        "reuse it; byte-exact legacy paths justify with `a4nn: noqa(PERF003)`"
    )
    description = (
        "loop-carried array allocation in training hot-loop code; use a "
        "pinned arena buffer instead"
    )

    def applies_to(self, module: ModuleContext) -> bool:
        return module.in_location(*_HOT_LOOP_LOCATIONS)

    def _walk_pruned(self, node: ast.AST) -> Iterable[ast.AST]:
        """Walk ``node`` without descending into nested loops or defs.

        A call inside a nested loop is reported when the *inner* loop is
        visited; descending here would report it once per enclosing
        loop.  Nested function bodies only repeat if something calls
        them in a loop, which is that call site's finding.
        """
        if isinstance(
            node, (ast.For, ast.While, ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            return
        yield node
        for child in ast.iter_child_nodes(node):
            yield from self._walk_pruned(child)

    def check(self, module: ModuleContext) -> Iterable[Diagnostic]:
        for loop in ast.walk(module.tree):
            if not isinstance(loop, (ast.For, ast.While)):
                continue
            # only the loop *body* repeats; the iterable expression and
            # the while condition run per iteration too, but allocations
            # there are idiomatic (e.g. iterating over a fresh arange)
            for stmt in loop.body + loop.orelse:
                for node in self._walk_pruned(stmt):
                    if not isinstance(node, ast.Call):
                        continue
                    what = _allocating_call(node)
                    if what is not None:
                        yield self.diag(
                            module,
                            node,
                            f"{what} allocates a fresh array on every loop "
                            "iteration of the training hot path; request a "
                            "pinned buffer from the bound BufferArena "
                            "(Layer._buf) once and reuse it",
                        )
