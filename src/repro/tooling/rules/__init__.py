"""Rule protocol and registry for the ``a4nn check`` linter.

A rule is a small object with a stable ``rule_id``, a ``category``, a
one-line ``description``, a location predicate, and a ``check`` that
yields :class:`~repro.tooling.diagnostics.Diagnostic` objects for one
parsed module.  Rules register themselves with :func:`register` at
import time, so adding a rule in a later PR is: write the class in a
module under ``tooling/rules/``, decorate it, and import the module
from :func:`load_builtin_rules`.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Protocol, runtime_checkable

from repro.tooling.context import ModuleContext
from repro.tooling.diagnostics import Diagnostic, Severity

__all__ = [
    "Rule",
    "BaseRule",
    "register",
    "all_rules",
    "rule_ids",
    "get_rule",
    "load_builtin_rules",
    "markdown_catalog",
    "inject_catalog",
    "CATALOG_BEGIN",
    "CATALOG_END",
]


@runtime_checkable
class Rule(Protocol):
    """What the linter requires of a check."""

    rule_id: str
    category: str
    description: str

    def applies_to(self, module: ModuleContext) -> bool:
        """Whether this rule should run on ``module`` at all."""

    def check(self, module: ModuleContext) -> Iterable[Diagnostic]:
        """Yield findings for one parsed module."""


class BaseRule:
    """Convenience base: applies everywhere, error severity, ``diag`` helper.

    ``scope`` drives the incremental cache: ``"file"`` rules see one
    module at a time, so their diagnostics are cacheable per content
    hash; ``"project"`` rules read sibling modules (cross-file flow
    rules, registry checks) and re-run on every invocation against the
    cached ASTs.  ``doc`` is the README catalog prose — the rule table
    in README.md is generated from it (``--list-rules --format md``).
    """

    rule_id: str = ""
    category: str = ""
    description: str = ""
    doc: str = ""
    scope: str = "file"
    severity: Severity = Severity.ERROR

    def applies_to(self, module: ModuleContext) -> bool:
        return True

    def check(self, module: ModuleContext) -> Iterable[Diagnostic]:
        raise NotImplementedError

    def diag(
        self, module: ModuleContext, node: ast.AST | None, message: str
    ) -> Diagnostic:
        """Build a diagnostic for ``node`` (or the file head when ``None``)."""
        return Diagnostic(
            path=module.display_path,
            line=getattr(node, "lineno", 1) if node is not None else 1,
            col=getattr(node, "col_offset", 0) if node is not None else 0,
            rule_id=self.rule_id,
            severity=self.severity,
            message=message,
        )


_REGISTRY: dict[str, Rule] = {}


def register(rule_cls: type) -> type:
    """Class decorator: instantiate and index the rule by its id."""
    rule = rule_cls()
    if not rule.rule_id:
        raise ValueError(f"rule {rule_cls.__name__} has no rule_id")
    existing = _REGISTRY.get(rule.rule_id)
    if existing is not None and type(existing) is not rule_cls:
        raise ValueError(
            f"duplicate rule id {rule.rule_id!r}: "
            f"{type(existing).__name__} vs {rule_cls.__name__}"
        )
    _REGISTRY[rule.rule_id] = rule
    return rule_cls


def all_rules() -> list[Rule]:
    """Every registered rule, ordered by id."""
    load_builtin_rules()
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def rule_ids() -> list[str]:
    load_builtin_rules()
    return sorted(_REGISTRY)


def get_rule(rule_id: str) -> Rule:
    load_builtin_rules()
    return _REGISTRY[rule_id]


def load_builtin_rules() -> None:
    """Import the built-in rule modules (idempotent)."""
    from repro.tooling.rules import (  # noqa: F401
        alias_effects,
        concurrency,
        contracts,
        det_flow,
        determinism,
        lineage,
        num_flow,
        perf,
        safety,
        suppressions,
        tensor_shape,
    )


def markdown_catalog(rules: Iterable[Rule] | None = None) -> str:
    """The README rule-catalog table, generated from the registry.

    README.md embeds this output verbatim between the
    ``RULE CATALOG`` markers; ``tests/test_tooling_linter.py`` asserts
    the two stay in sync, so a new rule pack cannot drift from docs.
    """
    chosen = list(rules) if rules is not None else all_rules()
    lines = ["| rule | category | what it enforces |", "|---|---|---|"]
    for rule in chosen:
        prose = (getattr(rule, "doc", "") or rule.description).strip()
        lines.append(f"| `{rule.rule_id}` | {rule.category} | {prose} |")
    return "\n".join(lines)


#: Markers bounding the generated rule table in README.md.
CATALOG_BEGIN = "<!-- a4nn-rule-catalog:begin -->"
CATALOG_END = "<!-- a4nn-rule-catalog:end -->"


def inject_catalog(readme_text: str, rules: Iterable[Rule] | None = None) -> str:
    """Replace the marked README region with the generated catalog.

    Raises :class:`ValueError` when the markers are missing or out of
    order — a silent no-op would let the docs drift undetected.
    """
    begin = readme_text.find(CATALOG_BEGIN)
    end = readme_text.find(CATALOG_END)
    if begin < 0 or end < 0 or end < begin:
        raise ValueError("README is missing the a4nn-rule-catalog markers")
    head = readme_text[: begin + len(CATALOG_BEGIN)]
    tail = readme_text[end:]
    return f"{head}\n{markdown_catalog(rules)}\n{tail}"


def walk_functions(tree: ast.Module) -> Iterator[ast.AST]:
    """Every function/async-function definition in the module."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def dotted_name(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute/name chains; ``None`` for other shapes."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
