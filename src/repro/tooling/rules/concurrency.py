"""Concurrency rules: state that must not cross the worker boundary.

The process backend's contract (DESIGN §10) is that a worker rebuilds
its entire evaluator chain from a picklable :class:`EvalSpec` and never
shares Python state with the parent.  PERF002 enforces the syntactic
half inside the worker-entry modules; these rules use the call graph
and value tracing to police the *flows*:

* ``CONC001`` — a write to module-level mutable state (a ``global``
  rebind, or a mutation of a module-level container) in any function
  transitively reachable from a worker-entry function
  (``scheduler/procpool.py`` / ``xfel/shm.py``).  Each spawned worker
  re-imports the module, so such writes silently diverge per process —
  the parent never sees them, and replay cannot reproduce them.
* ``CONC002`` — a value with a non-picklable (or contract-breaking)
  origin flowing into ``EvalSpec(...)`` construction *anywhere in the
  project*: lambdas, locally-defined closures, generator expressions,
  open file handles, thread/lock objects — and RNG objects, which
  pickle fine but violate the "workers re-derive RNG, never receive
  it" replay contract.  This replaces PERF002's module-local lambda
  spotting with real dataflow: the construction site can be three
  modules away from the worker entry and the flow is still caught.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.tooling.context import ModuleContext
from repro.tooling.dataflow import (
    MUTABLE_CONSTRUCTORS,
    RNG_FACTORY_CHAINS,
    mapping_values,
    reach_from,
    render_chain,
    trace_value,
)
from repro.tooling.diagnostics import Diagnostic, RelatedLocation
from repro.tooling.graph import ProjectGraph, build_graph
from repro.tooling.rules import BaseRule, dotted_name, register

__all__ = ["WorkerSharedStateRule", "SpecPicklabilityRule", "WORKER_ENTRY_MODULES"]

#: Worker-entry modules (PERF002's scope, as dotted names).  The thread
#: pool's streaming seam (``scheduler/pool.py``) is included: its worker
#: tasks run the same evaluator chains concurrently, so module-state
#: writes reachable from them race across threads exactly as they
#: diverge across processes.
WORKER_ENTRY_MODULES = [
    "repro.scheduler.procpool",
    "repro.scheduler.pool",
    "repro.xfel.shm",
]

#: Container-mutating method names (on a module-level name).
_MUTATOR_METHODS = {
    "append",
    "extend",
    "insert",
    "add",
    "update",
    "setdefault",
    "remove",
    "discard",
    "clear",
    "popitem",
}

#: Call chains whose result cannot (or must not) cross the spawn pickle
#: boundary inside an EvalSpec.
_UNPICKLABLE_FACTORIES = {
    "open": "an open file handle",
    "threading.Lock": "a thread lock",
    "threading.RLock": "a thread lock",
    "threading.Condition": "a condition variable",
    "threading.Event": "a thread event",
    "threading.Thread": "a thread object",
    "socket.socket": "a socket",
}


def _is_module_mutable(symbols, name: str) -> bool:
    value = symbols.module_assigns.get(name)
    if value is None:
        return False
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        chain = dotted_name(value.func)
        if chain is not None and chain.split(".")[-1] in MUTABLE_CONSTRUCTORS:
            return True
    return False


def _module_state_writes(symbols, func: ast.AST) -> Iterable[tuple[ast.AST, str]]:
    """(node, description) for writes to module-level state inside ``func``."""
    declared_global: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id in declared_global:
                    yield node, f"rebinds module global {target.id!r}"
                elif isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    name = target.value.id
                    if _is_module_mutable(symbols, name):
                        yield node, f"writes into module-level container {name!r}"
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    name = target.value.id
                    if _is_module_mutable(symbols, name):
                        yield node, f"deletes from module-level container {name!r}"
        elif isinstance(node, ast.Call):
            chain = dotted_name(node.func)
            if chain is None or "." not in chain:
                continue
            head, method = chain.split(".", 1)
            if "." in method:
                continue
            if method in _MUTATOR_METHODS and _is_module_mutable(symbols, head):
                yield node, f"mutates module-level container {head!r} via .{method}()"


@register
class WorkerSharedStateRule(BaseRule):
    rule_id = "CONC001"
    category = "concurrency"
    scope = "project"
    description = (
        "write to module-level mutable state in a function reachable from a "
        "process-backend worker entry point"
    )
    doc = (
        "no writes to module-level mutable state (`global` rebinds, container "
        "mutations) in any function transitively reachable from the worker-entry "
        "functions of `scheduler/procpool.py` / `scheduler/pool.py` / "
        "`xfel/shm.py` — each spawned worker re-imports the module, so such "
        "state silently diverges per process (and races across the thread "
        "pool's streaming workers) and breaks replay"
    )

    def applies_to(self, module: ModuleContext) -> bool:
        return module.project is not None and module.project.modules[0] is module

    def check(self, module: ModuleContext) -> Iterable[Diagnostic]:
        graph = build_graph(module.project)
        if not any(name in graph.modules for name in WORKER_ENTRY_MODULES):
            return
        chains = reach_from(graph, WORKER_ENTRY_MODULES, name_matches=True)
        seen: set[tuple[str, int, int]] = set()
        for qualname, chain in sorted(chains.items()):
            info = graph.functions[qualname]
            symbols = graph.modules[info.module]
            owner = symbols.context
            entry_info = graph.functions[chain[0]]
            entry_ctx = graph.modules[entry_info.module].context
            for node, what in _module_state_writes(symbols, info.node):
                key = (owner.display_path, node.lineno, node.col_offset)
                if key in seen:
                    continue
                seen.add(key)
                yield Diagnostic(
                    path=owner.display_path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule_id=self.rule_id,
                    severity=self.severity,
                    message=(
                        f"{qualname} {what}, and is reachable from worker entry "
                        f"point {chain[0]} via {render_chain(chain)}; each "
                        "spawned worker re-imports the module, so this state "
                        "diverges per process — pass state through EvalSpec or "
                        "return it to the parent"
                    ),
                    related=RelatedLocation(
                        path=entry_ctx.display_path,
                        line=entry_info.node.lineno,
                        col=entry_info.node.col_offset,
                        note=f"worker entry point {chain[0]}",
                    ),
                )


_SPEC_NAME = "EvalSpec"
_SPEC_QUALNAME = "repro.scheduler.procpool.EvalSpec"


def _hostile_origin(origin) -> str | None:
    """Why an origin must not enter an EvalSpec, or ``None`` when fine."""
    if origin.kind == "lambda":
        return "a lambda is unpicklable and cannot cross the spawn boundary"
    if origin.kind == "closure":
        return (
            f"locally-defined function {origin.detail!r} closes over its frame "
            "and cannot cross the spawn boundary; promote it to module level"
        )
    if origin.kind == "genexp":
        return "a generator expression is unpicklable"
    if origin.kind == "call":
        tail = origin.detail.split(".")[-1]
        if origin.detail in _UNPICKLABLE_FACTORIES:
            return f"{_UNPICKLABLE_FACTORIES[origin.detail]} is unpicklable"
        if origin.detail in RNG_FACTORY_CHAINS or tail in ("default_rng", "fallback_rng", "derive_rng"):
            return (
                "an RNG object must not be shipped to workers — they re-derive "
                "generators from the seed and genome identity (replay contract)"
            )
    return None


@register
class SpecPicklabilityRule(BaseRule):
    rule_id = "CONC002"
    category = "concurrency"
    scope = "project"
    description = (
        "non-picklable or contract-breaking value flowing into EvalSpec "
        "construction"
    )
    doc = (
        "no non-picklable values (lambdas, closures, generator expressions, file "
        "handles, locks) and no RNG objects flowing into `EvalSpec(...)` "
        "construction anywhere in the project — traced through assignments and "
        "`**kwargs` dicts, not just spotted at the call site"
    )

    def applies_to(self, module: ModuleContext) -> bool:
        return module.project is not None and module.project.modules[0] is module

    def _spec_calls(self, graph: ProjectGraph):
        """Every ``EvalSpec(...)`` construction, resolved through imports."""
        for symbols in graph.modules.values():
            seen: set[int] = set()
            for info in symbols.functions.values():
                if id(info.node) in seen:
                    continue
                seen.add(id(info.node))
                for node in ast.walk(info.node):
                    if not isinstance(node, ast.Call):
                        continue
                    chain = dotted_name(node.func)
                    if chain is None:
                        continue
                    if symbols.resolve(chain) == _SPEC_QUALNAME:
                        yield symbols, info, node

    def check(self, module: ModuleContext) -> Iterable[Diagnostic]:
        graph = build_graph(module.project)
        for symbols, info, call in self._spec_calls(graph):
            owner = symbols.context
            flows: list[tuple[str | None, ast.AST]] = []
            for kw in call.keywords:
                if kw.arg is None:
                    flows.extend(mapping_values(symbols, info, kw.value))
                    # dict.update(...) keywords feed the same mapping
                    if isinstance(kw.value, ast.Name):
                        for sub in ast.walk(info.node):
                            if (
                                isinstance(sub, ast.Call)
                                and isinstance(sub.func, ast.Attribute)
                                and sub.func.attr == "update"
                                and isinstance(sub.func.value, ast.Name)
                                and sub.func.value.id == kw.value.id
                            ):
                                flows.extend(
                                    (k.arg, k.value) for k in sub.keywords if k.arg
                                )
                else:
                    flows.append((kw.arg, kw.value))
            flows.extend((None, arg) for arg in call.args)
            for field_name, expr in flows:
                origin = trace_value(symbols, info, expr)
                why = _hostile_origin(origin)
                if why is None:
                    continue
                anchor = origin.node if origin.node is not None else expr
                field_txt = f"field {field_name!r}" if field_name else "a positional field"
                yield Diagnostic(
                    path=owner.display_path,
                    line=getattr(anchor, "lineno", call.lineno),
                    col=getattr(anchor, "col_offset", call.col_offset),
                    rule_id=self.rule_id,
                    severity=self.severity,
                    message=(
                        f"value flowing into EvalSpec {field_txt} "
                        f"(constructed in {info.qualname}): {why}"
                    ),
                    related=RelatedLocation(
                        path=owner.display_path,
                        line=call.lineno,
                        col=call.col_offset,
                        note=f"EvalSpec construction in {info.qualname}",
                    ),
                )
