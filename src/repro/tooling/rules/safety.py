"""Numerical-safety rules: swallowed errors, unguarded division, dtype mixing.

A corrupted learning curve poisons the fitness estimate silently, so
numeric code must fail loudly or guard explicitly:

* ``NUM001`` — a bare ``except:`` / ``except Exception`` whose body
  neither re-raises nor logs swallows the very faults the prediction
  engine needs to see.  Narrow the type, re-raise, log — or suppress
  with a justified ``# a4nn: noqa(NUM001) -- reason``.
* ``NUM002`` — in fitting/metrics code, dividing by a bare variable
  with no visible guard is how NaN/inf enters the history ``H``.
  Guards recognized: an ``np.where`` whose condition mentions the
  denominator, an epsilon-named denominator, a prior clamp of the
  denominator in the same function (``x = np.maximum(x, eps)``), or
  any non-trivial denominator expression (``x + eps``, ``max(...)``,
  ``len(...)``).
* ``NUM003`` — compute precision in ``nn/`` is a *policy*, selected
  once through :mod:`repro.nn.dtype` and threaded through layer/
  initializer ``dtype`` parameters.  Hard-coding ``np.float32`` /
  ``float16`` at a call site silently mixes precision and changes
  training results between code paths; only the policy module may name
  narrow dtypes.
* ``NUM004`` — a ``while True`` loop that swallows exceptions and loops
  again is an unbounded retry: on a persistent fault it spins forever
  (the hang the fault policy's timeout exists to catch).  Retry logic
  belongs in the fault-policy seam (``scheduler/faults.py``), which
  bounds attempts and backs off; that module is exempt.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.tooling.context import ModuleContext
from repro.tooling.diagnostics import Diagnostic
from repro.tooling.rules import BaseRule, dotted_name, register

__all__ = [
    "SwallowedExceptRule",
    "UnguardedDivisionRule",
    "NarrowDtypeRule",
    "UnboundedRetryRule",
]

_BROAD_TYPES = {"Exception", "BaseException"}
_LOG_METHODS = {"debug", "info", "warning", "warn", "error", "exception", "critical", "log"}

_NUMERIC_SCOPES = (
    "core/",
    "nn/metrics.py",
    "analysis/stats.py",
    "analysis/curves.py",
)

_NARROW_DTYPES = {"float32", "float16", "half", "single"}


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    for t in types:
        name = t.id if isinstance(t, ast.Name) else (t.attr if isinstance(t, ast.Attribute) else "")
        if name in _BROAD_TYPES:
            return True
    return False


def _handles_visibly(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body re-raises or logs the error."""
    for node in ast.walk(ast.Module(body=handler.body, type_ignores=[])):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            chain = dotted_name(node.func)
            if chain is None:
                continue
            tail = chain.rsplit(".", 1)[-1]
            if tail in _LOG_METHODS or chain == "warnings.warn":
                return True
    return False


@register
class SwallowedExceptRule(BaseRule):
    rule_id = "NUM001"
    category = "numerical-safety"
    doc = (
        "broad `except:` blocks in all code must re-raise or log — silent "
        "swallowing corrupts fitness histories invisibly"
    )
    description = "broad except that neither re-raises nor logs swallows faults silently"

    def check(self, module: ModuleContext) -> Iterable[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _is_broad(node) and not _handles_visibly(node):
                caught = "bare except" if node.type is None else "except Exception"
                yield self.diag(
                    module,
                    node,
                    f"{caught} swallows errors without re-raise or logging; "
                    "narrow the type, log, or justify with a4nn: noqa(NUM001)",
                )


def _parent_map(tree: ast.Module) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return parents


def _where_guarded(node: ast.AST, denom_src: str, parents: dict) -> bool:
    """Whether the division sits inside np.where(cond, ...) guarding the denominator."""
    current = parents.get(node)
    while current is not None:
        if isinstance(current, ast.Call):
            chain = dotted_name(current.func)
            if chain is not None and chain.rsplit(".", 1)[-1] == "where" and current.args:
                if denom_src in ast.unparse(current.args[0]):
                    return True
        current = parents.get(current)
    return False


_CLAMP_CALLS = {"maximum", "clip", "max", "abs", "fmax"}


def _clamped_earlier(node: ast.BinOp, denom_src: str, parents: dict) -> bool:
    """Whether the denominator was re-bound through a clamp before the division.

    Recognizes the codebase's clamp-then-use idiom::

        x = np.maximum(x, _EPS)
        ... b / x ...
    """
    current = parents.get(node)
    while current is not None and not isinstance(
        current, (ast.FunctionDef, ast.AsyncFunctionDef)
    ):
        current = parents.get(current)
    if current is None:
        return False
    for stmt in ast.walk(current):
        if (
            isinstance(stmt, ast.Assign)
            and stmt.lineno <= node.lineno
            and any(
                isinstance(t, (ast.Name, ast.Attribute)) and ast.unparse(t) == denom_src
                for t in stmt.targets
            )
            and isinstance(stmt.value, ast.Call)
        ):
            chain = dotted_name(stmt.value.func)
            if chain is not None and chain.rsplit(".", 1)[-1] in _CLAMP_CALLS:
                return True
    return False


@register
class UnguardedDivisionRule(BaseRule):
    rule_id = "NUM002"
    category = "numerical-safety"
    doc = (
        "divisions in fitting/metrics code need a visible guard (epsilon, clamp, "
        "or `np.where`)"
    )
    description = "division by a bare variable without an epsilon/where guard in numeric code"

    def applies_to(self, module: ModuleContext) -> bool:
        return module.in_location(*_NUMERIC_SCOPES)

    def check(self, module: ModuleContext) -> Iterable[Diagnostic]:
        parents = _parent_map(module.tree)
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div)):
                continue
            denom = node.right
            if not isinstance(denom, (ast.Name, ast.Attribute)):
                continue  # composite denominators carry their own guard
            denom_src = ast.unparse(denom)
            if "eps" in denom_src.lower():
                continue
            if _where_guarded(node, denom_src, parents):
                continue
            if _clamped_earlier(node, denom_src, parents):
                continue
            yield self.diag(
                module,
                node,
                f"division by bare {denom_src!r} with no epsilon or np.where guard "
                "can inject NaN/inf into the fitness pipeline",
            )


def _constant_true(test: ast.AST) -> bool:
    return isinstance(test, ast.Constant) and bool(test.value)


def _handler_escapes(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body exits the loop (raise/return/break)."""
    for node in ast.walk(ast.Module(body=handler.body, type_ignores=[])):
        if isinstance(node, (ast.Raise, ast.Return, ast.Break)):
            return True
    return False


@register
class UnboundedRetryRule(BaseRule):
    rule_id = "NUM004"
    category = "numerical-safety"
    doc = (
        "no unbounded retry loops (`while True` swallowing exceptions) outside "
        "`scheduler/faults.py` — retries are bounded by `FaultPolicy`"
    )
    description = "unbounded retry loop (while True swallowing exceptions) outside the fault-policy seam"

    def applies_to(self, module: ModuleContext) -> bool:
        # the fault-policy seam is where retry logic belongs (attempts
        # there are bounded by FaultPolicy.max_retries)
        return not module.in_location("scheduler/faults.py")

    def check(self, module: ModuleContext) -> Iterable[Diagnostic]:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.While) and _constant_true(node.test)):
                continue
            body = ast.Module(body=node.body, type_ignores=[])
            if any(isinstance(n, ast.Break) for n in ast.walk(body)):
                continue  # the loop has a success exit outside the try
            retrying = [
                handler
                for n in ast.walk(body)
                if isinstance(n, ast.Try)
                for handler in n.handlers
                if not _handler_escapes(handler)
            ]
            for handler in retrying:
                yield self.diag(
                    module,
                    handler,
                    "unbounded retry: this while-True loop swallows the "
                    "exception and tries again forever; bound the attempts "
                    "with backoff or route through scheduler.faults.FaultPolicy",
                )


@register
class NarrowDtypeRule(BaseRule):
    rule_id = "NUM003"
    category = "numerical-safety"
    doc = (
        "no hardcoded narrow dtype names (`float32`/`float16`) inside `nn/` outside "
        "`nn/dtype.py` — the compute dtype is threaded through `resolve_dtype`, "
        "never baked into a layer"
    )
    description = "hard-coded narrow float dtype in nn/ outside the dtype policy module"

    def applies_to(self, module: ModuleContext) -> bool:
        # nn/dtype.py is the sanctioned home for narrow-dtype names:
        # everything else must take dtype as a parameter and resolve it
        # through the policy (repro.nn.dtype.resolve_dtype)
        return module.in_location("nn/") and not module.in_location("nn/dtype.py")

    def check(self, module: ModuleContext) -> Iterable[Diagnostic]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                chain = dotted_name(node)
                if chain in {f"np.{d}" for d in _NARROW_DTYPES} | {
                    f"numpy.{d}" for d in _NARROW_DTYPES
                }:
                    yield self.diag(
                        module,
                        node,
                        f"{chain} hard-codes a narrow dtype; thread the compute "
                        "dtype through repro.nn.dtype.resolve_dtype instead",
                    )
            elif isinstance(node, ast.Call):
                chain = dotted_name(node.func) or ""
                is_dtype_site = chain.endswith(".astype")
                for arg in list(node.args) + [
                    kw.value for kw in node.keywords if kw.arg == "dtype"
                ]:
                    if (
                        isinstance(arg, ast.Constant)
                        and isinstance(arg.value, str)
                        and arg.value in _NARROW_DTYPES
                        and (is_dtype_site or any(kw.arg == "dtype" for kw in node.keywords))
                    ):
                        yield self.diag(
                            module,
                            arg,
                            f"dtype {arg.value!r} hard-codes a narrow dtype; thread "
                            "the compute dtype through repro.nn.dtype.resolve_dtype "
                            "instead",
                        )
