"""Aliasing and mutation-effect rules over the in-place kernel stack.

Built on the may-alias roots and mutation events the
:mod:`repro.tooling.tensorflow` interpreter collects (see DESIGN §13):

* ``ALIAS001`` — an ``out=`` target that may alias a read operand of a
  non-elementwise kernel (matmul, einsum, reductions, ``take``).
  Elementwise ufuncs are exempt (overlap is well-defined there);
  everything else reads operands in an order that makes overlap
  corrupt the result silently.  Aliasing is decided by root-set
  intersection, so a finding means the two values *can* share storage.
* ``ALIAS002`` — arena scratch (``Layer._buf`` / ``arena.buffer``)
  escaping the layer that owns it: returned from a non-``forward``/
  ``backward`` method, stored on a public attribute, stored into a
  container hanging off ``self``, or captured by a nested function.
  The arena reuses those buffers next batch, so any escaped reference
  is silently clobbered.  Private (``_``-prefixed) attribute stores are
  the sanctioned cache idiom and exempt; ``forward``/``backward``
  returns are the layer contract (the caller consumes the value before
  the next batch); the ``_buf`` accessor itself is the seam.
* ``EFF001`` — an in-place write to a caller-visible parameter without
  a declared contract.  The interpreter folds every mutation event into
  a ``mutates: ...`` effect summary; writes whose roots all come from
  function parameters are flagged unless the parameter is named
  ``out*`` (the numpy output convention) or the function carries an
  explicit ``# a4nn: mutates(name, ...) -- reason`` annotation.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable

from repro.tooling.context import ModuleContext
from repro.tooling.diagnostics import Diagnostic, RelatedLocation
from repro.tooling.rules import BaseRule, register
from repro.tooling.tensorflow import declared_mutations, module_facts

__all__ = ["OutAliasRule", "ArenaEscapeRule", "MutationEffectRule"]

_SCOPE = ("nn/", "nas/decoder.py")

#: Layer-contract methods allowed to return arena scratch: the network
#: consumes the returned tensor before the same layer runs again.
_CONTRACT_METHOD_MARKERS = ("forward", "backward")


def _related_def(module: ModuleContext, facts) -> RelatedLocation:
    return RelatedLocation(
        path=module.display_path,
        line=facts.node.lineno,
        col=facts.node.col_offset,
        note=f"in {facts.qualname}",
    )


@register
class OutAliasRule(BaseRule):
    rule_id = "ALIAS001"
    category = "aliasing"
    scope = "project"
    description = (
        "out= target may alias a read operand of a non-elementwise kernel "
        "(matmul/einsum/reduction), silently corrupting the result"
    )
    doc = (
        "no `out=` target may alias a read operand of a non-elementwise "
        "kernel (matmul, einsum, reductions, `take`): the may-alias lattice "
        "over arena buffer keys and array views proves disjointness; "
        "elementwise ufuncs are exempt because overlap is well-defined there"
    )

    def applies_to(self, module: ModuleContext) -> bool:
        return module.in_location(*_SCOPE)

    def check(self, module: ModuleContext) -> Iterable[Diagnostic]:
        for facts in module_facts(module).functions:
            for node, message in facts.alias_findings:
                yield dataclasses.replace(
                    self.diag(module, node, f"{message} (in {facts.qualname})"),
                    related=_related_def(module, facts),
                )


@register
class ArenaEscapeRule(BaseRule):
    rule_id = "ALIAS002"
    category = "aliasing"
    scope = "project"
    description = (
        "arena scratch buffer escapes its owning layer (returned, stored on "
        "a public attribute, or captured) and will be clobbered on reuse"
    )
    doc = (
        "arena scratch (`Layer._buf`) must not escape its layer: flags "
        "buffers returned outside the `forward`/`backward` contract, stored "
        "on public attributes or into containers on `self`, or captured by "
        "nested functions — the arena reuses that storage next batch"
    )

    def applies_to(self, module: ModuleContext) -> bool:
        return module.in_location(*_SCOPE)

    def check(self, module: ModuleContext) -> Iterable[Diagnostic]:
        seen: set[tuple[int, str, str]] = set()
        for facts in module_facts(module).functions:
            bare = facts.qualname.rsplit(".", 1)[-1]
            for node, kind, root, detail in facts.escapes:
                if kind == "returned":
                    if bare == "_buf" or any(
                        marker in bare for marker in _CONTRACT_METHOD_MARKERS
                    ):
                        continue
                    how = f"returned from {facts.qualname}"
                elif kind == "stored-on-self":
                    if detail.startswith("_"):
                        continue
                    how = f"stored on public attribute .{detail}"
                elif kind == "stored-in-container":
                    how = "stored into a container reachable from self"
                else:  # captured
                    how = f"captured by a nested function via {detail!r}"
                key = (node.lineno, kind, root)
                if key in seen:
                    continue
                seen.add(key)
                yield dataclasses.replace(
                    self.diag(
                        module,
                        node,
                        f"arena scratch {root} escapes its layer: {how}; the "
                        "arena reuses this storage on the next batch, so the "
                        "escaped reference is silently clobbered",
                    ),
                    related=_related_def(module, facts),
                )


@register
class MutationEffectRule(BaseRule):
    rule_id = "EFF001"
    category = "aliasing"
    scope = "project"
    description = (
        "in-place write to a caller-visible input without an out= parameter "
        "or a declared `# a4nn: mutates(...)` contract"
    )
    doc = (
        "no in-place writes to caller-visible inputs without a contract: the "
        "interpreter infers per-function effect summaries (`mutates: params, "
        "grads, scratch`) and flags parameter mutations unless the parameter "
        "is named `out*` or the function declares "
        "`# a4nn: mutates(name) -- reason`"
    )

    def applies_to(self, module: ModuleContext) -> bool:
        return module.in_location(*_SCOPE)

    def check(self, module: ModuleContext) -> Iterable[Diagnostic]:
        for facts in module_facts(module).functions:
            declared = declared_mutations(module, facts.node)
            summary = ", ".join(facts.effect_summary()) or "nothing"
            seen: set[tuple[int, frozenset[str]]] = set()
            for node, roots, how in facts.mutations:
                if not roots or not all(r.startswith("param:") for r in roots):
                    continue
                names = sorted(r.split(":", 1)[1] for r in roots)
                if all(
                    name == "out" or name.startswith("out_") or name in declared
                    for name in names
                ):
                    continue
                key = (node.lineno, roots)
                if key in seen:
                    continue
                seen.add(key)
                shown = ", ".join(names)
                yield dataclasses.replace(
                    self.diag(
                        module,
                        node,
                        f"in-place write ({how}) to caller-visible input "
                        f"'{shown}' without an out=-style contract "
                        f"(inferred effects of {facts.qualname}: mutates "
                        f"{summary}); declare it with "
                        f"`# a4nn: mutates({shown}) -- reason` or write to "
                        "a local copy",
                    ),
                    related=_related_def(module, facts),
                )
