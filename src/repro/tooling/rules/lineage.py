"""Lineage-completeness rule: writers must match the record schema.

``LIN001`` — the record dataclasses in ``lineage/records.py`` are the
commons schema; :mod:`repro.lineage.tracker` and the workflow
orchestrator write into them.  A writer that sets an attribute or
passes a constructor keyword the schema does not declare produces
records that *look* published but silently drop data (``asdict`` only
serializes declared fields), so replays verify against an incomplete
trail.  This rule parses the schema and checks every record
construction and attribute write in the writer modules against it.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.tooling.context import ModuleContext
from repro.tooling.diagnostics import Diagnostic
from repro.tooling.rules import BaseRule, register

__all__ = ["RecordSchemaRule", "record_schemas"]

_WRITER_SCOPES = ("lineage/tracker.py", "workflow/orchestrator.py")
_SCHEMA_MODULE = "lineage/records.py"


def _is_dataclass(cls: ast.ClassDef) -> bool:
    for deco in cls.decorator_list:
        name = None
        if isinstance(deco, ast.Name):
            name = deco.id
        elif isinstance(deco, ast.Attribute):
            name = deco.attr
        elif isinstance(deco, ast.Call):
            func = deco.func
            name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
        if name == "dataclass":
            return True
    return False


def record_schemas(records_tree: ast.Module) -> dict[str, set[str]]:
    """``{class name: declared field names}`` for every record dataclass."""
    schemas: dict[str, set[str]] = {}
    for node in records_tree.body:
        if isinstance(node, ast.ClassDef) and _is_dataclass(node):
            fields = {
                stmt.target.id
                for stmt in node.body
                if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name)
            }
            schemas[node.name] = fields
    return schemas


def _annotation_name(node: ast.AST | None) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.strip("\"'")
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@register
class RecordSchemaRule(BaseRule):
    rule_id = "LIN001"
    category = "lineage"
    scope = "project"
    doc = (
        "code writing lineage records only uses fields declared in "
        "`lineage/records.py` — `asdict` drops unknown attributes silently"
    )
    description = (
        "record writer out of sync with the lineage/records.py schema "
        "(unknown constructor keyword or attribute write would be dropped by asdict)"
    )

    def applies_to(self, module: ModuleContext) -> bool:
        return module.in_location(*_WRITER_SCOPES)

    def check(self, module: ModuleContext) -> Iterable[Diagnostic]:
        project = module.project
        records_mod = project.find(_SCHEMA_MODULE) if project else None
        if records_mod is None:
            return
        schemas = record_schemas(records_mod.tree)
        if not schemas:
            yield self.diag(
                module, None, f"{_SCHEMA_MODULE} declares no record dataclasses"
            )
            return

        # functions (in any scanned module of this project) returning a record
        returns_record: dict[str, str] = {}
        for mod in project.modules:
            for node in ast.walk(mod.tree):
                if isinstance(node, ast.FunctionDef):
                    name = _annotation_name(node.returns)
                    if name in schemas:
                        returns_record[node.name] = name

        for func in ast.walk(module.tree):
            if not isinstance(func, ast.FunctionDef):
                continue
            yield from self._check_function(module, func, schemas, returns_record)

    def _check_function(
        self,
        module: ModuleContext,
        func: ast.FunctionDef,
        schemas: dict[str, set[str]],
        returns_record: dict[str, str],
    ) -> Iterable[Diagnostic]:
        var_types: dict[str, str] = {}
        for node in ast.walk(func):
            if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
                continue
            call = node.value
            cls_name = None
            if isinstance(call.func, ast.Name) and call.func.id in schemas:
                cls_name = call.func.id
            elif isinstance(call.func, ast.Attribute) and call.func.attr in returns_record:
                cls_name = returns_record[call.func.attr]
            if cls_name is None:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    var_types[target.id] = cls_name

        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                cls_name = (
                    node.func.id
                    if isinstance(node.func, ast.Name) and node.func.id in schemas
                    else None
                )
                if cls_name is not None:
                    for keyword in node.keywords:
                        if keyword.arg is not None and keyword.arg not in schemas[cls_name]:
                            yield self.diag(
                                module,
                                keyword.value,
                                f"{cls_name}({keyword.arg}=...) is not a declared "
                                f"schema field; it would never reach the commons",
                            )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in var_types
                    ):
                        cls_name = var_types[target.value.id]
                        if target.attr not in schemas[cls_name]:
                            yield self.diag(
                                module,
                                target,
                                f"write to {target.value.id}.{target.attr} has no "
                                f"matching field on {cls_name}; asdict() drops it, "
                                "so the record trail silently loses this data",
                            )
