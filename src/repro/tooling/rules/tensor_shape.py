"""Shape/dtype abstract-interpretation rules over the nn tensor stack.

Both rules run the :mod:`repro.tooling.tensorflow` interpreter over the
kernel modules (``nn/`` plus ``nas/decoder.py`` genome decoding) and
report only *provable* violations:

* ``SHAPE001`` — a statically-provable shape mismatch: ``out=`` buffers
  whose dims provably differ from the result, reshapes that change the
  element count, matmul inner-dim or einsum label conflicts, and
  broadcasts of provably-incompatible constant dims.  Dim arithmetic is
  symbolic (``oh*ow`` proves equal to ``oh*ow`` across statements), and
  a mismatch is reported only when the difference is provably nonzero
  under the positive-dims assumption, so every finding is real.
* ``SHAPE002`` — dtype widening/narrowing that escapes the
  ``nn/dtype.py`` policy seam: mixing concrete float widths in one
  ufunc/matmul/einsum, or an ``out=``/``copyto`` destination whose
  concrete float width differs from the result's.  The policy module
  itself is the one place allowed to convert.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable

from repro.tooling.context import ModuleContext
from repro.tooling.diagnostics import Diagnostic, RelatedLocation
from repro.tooling.rules import BaseRule, register
from repro.tooling.tensorflow import module_facts

__all__ = ["ShapeMismatchRule", "DtypePolicyEscapeRule", "TENSOR_SCOPE"]

#: Modules the abstract interpreter covers (the in-place kernel stack).
TENSOR_SCOPE = ("nn/", "nas/decoder.py")

_POLICY_FILE = "nn/dtype.py"


def _related_def(module: ModuleContext, facts) -> RelatedLocation:
    return RelatedLocation(
        path=module.display_path,
        line=facts.node.lineno,
        col=facts.node.col_offset,
        note=f"in {facts.qualname}",
    )


@register
class ShapeMismatchRule(BaseRule):
    rule_id = "SHAPE001"
    category = "tensor-shapes"
    scope = "project"
    description = (
        "statically-provable tensor shape mismatch in layer wiring, out= "
        "buffers, reshape, matmul or einsum"
    )
    doc = (
        "no statically-provable shape mismatches in the nn kernel stack: the "
        "abstract interpreter propagates symbolic `(N, C, H, W)` dims through "
        "`nn/` and `nas/decoder.py` and flags `out=` buffers, reshapes, "
        "matmul/einsum operands and broadcasts whose dims provably differ"
    )

    def applies_to(self, module: ModuleContext) -> bool:
        return module.in_location(*TENSOR_SCOPE)

    def check(self, module: ModuleContext) -> Iterable[Diagnostic]:
        for facts in module_facts(module).functions:
            for node, message in facts.shape_findings:
                yield dataclasses.replace(
                    self.diag(module, node, f"{message} (in {facts.qualname})"),
                    related=_related_def(module, facts),
                )


@register
class DtypePolicyEscapeRule(BaseRule):
    rule_id = "SHAPE002"
    category = "tensor-shapes"
    scope = "project"
    description = (
        "dtype widening/narrowing that escapes the nn/dtype.py policy seam "
        "(mixed float widths or mismatched out= destination)"
    )
    doc = (
        "no dtype conversions outside the `nn/dtype.py` policy seam: flags "
        "arithmetic mixing concrete float widths and `out=`/`copyto` "
        "destinations whose float width provably differs from the result"
    )

    def applies_to(self, module: ModuleContext) -> bool:
        return module.in_location(*TENSOR_SCOPE) and not module.in_location(
            _POLICY_FILE
        )

    def check(self, module: ModuleContext) -> Iterable[Diagnostic]:
        for facts in module_facts(module).functions:
            for node, message in facts.dtype_findings:
                yield dataclasses.replace(
                    self.diag(module, node, f"{message} (in {facts.qualname})"),
                    related=_related_def(module, facts),
                )
