"""Suppression hygiene: every ``noqa`` must carry a justification.

``SUP001`` — diagnostics can be silenced in place with

    # a4nn: noqa(RULE001) -- why this is intentionally exempt

The justification after ``--`` is mandatory: an unjustified or
malformed suppression, or one naming an unknown rule id, is itself an
error and suppresses nothing.  This keeps every exemption in the tree
reviewable — the *reason* lives next to the code, not in tribal memory.

Two ergonomics rules govern *where* a suppression lands:

* **Statement spans** — a noqa on any physical line of a multi-line
  statement (implicit continuation or parenthesized) covers the whole
  statement, so the comment can sit on the readable line rather than
  the exact line the AST anchors the finding to.  Compound statements
  (``if``/``for``/``def``/...) span only their *header*: a noqa on a
  ``def`` line does not blanket the body.
* **Stacked suppressions** — one line may carry several markers
  (``# a4nn: noqa(A) -- x  # a4nn: noqa(B) -- y``), each with its own
  justification.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.tooling.context import ModuleContext
from repro.tooling.diagnostics import Diagnostic
from repro.tooling.rules import BaseRule, register

__all__ = [
    "SuppressionHygieneRule",
    "parse_suppressions",
    "statement_spans",
    "suppressed_lines",
]

#: One "a4nn: noqa(...)" marker; group 1 = rule list, group 2 = justification.
#: The justification runs until the next ``#`` (a stacked marker) or EOL.
NOQA_RE = re.compile(
    r"#\s*a4nn:\s*noqa\s*\(([^)]*)\)\s*(?:--\s*((?:[^#]*?\S)?))?\s*(?=#|$)"
)
#: Anything mentioning the marker at all, to catch malformed attempts.
NOQA_HINT_RE = re.compile(r"#\s*a4nn:\s*noqa\b")


def parse_suppressions(
    module: ModuleContext, known_ids: set[str]
) -> tuple[dict[int, set[str]], list[tuple[int, int, str]]]:
    """Extract valid suppressions and problems from a module's comments.

    Returns ``(valid, problems)`` where ``valid`` maps line number to
    the rule ids suppressed on that line, and each problem is a
    ``(line, col, message)`` triple for a ``SUP001`` diagnostic.  A
    comment may stack several markers; each is validated independently.
    """
    valid: dict[int, set[str]] = {}
    problems: list[tuple[int, int, str]] = []
    for line, col, text in module.comments():
        matched_starts: set[int] = set()
        for match in NOQA_RE.finditer(text):
            matched_starts.add(match.start())
            at_col = col + match.start()
            ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
            justification = match.group(2)
            if not ids:
                problems.append((line, at_col, "suppression names no rule ids"))
                continue
            unknown = sorted(ids - known_ids)
            if unknown:
                problems.append(
                    (line, at_col, f"suppression names unknown rule id(s): {', '.join(unknown)}")
                )
                continue
            if not justification:
                problems.append(
                    (
                        line,
                        at_col,
                        f"suppression of {', '.join(sorted(ids))} lacks a justification; "
                        "append ' -- <reason>' (unjustified suppressions suppress nothing)",
                    )
                )
                continue
            valid.setdefault(line, set()).update(ids)
        # hints that no well-formed marker consumed are malformed attempts
        for hint in NOQA_HINT_RE.finditer(text):
            if hint.start() not in matched_starts:
                problems.append(
                    (
                        line,
                        col + hint.start(),
                        "malformed suppression; use '# a4nn: noqa(RULE-ID) -- reason'",
                    )
                )
    return valid, problems


_COMPOUND = (
    ast.If,
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.With,
    ast.AsyncWith,
    ast.Try,
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.ClassDef,
)


def statement_spans(tree: ast.AST) -> dict[int, tuple[int, int]]:
    """Map each physical line to the span of its innermost statement.

    Simple statements span ``lineno..end_lineno`` (so a noqa anywhere in
    a parenthesized or backslash-continued statement covers it all);
    compound statements span only their header — from ``lineno`` to the
    line before their first child statement.  ``ast.walk`` visits outer
    statements before inner ones, so inner assignments win on shared
    lines.
    """
    spans: dict[int, tuple[int, int]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, (ast.stmt, ast.excepthandler)):
            continue
        end = node.end_lineno or node.lineno
        if isinstance(node, _COMPOUND + (ast.excepthandler,)):
            children: list[ast.stmt] = []
            for attr in ("body", "orelse", "finalbody"):
                children.extend(getattr(node, attr, None) or [])
            children.extend(getattr(node, "handlers", None) or [])
            first_child = min((c.lineno for c in children), default=end + 1)
            end = max(node.lineno, first_child - 1)
        span = (node.lineno, end)
        for line in range(span[0], span[1] + 1):
            spans[line] = span
    return spans


def suppressed_lines(
    module: ModuleContext, known_ids: set[str]
) -> dict[int, set[str]]:
    """Per-line suppressed rule ids, expanded over statement spans.

    A valid noqa on line ``N`` suppresses the named rules on every line
    of the statement containing ``N`` (or just ``N`` when the comment
    stands alone between statements).
    """
    valid, _ = parse_suppressions(module, known_ids)
    if not valid:
        return {}
    spans = statement_spans(module.tree)
    effective: dict[int, set[str]] = {}
    for line, ids in valid.items():
        start, end = spans.get(line, (line, line))
        for covered in range(start, end + 1):
            effective.setdefault(covered, set()).update(ids)
    return effective


@register
class SuppressionHygieneRule(BaseRule):
    rule_id = "SUP001"
    category = "suppression"
    doc = (
        "every `# a4nn: noqa(RULE)` carries a ` -- reason` justification; "
        "malformed, unknown-id, or unjustified suppressions are themselves "
        "errors and suppress nothing"
    )
    description = "a4nn: noqa suppression that is malformed, unknown, or unjustified"

    def check(self, module: ModuleContext) -> Iterable[Diagnostic]:
        from repro.tooling.rules import rule_ids

        _, problems = parse_suppressions(module, set(rule_ids()))
        for line, col, message in problems:
            yield Diagnostic(
                path=module.display_path,
                line=line,
                col=col,
                rule_id=self.rule_id,
                severity=self.severity,
                message=message,
            )
