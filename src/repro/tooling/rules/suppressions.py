"""Suppression hygiene: every ``noqa`` must carry a justification.

``SUP001`` — diagnostics can be silenced in place with

    # a4nn: noqa(RULE001) -- why this is intentionally exempt

The justification after ``--`` is mandatory: an unjustified or
malformed suppression, or one naming an unknown rule id, is itself an
error and suppresses nothing.  This keeps every exemption in the tree
reviewable — the *reason* lives next to the code, not in tribal memory.
"""

from __future__ import annotations

import re
from typing import Iterable

from repro.tooling.context import ModuleContext
from repro.tooling.diagnostics import Diagnostic
from repro.tooling.rules import BaseRule, register

__all__ = ["SuppressionHygieneRule", "parse_suppressions"]

#: Matches "a4nn: noqa(...)" comments; group 1 = rule list, group 2 = justification.
NOQA_RE = re.compile(
    r"#\s*a4nn:\s*noqa\s*\(([^)]*)\)\s*(?:--\s*(.*\S))?\s*$"
)
#: Anything mentioning the marker at all, to catch malformed attempts.
NOQA_HINT_RE = re.compile(r"#\s*a4nn:\s*noqa\b")


def parse_suppressions(
    module: ModuleContext, known_ids: set[str]
) -> tuple[dict[int, set[str]], list[tuple[int, int, str]]]:
    """Extract valid suppressions and problems from a module's comments.

    Returns ``(valid, problems)`` where ``valid`` maps line number to
    the rule ids suppressed on that line, and each problem is a
    ``(line, col, message)`` triple for a ``SUP001`` diagnostic.
    """
    valid: dict[int, set[str]] = {}
    problems: list[tuple[int, int, str]] = []
    for line, col, text in module.comments():
        if not NOQA_HINT_RE.search(text):
            continue
        match = NOQA_RE.search(text)
        if match is None:
            problems.append(
                (line, col, "malformed suppression; use '# a4nn: noqa(RULE-ID) -- reason'")
            )
            continue
        ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
        justification = match.group(2)
        if not ids:
            problems.append((line, col, "suppression names no rule ids"))
            continue
        unknown = sorted(ids - known_ids)
        if unknown:
            problems.append(
                (line, col, f"suppression names unknown rule id(s): {', '.join(unknown)}")
            )
            continue
        if not justification:
            problems.append(
                (
                    line,
                    col,
                    f"suppression of {', '.join(sorted(ids))} lacks a justification; "
                    "append ' -- <reason>' (unjustified suppressions suppress nothing)",
                )
            )
            continue
        valid.setdefault(line, set()).update(ids)
    return valid, problems


@register
class SuppressionHygieneRule(BaseRule):
    rule_id = "SUP001"
    category = "suppression"
    description = "a4nn: noqa suppression that is malformed, unknown, or unjustified"

    def check(self, module: ModuleContext) -> Iterable[Diagnostic]:
        from repro.tooling.rules import rule_ids

        _, problems = parse_suppressions(module, set(rule_ids()))
        for line, col, message in problems:
            yield Diagnostic(
                path=module.display_path,
                line=line,
                col=col,
                rule_id=self.rule_id,
                severity=self.severity,
                message=message,
            )
