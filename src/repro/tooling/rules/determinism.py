"""Determinism rules: RNG and wall-clock access discipline.

A4NN's record trails are only replayable if every stochastic draw comes
from the seed-derived streams in :mod:`repro.utils.rng` and every
timestamp comes from :mod:`repro.utils.timing`.  These rules make those
invariants mechanical:

* ``DET001`` — no global-state or entropy-seeded RNG outside
  ``utils/rng.py``.  The legacy ``np.random.*`` module functions share
  hidden global state (one consumer perturbs every other), and
  ``np.random.default_rng()`` *without* a seed draws OS entropy, so the
  same run can never be replayed.  Seeded constructions such as
  ``np.random.default_rng(0)`` are allowed.
* ``DET002`` — no direct wall-clock reads outside ``utils/timing.py``.
  Clock values leaking into engine/workflow/lineage state make record
  trails differ across replays; all timing must flow through
  :class:`~repro.utils.timing.Stopwatch`.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.tooling.context import ModuleContext
from repro.tooling.diagnostics import Diagnostic
from repro.tooling.rules import BaseRule, dotted_name, register

__all__ = ["GlobalRngRule", "WallClockRule"]

# np.random attributes that are *not* violations: constructing explicit
# generator objects is exactly what utils/rng.py hands out.
_ALLOWED_NP_RANDOM = {"Generator", "PCG64", "PCG64DXSM", "Philox", "SFC64", "SeedSequence", "BitGenerator"}

_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "date.today",
}


def _is_np_random(chain: str) -> bool:
    return chain.startswith(("np.random.", "numpy.random."))


@register
class GlobalRngRule(BaseRule):
    rule_id = "DET001"
    category = "determinism"
    description = (
        "global-state or unseeded RNG outside utils/rng.py "
        "(np.random.* module functions, bare np.random.default_rng(), stdlib random)"
    )

    def applies_to(self, module: ModuleContext) -> bool:
        return not module.in_location("utils/rng.py")

    def check(self, module: ModuleContext) -> Iterable[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_name(node.func)
            if chain is None:
                continue
            if _is_np_random(chain):
                tail = chain.split(".", 2)[2]
                if tail in _ALLOWED_NP_RANDOM:
                    continue
                if tail == "default_rng":
                    if not node.args and not node.keywords:
                        yield self.diag(
                            module,
                            node,
                            "np.random.default_rng() without a seed draws OS entropy; "
                            "derive a generator via repro.utils.rng instead",
                        )
                    continue
                yield self.diag(
                    module,
                    node,
                    f"{chain}() uses numpy's hidden global RNG state; "
                    "derive a generator via repro.utils.rng instead",
                )
            elif chain.startswith("random.") and chain.count(".") == 1:
                yield self.diag(
                    module,
                    node,
                    f"{chain}() uses the stdlib global RNG; "
                    "derive a numpy generator via repro.utils.rng instead",
                )


@register
class WallClockRule(BaseRule):
    rule_id = "DET002"
    category = "determinism"
    description = "direct wall-clock read outside utils/timing.py"

    def applies_to(self, module: ModuleContext) -> bool:
        return not module.in_location("utils/timing.py")

    def check(self, module: ModuleContext) -> Iterable[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_name(node.func)
            if chain in _CLOCK_CALLS:
                yield self.diag(
                    module,
                    node,
                    f"{chain}() reads the wall clock directly; use "
                    "repro.utils.timing (Stopwatch) so replays stay deterministic",
                )
