"""Determinism rules: RNG and wall-clock access discipline.

A4NN's record trails are only replayable if every stochastic draw comes
from the seed-derived streams in :mod:`repro.utils.rng` and every
timestamp comes from :mod:`repro.utils.timing`.  These rules make those
invariants mechanical:

* ``DET001`` — no global-state or entropy-seeded RNG outside
  ``utils/rng.py``.  The legacy ``np.random.*`` module functions share
  hidden global state (one consumer perturbs every other), and
  ``np.random.default_rng()`` *without* a seed draws OS entropy, so the
  same run can never be replayed.  Seeded constructions such as
  ``np.random.default_rng(0)`` are allowed.
* ``DET002`` — no direct wall-clock reads outside ``utils/timing.py``.
  Clock values leaking into engine/workflow/lineage state make record
  trails differ across replays; all timing must flow through
  :class:`~repro.utils.timing.Stopwatch`.
"""

from __future__ import annotations

import ast
from typing import Iterable

import dataclasses

from repro.tooling.context import ModuleContext
from repro.tooling.dataflow import iter_unseeded_rng_calls
from repro.tooling.diagnostics import Diagnostic, Fix
from repro.tooling.rules import BaseRule, dotted_name, register

__all__ = ["GlobalRngRule", "WallClockRule"]

_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "date.today",
}


@register
class GlobalRngRule(BaseRule):
    rule_id = "DET001"
    category = "determinism"
    doc = (
        "no global/unseeded RNG (`np.random.*`, `random.*`) outside `utils/rng.py` "
        "— seeded runs must replay bit-exactly"
    )
    description = (
        "global-state or unseeded RNG outside utils/rng.py "
        "(np.random.* module functions, bare np.random.default_rng(), stdlib random)"
    )

    def applies_to(self, module: ModuleContext) -> bool:
        return not module.in_location("utils/rng.py")

    def check(self, module: ModuleContext) -> Iterable[Diagnostic]:
        # detection is shared with the cross-file DET003 flow rule
        # (repro.tooling.dataflow) so the two packs cannot drift
        for node, what in iter_unseeded_rng_calls(module.tree):
            fix = None
            if "default_rng" in what and node.end_lineno is not None:
                # seedless default_rng() has a mechanical replacement
                fix = Fix(
                    start=(node.lineno, node.col_offset),
                    end=(node.end_lineno, node.end_col_offset),
                    replacement="fallback_rng()",
                    description="replace seedless default_rng() with fallback_rng()",
                    requires_import="from repro.utils.rng import fallback_rng",
                )
            yield dataclasses.replace(
                self.diag(
                    module,
                    node,
                    f"{what}; derive a generator via repro.utils.rng instead",
                ),
                fix=fix,
            )


@register
class WallClockRule(BaseRule):
    rule_id = "DET002"
    category = "determinism"
    doc = (
        "no wall clock (`time.time`, `datetime.now`, ...) outside `utils/timing.py` "
        "— timing flows through one mockable seam"
    )
    description = "direct wall-clock read outside utils/timing.py"

    def applies_to(self, module: ModuleContext) -> bool:
        return not module.in_location("utils/timing.py")

    def check(self, module: ModuleContext) -> Iterable[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_name(node.func)
            if chain in _CLOCK_CALLS:
                yield self.diag(
                    module,
                    node,
                    f"{chain}() reads the wall clock directly; use "
                    "repro.utils.timing (Stopwatch) so replays stay deterministic",
                )
