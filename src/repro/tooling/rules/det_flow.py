"""Cross-file determinism rules: RNG dataflow into the evaluation path.

DET001 polices unseeded RNG *syntactically*, one file at a time.  These
rules use the project call graph (:mod:`repro.tooling.graph`) to catch
what that structurally cannot see:

* ``DET003`` — an unseeded/global-state RNG call inside any function
  *transitively reachable* from an evaluator or genome-operator entry
  point (everything defined in ``nas/evaluation.py`` /
  ``nas/operators.py``).  A helper three calls below
  ``TrainingEvaluator.evaluate`` that draws OS entropy breaks bit-exact
  replay just as surely as one inside it — and a DET001 suppression in
  the helper's module does not make the *flow* acceptable.  The
  diagnostic anchors at the RNG call and carries the entry point as a
  related location, so a justified ``noqa(DET003)`` at either end of
  the edge silences it.
* ``DET004`` — an RNG object (seeded or not) parked on a module global,
  project-wide.  Module-level generators are shared mutable state:
  import order changes draw order, spawned workers re-import and
  silently fork the stream, and two consumers perturb each other.
  PERF002 already bans this in the worker-entry modules; DET004
  generalizes it everywhere except ``utils/rng.py`` (whose whole job is
  owning generator state).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.tooling.context import ModuleContext
from repro.tooling.dataflow import (
    iter_unseeded_rng_calls,
    reach_from,
    render_chain,
    rng_factory_call,
)
from repro.tooling.diagnostics import Diagnostic, RelatedLocation
from repro.tooling.graph import build_graph
from repro.tooling.rules import BaseRule, register

__all__ = ["RngFlowRule", "ModuleGlobalRngRule", "EVAL_ENTRY_MODULES"]

#: Modules whose functions are the evaluation-path entry points.
EVAL_ENTRY_MODULES = ["repro.nas.evaluation", "repro.nas.operators"]


@register
class RngFlowRule(BaseRule):
    rule_id = "DET003"
    category = "determinism"
    scope = "project"
    description = (
        "unseeded/global RNG in a function transitively reachable from an "
        "evaluator or genome-operator entry point"
    )
    doc = (
        "no unseeded/global RNG in any function *transitively reachable* (call "
        "graph) from `nas/evaluation.py` / `nas/operators.py` entry points — an "
        "entropy draw three calls below `evaluate()` breaks replay exactly like "
        "one inside it; suppressible at either end of the flow edge"
    )

    def applies_to(self, module: ModuleContext) -> bool:
        # project-wide pass: run exactly once per invocation, anchored to
        # the first scanned module (diagnostics carry their own paths)
        return module.project is not None and module.project.modules[0] is module

    def check(self, module: ModuleContext) -> Iterable[Diagnostic]:
        graph = build_graph(module.project)
        chains = reach_from(graph, EVAL_ENTRY_MODULES, name_matches=True)
        for qualname, chain in sorted(chains.items()):
            info = graph.functions[qualname]
            if info.module == "repro.utils.rng":
                continue
            owner = graph.modules[info.module].context
            entry_info = graph.functions[chain[0]]
            entry_ctx = graph.modules[entry_info.module].context
            for node, what in iter_unseeded_rng_calls(info.node):
                yield Diagnostic(
                    path=owner.display_path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule_id=self.rule_id,
                    severity=self.severity,
                    message=(
                        f"{what} flows into the evaluation path: reachable from "
                        f"entry point {chain[0]} via {render_chain(chain)}; "
                        "derive the generator from the seed-keyed streams in "
                        "repro.utils.rng"
                    ),
                    related=RelatedLocation(
                        path=entry_ctx.display_path,
                        line=entry_info.node.lineno,
                        col=entry_info.node.col_offset,
                        note=f"evaluation-path entry point {chain[0]}",
                    ),
                )


def _global_stores(func: ast.AST) -> Iterable[tuple[str, ast.AST]]:
    """(name, value) for assignments to ``global``-declared names in ``func``."""
    declared: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            declared.update(node.names)
    if not declared:
        return
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id in declared:
                    yield target.id, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name) and node.target.id in declared:
                yield node.target.id, node.value


@register
class ModuleGlobalRngRule(BaseRule):
    rule_id = "DET004"
    category = "determinism"
    description = "RNG object stored on a module global (shared mutable stream state)"
    doc = (
        "no RNG objects (seeded or not) stored on module globals anywhere outside "
        "`utils/rng.py` — module-level generators are shared mutable state that "
        "forks silently across spawned workers and couples unrelated consumers' "
        "draw order"
    )

    def applies_to(self, module: ModuleContext) -> bool:
        return not module.in_location("utils/rng.py")

    def check(self, module: ModuleContext) -> Iterable[Diagnostic]:
        for stmt in module.tree.body:
            if isinstance(stmt, ast.Assign):
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                value = stmt.value
            else:
                continue
            chain = rng_factory_call(value)
            if chain is not None:
                yield self.diag(
                    module,
                    value,
                    f"module-level {chain}(...) parks generator state on the "
                    "module: every importer (and every spawned worker) shares "
                    "or silently forks the stream; derive generators per "
                    "consumer from repro.utils.rng",
                )
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for name, value in _global_stores(node) or ():
                    chain = rng_factory_call(value)
                    if chain is not None:
                        yield self.diag(
                            module,
                            value,
                            f"storing {chain}(...) into module global {name!r} "
                            "creates shared mutable stream state; derive "
                            "generators per consumer from repro.utils.rng",
                        )
