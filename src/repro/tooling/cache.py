"""Incremental per-file analysis cache for ``a4nn check``.

A warm run must re-parse only the files whose *content* changed — on a
tree the size of ``src/`` the parse + file-scope-rule pass dominates
lint time, and the daemon-facing ROADMAP items will run the checker far
more often than the tree changes.

Each cache entry is keyed by the BLAKE2b hash of the file's bytes plus
an engine/ruleset fingerprint, and stores everything a warm run needs
to skip the parse:

* the pickled AST (``ast`` trees pickle cleanly and rebuild much faster
  than re-parsing),
* the comment-token list (so suppression parsing skips re-tokenizing),
* the diagnostics produced by **file-scoped** rules.

Project-scoped rules (the cross-file flow packs, registry checks) are
*never* cached — they re-run each invocation against the cached ASTs,
because their verdict on an unchanged file can legitimately change when
a sibling file changes.  The fingerprint folds in the participating
rule ids and a cache-format version, so adding a rule or upgrading the
engine invalidates stale entries wholesale.
"""

from __future__ import annotations

import hashlib
import pickle
import sys
from dataclasses import dataclass
from pathlib import Path

from repro import __version__ as _TOOLING_VERSION
from repro.tooling.diagnostics import Diagnostic

__all__ = ["AnalysisCache", "CachedModule", "DEFAULT_CACHE_DIR", "CACHE_FORMAT"]

DEFAULT_CACHE_DIR = ".a4nn-cache"

#: Bump when the entry layout changes; folded into every entry key.
CACHE_FORMAT = 1


@dataclass
class CachedModule:
    """One warm-cache hit: the artifacts of a previously analyzed file."""

    content_hash: str
    tree: object
    comments: list
    file_diagnostics: list[Diagnostic]


class AnalysisCache:
    """Content-hash-keyed store under ``.a4nn-cache/``.

    Entries are one pickle per file, named by the hash of the file's
    *path* (so renames miss naturally) and validated by content hash +
    ruleset fingerprint on read.  Corrupt or unreadable entries are
    treated as misses — the cache can always be deleted wholesale.
    """

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR, *, fingerprint: str = "") -> None:
        self.root = Path(root)
        self.fingerprint = fingerprint
        self.hits = 0
        self.misses = 0

    @staticmethod
    def ruleset_fingerprint(rules, *, python_version: tuple | None = None) -> str:
        """Stable digest of the engine + participating file-scoped rule ids.

        Besides the rule ids, the payload folds in the running Python
        version and the tooling release: pickled ASTs are not portable
        across interpreter versions (node layouts change), and a rule
        implementation can change behaviour without changing its id —
        either mismatch must force a cold re-parse, not a poisoned hit.
        ``python_version`` (an ``(major, minor, micro)`` triple) defaults
        to the running interpreter; tests override it to simulate an
        upgrade.
        """
        if python_version is None:
            python_version = sys.version_info[:3]
        py = ".".join(str(part) for part in python_version)
        ids = sorted(
            f"{r.rule_id}:{type(r).__name__}"
            for r in rules
            if getattr(r, "scope", "file") == "file"
        )
        payload = (
            f"v{CACHE_FORMAT}|py{py}|tooling{_TOOLING_VERSION}|" + "|".join(ids)
        )
        return hashlib.blake2b(payload.encode("utf-8"), digest_size=8).hexdigest()

    def _entry_path(self, display_path: str, content_hash: str) -> Path:
        key = f"{display_path}\x00{content_hash}".encode("utf-8")
        name = hashlib.blake2b(key, digest_size=12).hexdigest()
        return self.root / f"{name}.pkl"

    def lookup(self, display_path: str, content_hash: str) -> CachedModule | None:
        """The cached artifacts, or ``None`` on any mismatch/corruption.

        Entries are keyed on path *and* content hash, so reverting a
        file to previously analyzed content hits its old entry again.
        """
        entry_path = self._entry_path(display_path, content_hash)
        try:
            with entry_path.open("rb") as fh:
                payload = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ImportError):
            self.misses += 1
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("fingerprint") != self.fingerprint
            or payload.get("content_hash") != content_hash
        ):
            self.misses += 1
            return None
        self.hits += 1
        return CachedModule(
            content_hash=content_hash,
            tree=payload["tree"],
            comments=payload["comments"],
            file_diagnostics=payload["diagnostics"],
        )

    def store(
        self,
        display_path: str,
        content_hash: str,
        tree: object,
        comments: list,
        file_diagnostics: list[Diagnostic],
    ) -> None:
        """Persist one file's artifacts; IO errors are non-fatal."""
        payload = {
            "fingerprint": self.fingerprint,
            "content_hash": content_hash,
            "tree": tree,
            "comments": comments,
            "diagnostics": list(file_diagnostics),
        }
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            entry = self._entry_path(display_path, content_hash)
            tmp = entry.with_suffix(".tmp")
            with tmp.open("wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            tmp.replace(entry)
        except OSError:
            pass
