"""Runtime numerical sanitizer for training runs.

Opt-in guard rails around :class:`~repro.nn.network.Network` and
:class:`~repro.nn.trainer.Trainer`: every forward activation, backward
gradient, parameter gradient, and loss value is asserted finite, and
each layer's actual output shape is checked against its declared
``output_shape`` contract.  A violation raises a structured
:class:`NumericalFault` that the workflow orchestrator records into the
model's lineage record — the alternative is a silently corrupted
fitness history ``H``, which poisons the prediction engine's curve fit
(the failure mode both PEng4NN and Baker et al. warn about).

The hooks are duck-typed: ``nn/`` never imports this module.  A
network/trainer with ``sanitizer = None`` (the default) pays one
``is None`` check per call site and nothing else.
"""

from __future__ import annotations

import numpy as np

from repro.utils.logging import get_logger

__all__ = ["NumericalFault", "Sanitizer", "WriteGuard"]

_LOG = get_logger("tooling.sanitizer")


class NumericalFault(RuntimeError):
    """A numerical invariant was violated during training.

    Attributes
    ----------
    kind:
        One of ``nonfinite-loss``, ``nonfinite-activation``,
        ``nonfinite-gradient``, ``nonfinite-parameter-gradient``,
        ``shape-mismatch``.
    model:
        Identifier of the model under training (network name).
    epoch:
        1-based epoch in which the fault fired (``None`` outside
        training).
    layer:
        Index of the offending layer, when applicable.
    detail:
        Free-form numeric context (counts of NaN/inf, shapes, ...).
    """

    def __init__(
        self,
        kind: str,
        message: str,
        *,
        model: str | None = None,
        epoch: int | None = None,
        layer: int | None = None,
        detail: dict | None = None,
    ) -> None:
        super().__init__(message)
        self.kind = kind
        self.model = model
        self.epoch = epoch
        self.layer = layer
        self.detail = dict(detail or {})

    def __reduce__(self):
        # exceptions pickle via their args by default, which would drop
        # the keyword attributes; the process-parallel evaluation
        # backend transports faults between worker and parent
        return (
            _rebuild_numerical_fault,
            (self.kind, str(self), self.model, self.epoch, self.layer, self.detail),
        )

    def to_dict(self) -> dict:
        """JSON-able snapshot for lineage records."""
        return {
            "kind": self.kind,
            "message": str(self),
            "model": self.model,
            "epoch": self.epoch,
            "layer": self.layer,
            "detail": self.detail,
        }


def _rebuild_numerical_fault(kind, message, model, epoch, layer, detail):
    """Unpickle helper for :class:`NumericalFault` (see its ``__reduce__``)."""
    return NumericalFault(
        kind, message, model=model, epoch=epoch, layer=layer, detail=detail
    )


def _nonfinite_detail(array: np.ndarray) -> dict:
    finite = np.isfinite(array)
    return {
        "n_nan": int(np.isnan(array).sum()),
        "n_inf": int(np.isinf(array).sum()),
        "n_total": int(array.size),
        "n_finite": int(finite.sum()),
    }


class Sanitizer:
    """Per-model numerical watchdog attached to a network and its trainer.

    Parameters
    ----------
    model:
        Name reported in faults (usually the network name).
    check_shapes:
        Also verify each layer's actual output shape against its
        declared :meth:`~repro.nn.layers.base.Layer.output_shape`.

    Notes
    -----
    The trainer advances :attr:`epoch` at the start of every epoch so
    faults carry their training position.
    """

    def __init__(self, model: str | None = None, *, check_shapes: bool = True) -> None:
        self.model = model
        self.check_shapes = bool(check_shapes)
        self.epoch: int | None = None
        self.n_checks = 0

    def watch(self, network) -> "Sanitizer":
        """Attach to a network (its forward/backward loops consult us)."""
        network.sanitizer = self
        if self.model is None:
            self.model = getattr(network, "name", None)
        return self

    # -- hook points (called by Network/Trainer when attached) -----------------

    def after_layer_forward(self, index: int, layer, x_in: np.ndarray, x_out: np.ndarray) -> None:
        """Validate one layer's forward output (finiteness + shape contract)."""
        self.n_checks += 1
        if not np.all(np.isfinite(x_out)):
            raise NumericalFault(
                "nonfinite-activation",
                f"layer {index} ({type(layer).__name__}) produced non-finite "
                f"activations at epoch {self.epoch}",
                model=self.model,
                epoch=self.epoch,
                layer=index,
                detail=_nonfinite_detail(x_out),
            )
        if self.check_shapes:
            try:
                expected = tuple(layer.output_shape(tuple(x_in.shape[1:])))
            except Exception as exc:
                # a layer without shape introspection is a lint matter, not
                # a runtime fault; keep training but leave a trace
                _LOG.debug("skipping shape check for layer %d: %s", index, exc)
                return
            actual = tuple(x_out.shape[1:])
            if expected != actual:
                raise NumericalFault(
                    "shape-mismatch",
                    f"layer {index} ({type(layer).__name__}) declared output shape "
                    f"{expected} but produced {actual}",
                    model=self.model,
                    epoch=self.epoch,
                    layer=index,
                    detail={"expected": list(expected), "actual": list(actual)},
                )

    def after_layer_backward(self, index: int, layer, grad: np.ndarray) -> None:
        """Validate one layer's input-gradient on the way down."""
        self.n_checks += 1
        if not np.all(np.isfinite(grad)):
            raise NumericalFault(
                "nonfinite-gradient",
                f"layer {index} ({type(layer).__name__}) back-propagated "
                f"non-finite gradients at epoch {self.epoch}",
                model=self.model,
                epoch=self.epoch,
                layer=index,
                detail=_nonfinite_detail(grad),
            )

    def check_loss(self, value: float) -> None:
        """Assert the scalar training loss is finite."""
        self.n_checks += 1
        if not np.isfinite(value):
            raise NumericalFault(
                "nonfinite-loss",
                f"training loss became {value!r} at epoch {self.epoch}",
                model=self.model,
                epoch=self.epoch,
                detail={"loss": repr(value)},
            )

    def check_parameter_gradients(self, network) -> None:
        """Assert every parameter gradient is finite before the update."""
        for name, param in network.parameters():
            self.n_checks += 1
            if not np.all(np.isfinite(param.grad)):
                raise NumericalFault(
                    "nonfinite-parameter-gradient",
                    f"parameter {name!r} accumulated non-finite gradients "
                    f"at epoch {self.epoch}",
                    model=self.model,
                    epoch=self.epoch,
                    detail={"parameter": name, **_nonfinite_detail(param.grad)},
                )


_GUARD_TRIP_MARKERS = ("read-only", "read only", "not writeable", "writeable")


class WriteGuard:
    """Runtime aliasing validator: borrowed tensors become read-only.

    The static ALIAS rules prove arena scratch and ``out=`` targets stay
    disjoint from live read operands — but only for the calls the
    abstract interpreter understands.  This guard backstops the rest at
    runtime: around every layer call the borrowed inter-layer tensor is
    flipped read-only (``arr.flags.writeable = False``), so a layer that
    writes its *input* (the bug class ALIAS001/EFF001 police statically)
    raises immediately instead of silently corrupting a neighbour's
    buffer.  The flip touches only flags — never values — so a guarded
    run that does not trip is byte-identical to an unguarded one.

    Trips surface as :class:`NumericalFault` (``kind="guarded-write"``)
    and flow through the same fault → lineage path as numerical faults.

    Scope: the guard sits at the :class:`~repro.nn.network.Network`
    layer seam; writes *inside* a composite layer (e.g. between a
    phase block's internal nodes) are not covered — that is the static
    packs' job (DESIGN §13).
    """

    def __init__(self, model: str | None = None) -> None:
        self.model = model
        self.epoch: int | None = None
        self.n_guarded = 0

    def watch(self, network) -> "WriteGuard":
        """Attach to a network (its forward/backward loops consult us)."""
        network.write_guard = self
        if self.model is None:
            self.model = getattr(network, "name", None)
        return self

    # -- hook points (called by Network when attached) -------------------------

    def guard_forward(self, index: int, layer, x: np.ndarray, *, training: bool):
        """Run ``layer.forward`` with the borrowed input read-only."""
        return self._guarded(index, layer, "forward", x, lambda: layer.forward(x, training=training))

    def guard_backward(self, index: int, layer, grad: np.ndarray):
        """Run ``layer.backward`` with the borrowed gradient read-only."""
        return self._guarded(index, layer, "backward", grad, lambda: layer.backward(grad))

    def _guarded(self, index: int, layer, phase: str, arr: np.ndarray, call):
        restore = bool(arr.flags.writeable)
        if restore:
            arr.flags.writeable = False
        self.n_guarded += 1
        try:
            return call()
        except ValueError as exc:
            text = str(exc)
            if any(marker in text for marker in _GUARD_TRIP_MARKERS):
                raise NumericalFault(
                    "guarded-write",
                    f"layer {index} ({type(layer).__name__}) wrote to its "
                    f"borrowed {phase} input at epoch {self.epoch}; the "
                    "tensor belongs to the upstream layer and reuse would "
                    "clobber it",
                    model=self.model,
                    epoch=self.epoch,
                    layer=index,
                    detail={"phase": phase, "shape": list(arr.shape)},
                ) from exc
            raise
        finally:
            if restore:
                try:
                    arr.flags.writeable = True
                except ValueError:  # view whose base went read-only meanwhile
                    pass
