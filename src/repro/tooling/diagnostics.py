"""Diagnostic model shared by the linter and its rules.

A :class:`Diagnostic` is one finding at one source location, carrying a
stable rule id (``DET001``, ``NUM002``, ...) so findings can be
suppressed, filtered, and tracked across runs.  Renderers produce the
two CLI output formats: human ``file:line:col`` text and a JSON document
for editor/CI integration.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass

__all__ = ["Severity", "Diagnostic", "render_text", "render_json"]


class Severity(enum.Enum):
    """How bad a finding is; only errors fail the check."""

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One linter finding, pinned to a source location.

    Attributes
    ----------
    path:
        Path of the offending file as given to the linter.
    line, col:
        1-based line and 0-based column of the finding.
    rule_id:
        Stable identifier of the rule that produced it.
    severity:
        :class:`Severity` of the finding.
    message:
        Human-readable description of the violation.
    """

    path: str
    line: int
    col: int
    rule_id: str
    severity: Severity
    message: str

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule_id)

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
        }

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity.value} {self.rule_id}: {self.message}"
        )


def render_text(diagnostics: list[Diagnostic]) -> str:
    """The default ``file:line:col: severity RULE: message`` listing."""
    lines = [d.render() for d in sorted(diagnostics, key=Diagnostic.sort_key)]
    n_errors = sum(1 for d in diagnostics if d.severity is Severity.ERROR)
    n_warnings = len(diagnostics) - n_errors
    lines.append(f"{n_errors} error(s), {n_warnings} warning(s)")
    return "\n".join(lines)


def render_json(diagnostics: list[Diagnostic]) -> str:
    """A stable JSON document (``--format=json``)."""
    payload = {
        "diagnostics": [
            d.to_dict() for d in sorted(diagnostics, key=Diagnostic.sort_key)
        ],
        "n_errors": sum(1 for d in diagnostics if d.severity is Severity.ERROR),
        "n_warnings": sum(1 for d in diagnostics if d.severity is Severity.WARNING),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
