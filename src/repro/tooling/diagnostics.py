"""Diagnostic model shared by the linter and its rules.

A :class:`Diagnostic` is one finding at one source location, carrying a
stable rule id (``DET001``, ``NUM002``, ...) so findings can be
suppressed, filtered, and tracked across runs.  Renderers produce the
two CLI output formats: human ``file:line:col`` text and a JSON document
for editor/CI integration.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field

__all__ = [
    "Severity",
    "RelatedLocation",
    "Fix",
    "Diagnostic",
    "render_text",
    "render_json",
    "render_sarif",
]


class Severity(enum.Enum):
    """How bad a finding is; only errors fail the check."""

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class RelatedLocation:
    """The other end of a cross-file flow edge.

    Cross-file rules anchor the primary diagnostic at the *source* site
    (say, the unseeded RNG call) and attach the *sink* end (the
    evaluator entry point it flows into) here.  A justified suppression
    at either end silences the finding.
    """

    path: str
    line: int
    col: int
    note: str = ""

    def to_dict(self) -> dict:
        return {"path": self.path, "line": self.line, "col": self.col, "note": self.note}


@dataclass(frozen=True)
class Fix:
    """A mechanical, span-exact autofix for one diagnostic.

    ``start``/``end`` are ``(line, col)`` pairs (1-based line, 0-based
    col, matching diagnostics); ``replacement`` substitutes the spanned
    text verbatim.  ``requires_import`` names a top-level import
    statement the applier must ensure exists (e.g. the ``fallback_rng``
    import after rewriting a seedless ``default_rng()``).
    """

    start: tuple[int, int]
    end: tuple[int, int]
    replacement: str
    description: str = ""
    requires_import: str | None = None


@dataclass(frozen=True)
class Diagnostic:
    """One linter finding, pinned to a source location.

    Attributes
    ----------
    path:
        Path of the offending file as given to the linter.
    line, col:
        1-based line and 0-based column of the finding.
    rule_id:
        Stable identifier of the rule that produced it.
    severity:
        :class:`Severity` of the finding.
    message:
        Human-readable description of the violation.
    """

    path: str
    line: int
    col: int
    rule_id: str
    severity: Severity
    message: str
    related: RelatedLocation | None = field(default=None, compare=False)
    fix: Fix | None = field(default=None, compare=False)

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule_id)

    def to_dict(self) -> dict:
        payload = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
        }
        if self.related is not None:
            payload["related"] = self.related.to_dict()
        if self.fix is not None:
            payload["fixable"] = True
        return payload

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity.value} {self.rule_id}: {self.message}"
        )


def render_text(diagnostics: list[Diagnostic]) -> str:
    """The default ``file:line:col: severity RULE: message`` listing."""
    lines = [d.render() for d in sorted(diagnostics, key=Diagnostic.sort_key)]
    n_errors = sum(1 for d in diagnostics if d.severity is Severity.ERROR)
    n_warnings = len(diagnostics) - n_errors
    lines.append(f"{n_errors} error(s), {n_warnings} warning(s)")
    return "\n".join(lines)


def render_json(diagnostics: list[Diagnostic]) -> str:
    """A stable JSON document (``--format=json``)."""
    payload = {
        "diagnostics": [
            d.to_dict() for d in sorted(diagnostics, key=Diagnostic.sort_key)
        ],
        "n_errors": sum(1 for d in diagnostics if d.severity is Severity.ERROR),
        "n_warnings": sum(1 for d in diagnostics if d.severity is Severity.WARNING),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_SARIF_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def render_sarif(diagnostics: list[Diagnostic], rules: list | None = None) -> str:
    """A SARIF 2.1.0 document (``--format=sarif``) for CI code-scanning.

    ``rules`` (the registered catalog) populates the tool's rule
    metadata so viewers can show descriptions; results reference rules
    by id.  Columns are converted to SARIF's 1-based convention.
    """
    rule_meta = [
        {
            "id": rule.rule_id,
            "shortDescription": {"text": rule.description},
            "properties": {"category": rule.category},
        }
        for rule in (rules or [])
    ]
    results = []
    for d in sorted(diagnostics, key=Diagnostic.sort_key):
        result = {
            "ruleId": d.rule_id,
            "level": _SARIF_LEVELS[d.severity],
            "message": {"text": d.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": d.path},
                        "region": {"startLine": d.line, "startColumn": d.col + 1},
                    }
                }
            ],
        }
        if d.related is not None:
            result["relatedLocations"] = [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": d.related.path},
                        "region": {
                            "startLine": d.related.line,
                            "startColumn": d.related.col + 1,
                        },
                    },
                    "message": {"text": d.related.note},
                }
            ]
        results.append(result)
    document = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "a4nn",
                        "informationUri": "https://github.com/a4nn/a4nn",
                        "rules": rule_meta,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
