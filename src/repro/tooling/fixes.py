"""Applying autofixes attached to diagnostics (``a4nn check --fix``).

A :class:`~repro.tooling.diagnostics.Fix` is a span-exact replacement —
the rule that produced it computed the span from the AST node it fired
on, so applying it is pure text surgery with no re-inference.  The only
intelligence here is bookkeeping:

* fixes for one file are applied **bottom-up** so earlier spans stay
  valid as later ones change the text;
* identical ``(span, replacement)`` pairs are deduplicated (DET001 and
  DET003 can both fire on the same seedless ``default_rng()``);
* overlapping but non-identical fixes are refused — both are skipped
  and reported, never half-applied;
* a fix carrying ``requires_import`` gets the import inserted after the
  file's last top-level import (deduplicated against existing imports).
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.tooling.diagnostics import Diagnostic, Fix

__all__ = ["FixOutcome", "apply_fixes"]


class FixOutcome:
    """What ``apply_fixes`` did, per file and in total."""

    def __init__(self) -> None:
        self.applied: dict[str, int] = {}
        self.skipped: list[tuple[str, Fix, str]] = []  #: (path, fix, reason)

    @property
    def n_applied(self) -> int:
        return sum(self.applied.values())


def _line_offsets(text: str) -> list[int]:
    offsets = [0]
    for line in text.splitlines(keepends=True):
        offsets.append(offsets[-1] + len(line))
    return offsets


def _to_offset(offsets: list[int], pos: tuple[int, int]) -> int:
    line, col = pos
    return offsets[line - 1] + col


def _insert_import(text: str, import_line: str) -> str:
    """Add ``import_line`` after the last top-level import, once."""
    if any(line.strip() == import_line for line in text.splitlines()):
        return text
    try:
        tree = ast.parse(text)
    except SyntaxError:
        return text
    last_import_line = 0
    for stmt in tree.body:
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            last_import_line = max(last_import_line, stmt.end_lineno or stmt.lineno)
    lines = text.splitlines(keepends=True)
    if last_import_line == 0:
        # no imports: after the module docstring, if any
        if (
            tree.body
            and isinstance(tree.body[0], ast.Expr)
            and isinstance(tree.body[0].value, ast.Constant)
            and isinstance(tree.body[0].value.value, str)
        ):
            last_import_line = tree.body[0].end_lineno or 1
    lines.insert(last_import_line, import_line + "\n")
    return "".join(lines)


def apply_fixes(diagnostics: list[Diagnostic], *, root: str | Path = ".") -> FixOutcome:
    """Apply every attached fix, rewriting files in place."""
    outcome = FixOutcome()
    by_path: dict[str, list[Fix]] = {}
    for diagnostic in diagnostics:
        if diagnostic.fix is not None:
            by_path.setdefault(diagnostic.path, []).append(diagnostic.fix)

    for path, fixes in sorted(by_path.items()):
        file_path = Path(path)
        if not file_path.is_absolute():
            file_path = Path(root) / path
        try:
            text = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            for fix in fixes:
                outcome.skipped.append((path, fix, f"unreadable: {exc}"))
            continue
        offsets = _line_offsets(text)
        # dedupe identical fixes, then order bottom-up
        unique: dict[tuple, Fix] = {}
        for fix in fixes:
            unique.setdefault((fix.start, fix.end, fix.replacement), fix)
        ordered = sorted(
            unique.values(),
            key=lambda f: (_to_offset(offsets, f.start), _to_offset(offsets, f.end)),
            reverse=True,
        )
        applied = 0
        imports_needed: list[str] = []
        last_start = len(text) + 1
        for fix in ordered:
            start = _to_offset(offsets, fix.start)
            end = _to_offset(offsets, fix.end)
            if end > last_start or end < start or end > len(text):
                outcome.skipped.append((path, fix, "overlaps another fix"))
                continue
            text = text[:start] + fix.replacement + text[end:]
            last_start = start
            applied += 1
            if fix.requires_import:
                imports_needed.append(fix.requires_import)
        for import_line in dict.fromkeys(imports_needed):
            text = _insert_import(text, import_line)
        if applied:
            file_path.write_text(text, encoding="utf-8")
            outcome.applied[path] = applied
    return outcome
