"""The XPSI baseline (Olaya et al. 2022): autoencoder features + kNN.

The paper's state-of-the-art comparator (§4.4) trains in a fixed 15 h 27 m
on one V100 and achieves 92 / 99 / 100% validation accuracy on low /
medium / high beam intensities.  This module reproduces the pipeline —
autoencoder feature extraction followed by kNN classification — on the
same simulated datasets A4NN uses, and reports both measured CPU wall
time and a paper-scale wall time mapped through the shared cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.autoencoder import Autoencoder
from repro.baselines.knn import KNNClassifier
from repro.scheduler.costmodel import EpochCostModel
from repro.utils.rng import derive_rng
from repro.utils.timing import Stopwatch
from repro.xfel.dataset import DiffractionDataset

__all__ = ["XPSIConfig", "XPSIResult", "run_xpsi", "PAPER_XPSI_HOURS", "PAPER_XPSI_ACCURACY"]

#: XPSI's fixed single-V100 training time reported by the paper (15 h 27 m).
PAPER_XPSI_HOURS = 15.45

#: XPSI validation accuracy per beam intensity reported by the paper.
PAPER_XPSI_ACCURACY = {"low": 92.0, "medium": 99.0, "high": 100.0}


@dataclass(frozen=True)
class XPSIConfig:
    """XPSI pipeline hyper-parameters."""

    latent_dim: int = 32
    hidden_dim: int = 256
    autoencoder_epochs: int = 25
    k_neighbours: int = 7
    batch_size: int = 32
    seed: int = 7


@dataclass
class XPSIResult:
    """Outcome of one XPSI run on one dataset."""

    intensity: str
    accuracy: float
    measured_seconds: float
    simulated_hours: float
    reconstruction_mse: float
    config: XPSIConfig

    def to_dict(self) -> dict:
        return {
            "intensity": self.intensity,
            "accuracy": self.accuracy,
            "measured_seconds": self.measured_seconds,
            "simulated_hours": self.simulated_hours,
            "reconstruction_mse": self.reconstruction_mse,
        }


def _pipeline_flops(config: XPSIConfig, input_dim: int) -> float:
    """Per-sample forward FLOPs of the autoencoder (encoder + decoder)."""
    return 4.0 * (input_dim * config.hidden_dim + config.hidden_dim * config.latent_dim)


#: Cost-model calibration chosen so the *default* XPSI configuration on
#: the default 32×32 detector maps to the paper's fixed 15.45 h; scaling
#: the pipeline up or down moves the simulated time proportionally.
_CALIBRATION = (
    PAPER_XPSI_HOURS
    * 3600.0
    / (
        EpochCostModel(jitter=0.0).mean_epoch_seconds(_pipeline_flops(XPSIConfig(), 32 * 32))
        * XPSIConfig().autoencoder_epochs
    )
)


def _simulated_hours(config: XPSIConfig, dataset: DiffractionDataset) -> float:
    """Map the pipeline's arithmetic onto paper-scale wall time.

    XPSI is a fixed pipeline — the paper reports the same 15.45 h for
    every intensity — so the simulated time depends only on the
    configuration, not the data, via the same FLOPs→seconds cost model
    the NAS uses (calibrated so the default configuration lands on the
    paper's 15.45 h).
    """
    input_dim = int(np.prod(dataset.input_shape))
    cost = EpochCostModel(jitter=0.0)
    per_epoch = cost.mean_epoch_seconds(_pipeline_flops(config, input_dim))
    return per_epoch * config.autoencoder_epochs * _CALIBRATION / 3600.0


def run_xpsi(dataset: DiffractionDataset, config: XPSIConfig | None = None) -> XPSIResult:
    """Train and evaluate the XPSI pipeline on one dataset."""
    config = config or XPSIConfig()
    rng = derive_rng(config.seed, "xpsi", dataset.intensity.label)

    clock = Stopwatch().start()
    autoencoder = Autoencoder(
        input_dim=int(np.prod(dataset.input_shape)),
        hidden_dim=config.hidden_dim,
        latent_dim=config.latent_dim,
        rng=rng,
    )
    autoencoder.fit(
        dataset.x_train, epochs=config.autoencoder_epochs, batch_size=config.batch_size
    )
    features_train = autoencoder.encode(dataset.x_train)
    features_test = autoencoder.encode(dataset.x_test)

    knn = KNNClassifier(k=config.k_neighbours).fit(features_train, dataset.y_train)
    accuracy = knn.score_percent(features_test, dataset.y_test)
    clock.stop()

    flat_test = dataset.x_test.reshape(len(dataset.x_test), -1)
    recon = autoencoder.reconstruct(dataset.x_test)
    rescaled = Autoencoder._rescale(flat_test)
    mse = float(np.mean((recon - rescaled) ** 2))

    return XPSIResult(
        intensity=dataset.intensity.label,
        accuracy=accuracy,
        measured_seconds=clock.total,
        simulated_hours=_simulated_hours(config, dataset),
        reconstruction_mse=mse,
        config=config,
    )
