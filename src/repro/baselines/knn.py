"""k-nearest-neighbour classifier (XPSI's decision stage).

Pure-NumPy kNN with chunked distance computation so memory stays
bounded on large query sets.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import ensure_positive

__all__ = ["KNNClassifier"]


class KNNClassifier:
    """Majority-vote kNN on Euclidean distance.

    Ties are broken toward the smaller class label (deterministic).
    """

    def __init__(self, k: int = 5) -> None:
        ensure_positive(k, "k")
        self.k = int(k)
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "KNNClassifier":
        """Memorize the training set."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y)
        if x.ndim != 2:
            raise ValueError(f"x must be (n, d), got {x.shape}")
        if y.shape != (x.shape[0],):
            raise ValueError(f"y shape {y.shape} mismatches x rows {x.shape[0]}")
        if x.shape[0] < self.k:
            raise ValueError(f"need >= k={self.k} training points, got {x.shape[0]}")
        self._x = x
        self._y = y.astype(np.int64)
        return self

    def predict(self, x: np.ndarray, *, chunk: int = 512) -> np.ndarray:
        """Predicted labels for each query row."""
        if self._x is None or self._y is None:
            raise RuntimeError("fit() must be called before predict()")
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self._x.shape[1]:
            raise ValueError(
                f"queries must be (m, {self._x.shape[1]}), got {x.shape}"
            )
        n_classes = int(self._y.max()) + 1
        train_sq = np.sum(self._x**2, axis=1)
        out = np.empty(x.shape[0], dtype=np.int64)
        for start in range(0, x.shape[0], chunk):
            q = x[start : start + chunk]
            # squared distances via the expansion ||q||² - 2 q·x + ||x||²
            d2 = np.sum(q**2, axis=1)[:, None] - 2.0 * (q @ self._x.T) + train_sq[None, :]
            nearest = np.argpartition(d2, self.k - 1, axis=1)[:, : self.k]
            votes = self._y[nearest]
            counts = np.zeros((q.shape[0], n_classes), dtype=np.int64)
            rows = np.repeat(np.arange(q.shape[0]), self.k)
            np.add.at(counts, (rows, votes.ravel()), 1)
            out[start : start + q.shape[0]] = counts.argmax(axis=1)
        return out

    def score_percent(self, x: np.ndarray, y: np.ndarray) -> float:
        """Accuracy in percent on labelled queries."""
        predictions = self.predict(x)
        y = np.asarray(y)
        return 100.0 * float(np.mean(predictions == y))
