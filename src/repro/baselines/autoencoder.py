"""Dense autoencoder feature extractor (XPSI's representation learner).

Olaya et al.'s XPSI framework extracts features from diffraction
patterns with an autoencoder before kNN classification.  This is that
component on our NumPy NN substrate: a symmetric dense autoencoder
trained with MSE on flattened images; the bottleneck activations are the
features.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Dense, ReLU, Sigmoid
from repro.nn.losses import MeanSquaredError
from repro.nn.network import Network
from repro.nn.optimizers import Adam
from repro.utils.rng import fallback_rng
from repro.utils.validation import ensure_positive

__all__ = ["Autoencoder"]


class Autoencoder:
    """Symmetric dense autoencoder with a linear bottleneck.

    Parameters
    ----------
    input_dim:
        Flattened image size.
    hidden_dim:
        Width of the single hidden layer on each side.
    latent_dim:
        Bottleneck (feature) width.
    rng:
        Weight-initialization / shuffling generator.
    """

    def __init__(
        self,
        input_dim: int,
        *,
        hidden_dim: int = 128,
        latent_dim: int = 16,
        rng: np.random.Generator | None = None,
    ) -> None:
        ensure_positive(input_dim, "input_dim")
        ensure_positive(hidden_dim, "hidden_dim")
        ensure_positive(latent_dim, "latent_dim")
        rng = rng if rng is not None else fallback_rng()
        self.input_dim = int(input_dim)
        self.latent_dim = int(latent_dim)
        self.rng = rng
        self.encoder = Network(
            [
                Dense(input_dim, hidden_dim, rng=rng),
                ReLU(),
                Dense(hidden_dim, latent_dim, rng=rng),
            ],
            input_shape=(input_dim,),
            name="encoder",
        )
        self.decoder = Network(
            [
                Dense(latent_dim, hidden_dim, rng=rng),
                ReLU(),
                Dense(hidden_dim, input_dim, rng=rng),
                Sigmoid(),
            ],
            input_shape=(latent_dim,),
            name="decoder",
        )
        self._loss = MeanSquaredError()
        self._optimizers = [Adam(self.encoder, 1e-3), Adam(self.decoder, 1e-3)]
        self.loss_history: list[float] = []

    @staticmethod
    def _flatten(x: np.ndarray) -> np.ndarray:
        return x.reshape(x.shape[0], -1)

    @staticmethod
    def _rescale(x: np.ndarray) -> np.ndarray:
        """Map standardized images into [0, 1] for the sigmoid output."""
        lo = x.min(axis=1, keepdims=True)
        hi = x.max(axis=1, keepdims=True)
        return (x - lo) / np.maximum(hi - lo, 1e-8)

    def train_epoch(self, x: np.ndarray, *, batch_size: int = 32) -> float:
        """One reconstruction epoch; returns mean MSE."""
        flat = self._rescale(self._flatten(np.asarray(x, dtype=float)))
        order = self.rng.permutation(len(flat))
        losses = []
        for start in range(0, len(order), batch_size):
            batch = flat[order[start : start + batch_size]]
            for opt in self._optimizers:
                opt.zero_grad()
            latent = self.encoder.forward(batch, training=True)
            recon = self.decoder.forward(latent, training=True)
            value, grad = self._loss(recon, batch)
            grad_latent = self.decoder.backward(grad)
            self.encoder.backward(grad_latent)
            for opt in self._optimizers:
                opt.step()
            losses.append(value)
        mean_loss = float(np.mean(losses))
        self.loss_history.append(mean_loss)
        return mean_loss

    def fit(self, x: np.ndarray, *, epochs: int = 10, batch_size: int = 32) -> "Autoencoder":
        """Train for a fixed number of epochs."""
        ensure_positive(epochs, "epochs")
        for _ in range(int(epochs)):
            self.train_epoch(x, batch_size=batch_size)
        return self

    def encode(self, x: np.ndarray) -> np.ndarray:
        """Bottleneck features, shape ``(n, latent_dim)``."""
        flat = self._rescale(self._flatten(np.asarray(x, dtype=float)))
        return self.encoder.predict(flat)

    def reconstruct(self, x: np.ndarray) -> np.ndarray:
        """Round-trip through the bottleneck (for reconstruction metrics)."""
        return self.decoder.predict(self.encode(x))
