"""Truncated-training baseline utilities.

"Built-in truncated training, a fixed termination criterion where each
NN is trained for a set number of epochs" (§1) is what A4NN improves on.
The standalone baseline is simply Algorithm 1 without an engine; this
module packages it with explicit naming plus a helper that quantifies
what truncated training wastes relative to engine-terminated runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.plugin import TrainableModel, TrainingResult, run_training_loop

__all__ = ["run_truncated_training", "TruncationWaste", "truncation_waste"]


def run_truncated_training(model: TrainableModel, n_epochs: int) -> TrainingResult:
    """Train for exactly ``n_epochs`` (no early termination)."""
    return run_training_loop(model, None, n_epochs)


@dataclass(frozen=True)
class TruncationWaste:
    """Epochs/time the fixed criterion spent beyond what A4NN needed."""

    baseline_epochs: int
    a4nn_epochs: int
    epochs_wasted: int
    fraction_wasted: float


def truncation_waste(
    baseline: TrainingResult, engine_terminated: TrainingResult
) -> TruncationWaste:
    """Compare a truncated run against an engine-terminated run."""
    wasted = baseline.epochs_trained - engine_terminated.epochs_trained
    return TruncationWaste(
        baseline_epochs=baseline.epochs_trained,
        a4nn_epochs=engine_terminated.epochs_trained,
        epochs_wasted=wasted,
        fraction_wasted=wasted / baseline.epochs_trained if baseline.epochs_trained else 0.0,
    )
