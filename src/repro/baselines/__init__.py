"""Comparison baselines: XPSI (autoencoder + kNN) and truncated training."""

from repro.baselines.autoencoder import Autoencoder
from repro.baselines.fixed_training import (
    TruncationWaste,
    run_truncated_training,
    truncation_waste,
)
from repro.baselines.knn import KNNClassifier
from repro.baselines.xpsi import (
    PAPER_XPSI_ACCURACY,
    PAPER_XPSI_HOURS,
    XPSIConfig,
    XPSIResult,
    run_xpsi,
)

__all__ = [
    "Autoencoder",
    "TruncationWaste",
    "run_truncated_training",
    "truncation_waste",
    "KNNClassifier",
    "PAPER_XPSI_ACCURACY",
    "PAPER_XPSI_HOURS",
    "XPSIConfig",
    "XPSIResult",
    "run_xpsi",
]
