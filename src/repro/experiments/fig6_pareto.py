"""Figure 6: Pareto-optimal accuracy vs FLOPs, A4NN vs standalone NSGA-Net.

For each beam intensity, both searches evaluate 100 architectures; the
artifact is the Pareto frontier of (validation accuracy ↑, FLOPs ↓) of
each archive.  The paper's qualitative findings: A4NN's frontiers match
or beat the standalone NAS at comparable FLOPs, and accuracy ordering
across intensities is high ≈ medium > low.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.pareto import ParetoPoint, hypervolume_2d, pareto_frontier
from repro.experiments.configs import DEFAULT_SEED
from repro.experiments.reporting import ReportTable, shape_check
from repro.experiments.runner import get_comparison
from repro.xfel.intensity import BeamIntensity

__all__ = ["Fig6Result", "run_fig6", "format_fig6"]


@dataclass
class Fig6Result:
    """Frontiers per intensity for both searches."""

    a4nn: dict          # intensity label -> list[ParetoPoint]
    standalone: dict    # intensity label -> list[ParetoPoint]

    def best_accuracy(self, which: str, intensity: str) -> float:
        frontier = getattr(self, which)[intensity]
        return max(p.fitness for p in frontier)


def run_fig6(*, seed: int = DEFAULT_SEED) -> Fig6Result:
    """Compute both frontiers for all three intensities."""
    a4nn: dict[str, list[ParetoPoint]] = {}
    standalone: dict[str, list[ParetoPoint]] = {}
    for intensity in BeamIntensity:
        comparison = get_comparison(intensity, seed=seed)
        a4nn[intensity.label] = pareto_frontier(comparison.a4nn.search.archive)
        standalone[intensity.label] = pareto_frontier(
            comparison.standalone.search.archive
        )
    return Fig6Result(a4nn=a4nn, standalone=standalone)


def format_fig6(result: Fig6Result) -> str:
    """Frontier summary table plus the paper's qualitative shape checks."""
    table = ReportTable(
        "intensity", "search", "frontier size", "best acc %", "min MFLOPs", "hypervolume"
    )
    for intensity in BeamIntensity:
        label = intensity.label
        for which in ("a4nn", "standalone"):
            frontier = getattr(result, which)[label]
            table.row(
                label,
                which,
                len(frontier),
                max(p.fitness for p in frontier),
                min(p.flops for p in frontier) / 1e6,
                hypervolume_2d(frontier) / 1e6,
            )
    checks = [
        shape_check(
            "A4NN best accuracy within noise (3%) of standalone everywhere",
            all(
                result.best_accuracy("a4nn", i.label)
                >= result.best_accuracy("standalone", i.label) - 3.0
                for i in BeamIntensity
            ),
        ),
        shape_check(
            "accuracy ordering high/medium > low",
            min(
                result.best_accuracy("a4nn", "high"),
                result.best_accuracy("a4nn", "medium"),
            )
            > result.best_accuracy("a4nn", "low") - 0.5,
        ),
    ]
    return "\n".join(
        [table.render("Figure 6: Pareto accuracy vs FLOPs"), *checks]
    )
