"""§4.3.1: prediction-engine overhead measurement.

The paper reports that over a 100-model test the engine adds 52.16 s of
wall time — a mean of 28.07 ms per interaction with 1.12 ms variance —
i.e. negligible against epoch times of tens of seconds.  This experiment
measures our engine's per-interaction overhead the same way: wall time
of the predictor+analyzer call, accumulated inside Algorithm 1 across a
full 100-model surrogate run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.configs import DEFAULT_SEED, PAPER_OVERHEAD
from repro.experiments.reporting import ReportTable, shape_check
from repro.experiments.runner import get_comparison
from repro.xfel.intensity import BeamIntensity

__all__ = ["OverheadResult", "run_overhead", "format_overhead"]


@dataclass
class OverheadResult:
    """Engine overhead aggregated over one 100-model run."""

    total_seconds: float
    n_interactions: int
    mean_ms: float
    variance_ms: float
    mean_epoch_seconds_simulated: float


def run_overhead(
    *, intensity: BeamIntensity = BeamIntensity.MEDIUM, seed: int = DEFAULT_SEED
) -> OverheadResult:
    """Aggregate the measured engine overhead from a paper-scale run."""
    comparison = get_comparison(intensity, seed=seed)
    archive = comparison.a4nn.search.archive
    total = sum(m.result.engine_overhead_seconds for m in archive)
    interactions = sum(m.result.engine_interactions for m in archive)
    means = [
        m.result.engine_overhead_mean for m in archive if m.result.engine_interactions
    ]
    variances = [
        m.result.engine_overhead_variance
        for m in archive
        if m.result.engine_interactions >= 2
    ]
    epoch_seconds = [s for m in archive for s in m.epoch_seconds]
    return OverheadResult(
        total_seconds=total,
        n_interactions=interactions,
        mean_ms=1e3 * float(np.mean(means)),
        variance_ms=1e3 * float(np.mean(variances)),
        mean_epoch_seconds_simulated=float(np.mean(epoch_seconds)),
    )


def format_overhead(result: OverheadResult) -> str:
    """Overhead table against the paper's §4.3.1 numbers."""
    table = ReportTable("metric", "paper", "measured")
    table.row(
        "engine seconds per 100-model test",
        PAPER_OVERHEAD["total_seconds_per_100_models"],
        result.total_seconds,
    )
    table.row(
        "mean ms per interaction",
        PAPER_OVERHEAD["mean_ms_per_interaction"],
        result.mean_ms,
    )
    table.row(
        "variance ms per epoch",
        PAPER_OVERHEAD["variance_ms_per_epoch"],
        result.variance_ms,
    )
    checks = [
        shape_check(
            "overhead negligible vs simulated epoch time (< 1%)",
            result.mean_ms / 1e3 < 0.01 * result.mean_epoch_seconds_simulated,
        ),
        shape_check(
            "per-interaction overhead within 10x of the paper's 28 ms",
            result.mean_ms < 10 * PAPER_OVERHEAD["mean_ms_per_interaction"],
        ),
    ]
    return "\n".join([table.render("§4.3.1: engine overhead"), *checks])
