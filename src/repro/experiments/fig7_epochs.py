"""Figure 7: training epochs required for 100 architectures, and % saved.

The standalone NAS always trains ``100 × 25 = 2,500`` epochs; A4NN's
early termination cuts that by 13.3% / 34.1% / 30.5% (low / medium /
high) in the paper.  The paper also runs A4NN on four GPUs and observes
slightly different epoch counts (1.13-1.2× fewer); since scheduling
cannot change a deterministic search's epoch demand, we reproduce the
4-GPU column as an independent run (different seed) — run-to-run
variation, which is what the paper's own hypothesis ("balance of breadth
and depth") amounts to for epoch counting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.configs import DEFAULT_SEED, PAPER_EPOCH_SAVINGS_PERCENT
from repro.experiments.reporting import ReportTable, shape_check
from repro.experiments.runner import get_comparison
from repro.xfel.intensity import BeamIntensity

__all__ = ["Fig7Result", "run_fig7", "format_fig7"]


@dataclass
class Fig7Result:
    """Per-intensity epoch accounting."""

    standalone_epochs: dict  # label -> int (always the full budget)
    a4nn_epochs_1gpu: dict   # label -> int
    a4nn_epochs_4gpu: dict   # label -> int (independent run)
    budget: int

    def saved_percent(self, intensity: str, *, gpus: int = 1) -> float:
        epochs = (self.a4nn_epochs_1gpu if gpus == 1 else self.a4nn_epochs_4gpu)[intensity]
        return 100.0 * (self.budget - epochs) / self.budget


def run_fig7(*, seed: int = DEFAULT_SEED) -> Fig7Result:
    """Count epochs for standalone and A4NN (two independent A4NN runs)."""
    standalone: dict[str, int] = {}
    one_gpu: dict[str, int] = {}
    four_gpu: dict[str, int] = {}
    budget = None
    for intensity in BeamIntensity:
        comparison = get_comparison(intensity, seed=seed)
        second = get_comparison(intensity, seed=seed + 1)
        budget = comparison.a4nn.config.nas.max_epochs * len(
            comparison.a4nn.search.archive
        )
        standalone[intensity.label] = comparison.standalone.total_epochs_trained
        one_gpu[intensity.label] = comparison.a4nn.total_epochs_trained
        four_gpu[intensity.label] = second.a4nn.total_epochs_trained
    return Fig7Result(
        standalone_epochs=standalone,
        a4nn_epochs_1gpu=one_gpu,
        a4nn_epochs_4gpu=four_gpu,
        budget=budget,
    )


def format_fig7(result: Fig7Result) -> str:
    """Epoch table with the paper's savings shape checks."""
    table = ReportTable(
        "intensity",
        "standalone epochs",
        "a4nn epochs (1 gpu)",
        "saved % (paper)",
        "saved % (measured)",
    )
    for intensity in BeamIntensity:
        label = intensity.label
        table.row(
            label,
            result.standalone_epochs[label],
            result.a4nn_epochs_1gpu[label],
            PAPER_EPOCH_SAVINGS_PERCENT[label],
            result.saved_percent(label),
        )
    saved = {i.label: result.saved_percent(i.label) for i in BeamIntensity}
    checks = [
        shape_check(
            "standalone always trains the full 2,500-epoch budget",
            all(v == result.budget for v in result.standalone_epochs.values()),
        ),
        shape_check(
            "A4NN saves epochs on every intensity",
            all(v > 0 for v in saved.values()),
        ),
        shape_check(
            "low intensity saves the least (noisy curves stabilize late)",
            saved["low"] < saved["medium"] and saved["low"] < saved["high"],
        ),
    ]
    return "\n".join([table.render("Figure 7: epochs required & saved"), *checks])
