"""End-to-end real-mode validation experiment.

The paper-scale artifacts run in surrogate mode; this experiment closes
the loop by running the *entire* stack — XFEL simulation, genome
decoding, actual NumPy CNN training, the prediction engine, NSGA-II —
at miniature scale (12 networks, reduced images) with and without the
engine, verifying on real gradient descent that early termination saves
epochs without degrading what the search finds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.compare import RunComparison, compare_runs
from repro.core.engine import EngineConfig
from repro.experiments.reporting import ReportTable, shape_check
from repro.nas.search import NSGANetConfig
from repro.workflow.driver import run_comparison
from repro.workflow.interfaces import WorkflowConfig
from repro.xfel.dataset import DatasetConfig
from repro.xfel.intensity import BeamIntensity

__all__ = ["RealModeResult", "run_real_mode", "format_real_mode"]


@dataclass
class RealModeResult:
    """Mini real-mode A4NN-vs-standalone outcome."""

    comparison: RunComparison
    epochs_saved_percent: float
    a4nn_best: float
    standalone_best: float
    max_epochs: int
    n_models: int


def real_mode_config(
    *,
    intensity: BeamIntensity = BeamIntensity.HIGH,
    seed: int = 17,
    images_per_class: int = 80,
    image_size: int = 16,
    max_epochs: int = 10,
) -> WorkflowConfig:
    """A CPU-sized real-mode configuration (12 networks)."""
    return WorkflowConfig(
        nas=NSGANetConfig(
            population_size=4,
            offspring_per_generation=4,
            generations=3,
            max_epochs=max_epochs,
        ),
        engine=EngineConfig(e_pred=max_epochs, tolerance=1.0),
        dataset=DatasetConfig(
            intensity=intensity,
            images_per_class=images_per_class,
            image_size=image_size,
        ),
        mode="real",
        n_gpus=(1,),
        seed=seed,
    )


def run_real_mode(config: WorkflowConfig | None = None) -> RealModeResult:
    """Train everything for real, with and without the engine."""
    config = config or real_mode_config()
    paired = run_comparison(config)
    comparison = compare_runs(
        paired.a4nn.tracker.all_records(),
        paired.standalone.tracker.all_records(),
    )
    return RealModeResult(
        comparison=comparison,
        epochs_saved_percent=comparison.epochs_saved_percent,
        a4nn_best=comparison.best_fitness[0],
        standalone_best=comparison.best_fitness[1],
        max_epochs=config.nas.max_epochs,
        n_models=comparison.n_models[0],
    )


def format_real_mode(result: RealModeResult) -> str:
    """Paired table plus the real-mode shape checks."""
    table = ReportTable("metric", "standalone", "A4NN")
    table.row("networks trained", result.comparison.n_models[1], result.comparison.n_models[0])
    table.row(
        "epochs trained",
        result.comparison.epochs_trained[1],
        result.comparison.epochs_trained[0],
    )
    table.row("best accuracy %", result.standalone_best, result.a4nn_best)
    checks = [
        shape_check("engine saved real training epochs", result.epochs_saved_percent > 0),
        shape_check(
            "search quality preserved (within 10%)",
            result.a4nn_best >= result.standalone_best - 10.0,
        ),
        shape_check("real CNNs learn the task (> 60%)", result.a4nn_best > 60.0),
    ]
    return "\n".join(
        [
            table.render(
                f"Real-mode validation ({result.n_models} NumPy CNNs actually trained)"
            ),
            *checks,
        ]
    )
