"""Table 3: A4NN versus the XPSI state of the art.

Per beam intensity: wall time and validation accuracy of A4NN (single
GPU, plus the 4-GPU row discussed in §4.4) against the fixed-cost XPSI
framework.  Paper shape targets: XPSI's 15.45 h beats A4NN on one GPU
but loses to A4NN on four GPUs; A4NN matches or beats XPSI's accuracy,
with the largest margin on the noisy low-intensity data.

A4NN accuracy comes from the paper-scale surrogate search; XPSI is also
run *for real* on our simulated datasets (reduced scale) to verify the
pipeline's accuracy-vs-noise behaviour holds end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.xpsi import PAPER_XPSI_HOURS, XPSIResult, run_xpsi
from repro.experiments.configs import DEFAULT_SEED, PAPER_TABLE3, PAPER_WALLTIME_HOURS
from repro.experiments.reporting import ReportTable, shape_check
from repro.experiments.runner import get_comparison
from repro.xfel.dataset import DatasetConfig, generate_dataset
from repro.xfel.intensity import BeamIntensity

__all__ = ["Table3Result", "run_table3", "format_table3"]


@dataclass
class Table3Result:
    """Per-intensity comparison rows."""

    a4nn_accuracy: dict     # label -> best validation accuracy (surrogate)
    a4nn_hours_1gpu: dict
    a4nn_hours_4gpu: dict
    xpsi: dict              # label -> XPSIResult (real run on simulated data)


def run_table3(
    *, seed: int = DEFAULT_SEED, xpsi_images_per_class: int = 300
) -> Table3Result:
    """Assemble the comparison for all three intensities."""
    accuracy: dict[str, float] = {}
    hours1: dict[str, float] = {}
    hours4: dict[str, float] = {}
    xpsi: dict[str, XPSIResult] = {}
    for intensity in BeamIntensity:
        comparison = get_comparison(intensity, seed=seed)
        accuracy[intensity.label] = comparison.a4nn.search.population.best_fitness()
        hours1[intensity.label] = comparison.a4nn.walltime[1].wall_hours
        hours4[intensity.label] = comparison.a4nn.walltime[4].wall_hours
        dataset = generate_dataset(
            DatasetConfig(intensity=intensity, images_per_class=xpsi_images_per_class)
        )
        xpsi[intensity.label] = run_xpsi(dataset)
    return Table3Result(
        a4nn_accuracy=accuracy,
        a4nn_hours_1gpu=hours1,
        a4nn_hours_4gpu=hours4,
        xpsi=xpsi,
    )


def format_table3(result: Table3Result) -> str:
    """Table 3 rows (paper vs measured) with shape checks."""
    table = ReportTable(
        "intensity",
        "metric",
        "A4NN (paper)",
        "A4NN (measured)",
        "XPSI (paper)",
        "XPSI (measured)",
    )
    for intensity in BeamIntensity:
        label = intensity.label
        table.row(
            label,
            "wall time h (1 gpu)",
            PAPER_WALLTIME_HOURS[label]["a4nn_1gpu"],
            result.a4nn_hours_1gpu[label],
            PAPER_XPSI_HOURS,
            result.xpsi[label].simulated_hours,
        )
        table.row(
            label,
            "wall time h (4 gpu)",
            PAPER_WALLTIME_HOURS[label]["a4nn_4gpu"],
            result.a4nn_hours_4gpu[label],
            PAPER_XPSI_HOURS,
            result.xpsi[label].simulated_hours,
        )
        table.row(
            label,
            "accuracy %",
            PAPER_TABLE3[label]["a4nn_accuracy"],
            result.a4nn_accuracy[label],
            PAPER_TABLE3[label]["xpsi_accuracy"],
            result.xpsi[label].accuracy,
        )
    checks = [
        shape_check(
            "XPSI (fixed pipeline) beats A4NN wall time on one GPU",
            all(
                result.a4nn_hours_1gpu[i.label] > result.xpsi[i.label].simulated_hours
                for i in BeamIntensity
            ),
        ),
        shape_check(
            "A4NN on four GPUs beats XPSI wall time",
            all(
                result.a4nn_hours_4gpu[i.label] < result.xpsi[i.label].simulated_hours
                for i in BeamIntensity
            ),
        ),
        shape_check(
            "A4NN accuracy >= XPSI accuracy on every intensity (measured)",
            all(
                result.a4nn_accuracy[i.label] >= result.xpsi[i.label].accuracy
                for i in BeamIntensity
            ),
        ),
        shape_check(
            "XPSI accuracy degrades with noise (low < medium <= high)",
            result.xpsi["low"].accuracy
            < result.xpsi["medium"].accuracy
            <= result.xpsi["high"].accuracy + 1e-9,
        ),
    ]
    return "\n".join([table.render("Table 3: A4NN vs XPSI"), *checks])
