"""Ablation: engine sensitivity to the convergence window ``N`` and
tolerance ``r``.

The paper fixes ``N = 3`` and ``r = 0.5`` (Table 1).  This sweep shows
the trade-off those values buy: looser settings terminate earlier (more
epochs saved) at the cost of larger prediction error; stricter settings
converge later or not at all.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.engine import EngineConfig, PredictionEngine
from repro.core.plugin import run_training_loop
from repro.experiments.ablation_functions import _curve_bank
from repro.experiments.reporting import ReportTable
from repro.nas.surrogate import LearningCurveModel

__all__ = ["EngineSweepPoint", "run_engine_ablation", "format_engine_ablation"]


@dataclass
class EngineSweepPoint:
    """Outcome of one (N, r) setting over the shared curve bank."""

    n_predictions: int
    tolerance: float
    percent_converged: float
    mean_epochs_saved: float
    mean_abs_error: float


def run_engine_ablation(
    *,
    n_values: tuple = (2, 3, 5),
    r_values: tuple = (0.1, 0.5, 2.0),
    n_per_regime: int = 20,
    seed: int = 11,
    n_epochs: int = 25,
) -> list[EngineSweepPoint]:
    """Sweep the analyzer's window length and tolerance."""
    curves = _curve_bank(n_per_regime, seed, n_epochs)
    points = []
    for n in n_values:
        for r in r_values:
            engine = PredictionEngine(EngineConfig(n_predictions=n, tolerance=r))
            errors, saved = [], []
            converged = 0
            for curve in curves:
                result = run_training_loop(LearningCurveModel(curve), engine, n_epochs)
                saved.append(n_epochs - result.epochs_trained)
                if result.terminated_early:
                    converged += 1
                    errors.append(abs(result.fitness - float(curve[-1])))
            points.append(
                EngineSweepPoint(
                    n_predictions=n,
                    tolerance=r,
                    percent_converged=100.0 * converged / len(curves),
                    mean_epochs_saved=float(np.mean(saved)),
                    mean_abs_error=float(np.mean(errors)) if errors else float("nan"),
                )
            )
    return points


def format_engine_ablation(points: list[EngineSweepPoint]) -> str:
    """Render the (N, r) sweep as a text table."""
    table = ReportTable("N", "r", "% converged", "mean epochs saved", "mean |error| %")
    for p in points:
        table.row(p.n_predictions, p.tolerance, p.percent_converged, p.mean_epochs_saved, p.mean_abs_error)
    return table.render("Ablation: convergence window N and tolerance r (paper: N=3, r=0.5)")
