"""Figure 2: the engine's fitness prediction converging on one NN.

Reproduces the paper's worked example — a single learning curve where
candidate predictions of the epoch-25 fitness are produced every epoch
from epoch ``C_min`` on, and the analyzer declares convergence around
epoch 12, terminating training.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.engine import PredictionEngine
from repro.experiments.configs import PAPER_ENGINE_CONFIG
from repro.experiments.reporting import ReportTable

__all__ = ["Fig2Result", "run_fig2", "format_fig2"]


@dataclass
class Fig2Result:
    """The example curve and the engine's per-epoch behaviour on it."""

    fitness_curve: list
    predictions: list  # (epoch, predicted fitness at e_pred)
    termination_epoch: int | None
    final_prediction: float | None
    true_final_fitness: float


def example_curve(n_epochs: int = 25, *, seed: int = 2) -> np.ndarray:
    """A well-behaved concave learning curve like the paper's example.

    Drawn from the same family the engine models (plus mild noise), with
    an asymptote near 98% — representative of a medium-intensity NN.
    """
    rng = np.random.default_rng(seed)
    epochs = np.arange(1, n_epochs + 1, dtype=float)
    curve = 98.2 - (98.2 - 57.0) * np.exp(-0.35 * epochs)
    return np.clip(curve + rng.normal(0.0, 0.35, size=n_epochs), 0.0, 100.0)


def run_fig2(curve: np.ndarray | None = None) -> Fig2Result:
    """Drive the Table-1 engine over the example curve, epoch by epoch."""
    curve = example_curve() if curve is None else np.asarray(curve, dtype=float)
    engine = PredictionEngine(PAPER_ENGINE_CONFIG)
    session = engine.session()
    predictions: list[tuple[int, float]] = []
    termination_epoch = None
    for fitness in curve:
        session.observe(float(fitness))
        if session.prediction_history and (
            not predictions or session.prediction_history[-1] != predictions[-1][1]
            or len(session.prediction_history) != len(predictions)
        ):
            predictions.append((session.epoch, session.prediction_history[-1]))
        if session.converged:
            termination_epoch = session.epoch
            break
    return Fig2Result(
        fitness_curve=list(curve[: len(session.fitness_history)]),
        predictions=predictions,
        termination_epoch=termination_epoch,
        final_prediction=session.final_fitness,
        true_final_fitness=float(curve[-1]),
    )


def format_fig2(result: Fig2Result) -> str:
    """Render the per-epoch prediction trace and the convergence verdict."""
    table = ReportTable("epoch", "measured acc %", "predicted acc @25")
    preds = dict(result.predictions)
    for i, acc in enumerate(result.fitness_curve, start=1):
        table.row(i, acc, preds.get(i, "-"))
    lines = [table.render("Figure 2: prediction convergence example")]
    if result.termination_epoch is not None:
        lines.append(
            f"converged at epoch {result.termination_epoch} "
            f"(paper example: epoch 12); prediction {result.final_prediction:.2f}% "
            f"vs true epoch-25 fitness {result.true_final_fitness:.2f}%"
        )
    else:
        lines.append("did not converge within the budget")
    return "\n".join(lines)
