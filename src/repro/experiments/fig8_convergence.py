"""Figure 8: distribution of the termination epoch ``e_t`` per intensity.

Paper shape targets: low — mean ``e_t`` above 18 with >60% of models
terminated early; medium — mean under 12.5 with >70% terminated; high —
an early-skewed distribution (mean ≈ 10) with only ~55% terminated and
a large full-training remainder (the "inverted bell").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.curves import TerminationSummary, termination_histogram
from repro.experiments.configs import DEFAULT_SEED, PAPER_CONVERGENCE
from repro.experiments.reporting import ReportTable, shape_check
from repro.experiments.runner import get_comparison
from repro.xfel.intensity import BeamIntensity

__all__ = ["Fig8Result", "run_fig8", "format_fig8"]


@dataclass
class Fig8Result:
    """Termination summaries keyed by intensity label."""

    summaries: dict  # label -> TerminationSummary
    max_epochs: int


def run_fig8(*, seed: int = DEFAULT_SEED) -> Fig8Result:
    """Histogram termination epochs of each intensity's A4NN archive."""
    summaries: dict[str, TerminationSummary] = {}
    max_epochs = 25
    for intensity in BeamIntensity:
        comparison = get_comparison(intensity, seed=seed)
        max_epochs = comparison.a4nn.config.nas.max_epochs
        results = [m.result for m in comparison.a4nn.search.archive]
        summaries[intensity.label] = termination_histogram(
            results, max_epochs=max_epochs
        )
    return Fig8Result(summaries=summaries, max_epochs=max_epochs)


def format_fig8(result: Fig8Result) -> str:
    """Convergence table, raw histograms, and shape checks."""
    table = ReportTable(
        "intensity",
        "% terminated (paper)",
        "% terminated (measured)",
        "mean e_t (paper)",
        "mean e_t (measured)",
    )
    for intensity in BeamIntensity:
        label = intensity.label
        summary = result.summaries[label]
        paper = PAPER_CONVERGENCE[label]
        table.row(
            label,
            f"{paper['percent_terminated']:.0f} ({'>' if paper['direction'][0] == 'above' else '~'})",
            summary.percent_terminated,
            f"{paper['mean_e_t']:.1f} ({'>' if paper['direction'][1] == 'above' else '<' if paper['direction'][1] == 'below' else '~'})",
            summary.mean_termination_epoch,
        )

    low = result.summaries["low"]
    med = result.summaries["medium"]
    high = result.summaries["high"]
    checks = [
        shape_check("low: mean e_t > 18", low.mean_termination_epoch > 18.0),
        shape_check("low: > 60% terminated", low.percent_terminated > 60.0),
        shape_check("medium: mean e_t <= 12.5", med.mean_termination_epoch <= 12.5),
        shape_check("medium: > 70% terminated", med.percent_terminated > 70.0),
        shape_check(
            "high: early terminations (mean e_t <= 12)",
            high.mean_termination_epoch <= 12.0,
        ),
        shape_check(
            "high: smallest terminated share (inverted bell)",
            high.percent_terminated
            < min(low.percent_terminated, med.percent_terminated),
        ),
    ]
    histograms = []
    for intensity in BeamIntensity:
        summary = result.summaries[intensity.label]
        histograms.append(
            f"{intensity.label:>7} e_t histogram: "
            + " ".join(str(c) for c in summary.histogram)
        )
    return "\n".join(
        [table.render("Figure 8: termination-epoch distribution"), *histograms, *checks]
    )
