"""Figure 5: the same protein shot at the three beam intensities.

The paper's figure shows how beam fluence controls image quality: low
intensity (1e14 photons/µm²/pulse) is photon-starved and noisy, high
intensity (1e16) nearly noiseless.  We regenerate the triple — one
orientation of conformation A, three photon budgets — and quantify the
visual claim with photon counts and SNR.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.reporting import ReportTable, shape_check
from repro.utils.rng import derive_rng
from repro.xfel.diffraction import Detector, diffraction_pattern
from repro.xfel.intensity import BeamIntensity
from repro.xfel.noise import apply_photon_noise, snr_estimate
from repro.xfel.protein import make_conformations

__all__ = ["Fig5Result", "run_fig5", "format_fig5"]


@dataclass
class Fig5Result:
    """One shot per intensity, with noise statistics."""

    clean: np.ndarray                 # noise-free pattern
    noisy: dict                       # label -> photon-count image
    photons: dict                     # label -> total detected photons
    snr_db: dict                      # label -> SNR estimate in dB
    zero_fraction: dict               # label -> fraction of empty pixels


def run_fig5(*, image_size: int = 32, seed: int = 2023) -> Fig5Result:
    """Simulate the same orientation at the three fluences."""
    conf_a, _ = make_conformations(seed=seed)
    detector = Detector(n_pixels=image_size)
    clean = diffraction_pattern(conf_a, np.eye(3), detector)

    noisy: dict[str, np.ndarray] = {}
    photons: dict[str, float] = {}
    snr: dict[str, float] = {}
    zero_fraction: dict[str, float] = {}
    for intensity in BeamIntensity:
        rng = derive_rng(seed, "fig5", intensity.label)
        image = apply_photon_noise(clean, intensity, rng)
        noisy[intensity.label] = image
        photons[intensity.label] = float(image.sum())
        snr[intensity.label] = snr_estimate(clean, image)
        zero_fraction[intensity.label] = float(np.mean(image == 0))
    return Fig5Result(
        clean=clean, noisy=noisy, photons=photons, snr_db=snr, zero_fraction=zero_fraction
    )


def format_fig5(result: Fig5Result) -> str:
    """Photon/SNR table with the figure's qualitative shape checks."""
    table = ReportTable(
        "intensity", "fluence (ph/um^2)", "detected photons", "SNR dB", "empty pixels %"
    )
    for intensity in BeamIntensity:
        label = intensity.label
        table.row(
            label,
            f"{intensity.photons_per_um2:.0e}",
            result.photons[label],
            result.snr_db[label],
            100.0 * result.zero_fraction[label],
        )
    checks = [
        shape_check(
            "photon budget scales 10x per intensity step",
            result.photons["medium"] / max(result.photons["low"], 1) > 5
            and result.photons["high"] / max(result.photons["medium"], 1) > 5,
        ),
        shape_check(
            "SNR increases with beam intensity",
            result.snr_db["low"] < result.snr_db["medium"] < result.snr_db["high"],
        ),
        shape_check(
            "low intensity is photon-starved (most pixels empty)",
            result.zero_fraction["low"] > result.zero_fraction["high"],
        ),
    ]
    return "\n".join([table.render("Figure 5: simulated beam intensities"), *checks])
