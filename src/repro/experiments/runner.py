"""Shared experiment harness.

Most paper artifacts (Figs. 6-9, Table 3) are different views of the
same pair of runs — A4NN and standalone NSGA-Net at one beam intensity —
so the harness memoizes those comparisons per (intensity, seed) within a
process, letting each benchmark regenerate its artifact without
re-searching.
"""

from __future__ import annotations

from functools import lru_cache

from repro.experiments.configs import DEFAULT_SEED, PAPER_ENGINE_CONFIG, PAPER_NAS_CONFIG
from repro.workflow.driver import ComparisonResult, run_comparison
from repro.workflow.interfaces import WorkflowConfig
from repro.xfel.dataset import DatasetConfig
from repro.xfel.intensity import BeamIntensity

__all__ = ["paper_config", "get_comparison", "clear_cache"]


def paper_config(
    intensity: BeamIntensity, *, seed: int = DEFAULT_SEED, mode: str = "surrogate"
) -> WorkflowConfig:
    """The paper's Table 1 + Table 2 settings at one beam intensity."""
    return WorkflowConfig(
        nas=PAPER_NAS_CONFIG,
        engine=PAPER_ENGINE_CONFIG,
        dataset=DatasetConfig(intensity=intensity),
        mode=mode,
        n_gpus=(1, 4),
        seed=seed,
    )


@lru_cache(maxsize=32)
def _cached_comparison(intensity_label: str, seed: int) -> ComparisonResult:
    config = paper_config(BeamIntensity.from_label(intensity_label), seed=seed)
    return run_comparison(config)


def get_comparison(
    intensity: BeamIntensity, *, seed: int = DEFAULT_SEED
) -> ComparisonResult:
    """A4NN-vs-standalone comparison at paper scale (memoized per process)."""
    return _cached_comparison(intensity.label, seed)


def clear_cache() -> None:
    """Drop memoized comparisons (tests use this for isolation)."""
    _cached_comparison.cache_clear()
