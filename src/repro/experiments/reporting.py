"""Paper-vs-measured report formatting shared by all benchmarks."""

from __future__ import annotations

__all__ = ["ReportTable", "shape_check"]


class ReportTable:
    """Accumulates rows and renders an aligned text table.

    >>> t = ReportTable("metric", "paper", "measured")
    >>> t.row("epochs saved %", 13.3, 13.6)
    >>> print(t.render("Figure 7"))
    """

    def __init__(self, *columns: str) -> None:
        self.columns = list(columns)
        self.rows: list[list[str]] = []

    def row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append([self._fmt(v) for v in values])

    @staticmethod
    def _fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    def render(self, title: str) -> str:
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in self.rows)) if self.rows else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        sep = "-" * len(header)
        lines = [f"== {title} ==", header, sep]
        for r in self.rows:
            lines.append("  ".join(v.rjust(widths[i]) for i, v in enumerate(r)))
        return "\n".join(lines)


def shape_check(name: str, condition: bool) -> str:
    """One-line pass/fail marker for a qualitative shape property."""
    return f"[{'ok' if condition else 'MISMATCH'}] {name}"
