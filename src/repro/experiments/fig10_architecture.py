"""Figures 3 & 10: rendering a near-optimal architecture's structure.

The paper's Analyzer visualizes NN structures (Fig. 3 shows the
notation, Fig. 10 shows "NN Model 51", a near-optimal network for low
beam intensity).  We regenerate the analysis: take the low-intensity
paper-scale archive, pick a Pareto-optimal model, decode its genome, and
render its full structure (phase DAGs, shapes, FLOPs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.pareto import pareto_frontier
from repro.analysis.viz import phase_graph, render_network
from repro.experiments.configs import DEFAULT_SEED
from repro.experiments.runner import get_comparison
from repro.nas.decoder import DecoderConfig, decode_genome
from repro.xfel.intensity import BeamIntensity

__all__ = ["Fig10Result", "run_fig10", "format_fig10"]


@dataclass
class Fig10Result:
    """A near-optimal model and its rendered structure."""

    model_id: int
    fitness: float
    flops: int
    genome_key: str
    rendering: str
    n_graph_nodes: int


def run_fig10(
    *, intensity: BeamIntensity = BeamIntensity.LOW, seed: int = DEFAULT_SEED
) -> Fig10Result:
    """Pick the highest-accuracy Pareto model of the A4NN archive and render it."""
    comparison = get_comparison(intensity, seed=seed)
    archive = comparison.a4nn.search.archive
    frontier = pareto_frontier(archive)
    best_point = max(frontier, key=lambda p: p.fitness)
    member = next(m for m in archive if m.model_id == best_point.model_id)

    network = decode_genome(
        member.genome,
        DecoderConfig(),
        rng=np.random.default_rng(0),
        name=f"model-{member.model_id}",
    )
    graph = phase_graph(member.genome)
    return Fig10Result(
        model_id=member.model_id,
        fitness=float(member.fitness),
        flops=int(member.flops),
        genome_key=member.genome.key(),
        rendering=render_network(network),
        n_graph_nodes=graph.number_of_nodes(),
    )


def format_fig10(result: Fig10Result) -> str:
    """Header line plus the full rendered architecture."""
    header = (
        f"== Figure 10: near-optimal NN for low beam intensity ==\n"
        f"model {result.model_id}: {result.fitness:.2f}% accuracy, "
        f"{result.flops / 1e6:.2f} MFLOPs, genome {result.genome_key}\n"
    )
    return header + result.rendering
