"""Ablation: which parametric function predicts NN fitness best?

One of the paper's forward-looking questions (§6).  We run the engine
with each registered parametric family over the same bank of learning
curves (all three intensity regimes) and score: how often predictions
converged, mean termination epoch, and the absolute error between the
converged prediction and the curve's true epoch-25 value.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.engine import EngineConfig, PredictionEngine
from repro.core.parametric import FUNCTION_REGISTRY
from repro.core.plugin import run_training_loop
from repro.experiments.reporting import ReportTable
from repro.nas.genome import random_genome
from repro.nas.surrogate import REGIMES, LearningCurveModel, sample_curve
from repro.utils.rng import derive_rng
from repro.xfel.intensity import BeamIntensity

__all__ = ["FunctionScore", "run_function_ablation", "format_function_ablation"]


@dataclass
class FunctionScore:
    """Aggregate performance of one parametric family."""

    function: str
    percent_converged: float
    mean_termination_epoch: float
    mean_abs_error: float
    mean_epochs_saved: float


def _curve_bank(n_per_regime: int, seed: int, n_epochs: int) -> list[np.ndarray]:
    curves = []
    for intensity in BeamIntensity:
        regime = REGIMES[intensity]
        rng = derive_rng(seed, "ablation", intensity.label)
        for i in range(n_per_regime):
            genome = random_genome(rng)
            curves.append(sample_curve(genome, regime, rng, n_epochs))
    return curves


def run_function_ablation(
    *,
    functions: list[str] | None = None,
    n_per_regime: int = 25,
    seed: int = 7,
    n_epochs: int = 25,
) -> list[FunctionScore]:
    """Score each family over an identical curve bank."""
    names = functions if functions is not None else sorted(FUNCTION_REGISTRY)
    curves = _curve_bank(n_per_regime, seed, n_epochs)
    scores = []
    for name in names:
        config = EngineConfig(function=name, c_min=max(3, FUNCTION_REGISTRY[name].n_params))
        engine = PredictionEngine(config)
        errors, terminations, saved = [], [], []
        converged = 0
        for curve in curves:
            result = run_training_loop(LearningCurveModel(curve), engine, n_epochs)
            saved.append(n_epochs - result.epochs_trained)
            if result.terminated_early:
                converged += 1
                terminations.append(result.epochs_trained)
                errors.append(abs(result.fitness - float(curve[-1])))
        scores.append(
            FunctionScore(
                function=name,
                percent_converged=100.0 * converged / len(curves),
                mean_termination_epoch=float(np.mean(terminations)) if terminations else float("nan"),
                mean_abs_error=float(np.mean(errors)) if errors else float("nan"),
                mean_epochs_saved=float(np.mean(saved)),
            )
        )
    return scores


def format_function_ablation(scores: list[FunctionScore]) -> str:
    """Render family scores sorted by prediction error."""
    table = ReportTable(
        "function", "% converged", "mean e_t", "mean |error| %", "mean epochs saved"
    )
    for s in sorted(scores, key=lambda s: s.mean_abs_error if s.mean_abs_error == s.mean_abs_error else 1e9):
        table.row(
            s.function,
            s.percent_converged,
            s.mean_termination_epoch,
            s.mean_abs_error,
            s.mean_epochs_saved,
        )
    return table.render("Ablation: parametric function choice (exp3 is the paper's)")
