"""Experiment reproductions: one module per paper table/figure.

Each module exposes ``run_*`` (compute the artifact) and ``format_*``
(render paper-vs-measured).  The benchmarks in ``benchmarks/`` drive
these; see DESIGN.md §4 for the per-experiment index and EXPERIMENTS.md
for recorded outcomes.
"""

from repro.experiments.ablation_engine import (
    EngineSweepPoint,
    format_engine_ablation,
    run_engine_ablation,
)
from repro.experiments.ablation_functions import (
    FunctionScore,
    format_function_ablation,
    run_function_ablation,
)
from repro.experiments.configs import (
    DEFAULT_SEED,
    PAPER_CONVERGENCE,
    PAPER_ENGINE_CONFIG,
    PAPER_EPOCH_SAVINGS_PERCENT,
    PAPER_NAS_CONFIG,
    PAPER_OVERHEAD,
    PAPER_SPEEDUP_4GPU,
    PAPER_TABLE3,
    PAPER_WALLTIME_HOURS,
    PAPER_WALLTIME_SAVED_HOURS,
)
from repro.experiments.fig2_prediction import Fig2Result, format_fig2, run_fig2
from repro.experiments.fig5_intensities import Fig5Result, format_fig5, run_fig5
from repro.experiments.fig10_architecture import Fig10Result, format_fig10, run_fig10
from repro.experiments.real_mode import (
    RealModeResult,
    format_real_mode,
    real_mode_config,
    run_real_mode,
)
from repro.experiments.fig6_pareto import Fig6Result, format_fig6, run_fig6
from repro.experiments.fig7_epochs import Fig7Result, format_fig7, run_fig7
from repro.experiments.fig8_convergence import Fig8Result, format_fig8, run_fig8
from repro.experiments.fig9_walltime import Fig9Result, format_fig9, run_fig9
from repro.experiments.overhead import OverheadResult, format_overhead, run_overhead
from repro.experiments.runner import clear_cache, get_comparison, paper_config
from repro.experiments.table3_xpsi import Table3Result, format_table3, run_table3

__all__ = [
    "EngineSweepPoint",
    "format_engine_ablation",
    "run_engine_ablation",
    "FunctionScore",
    "format_function_ablation",
    "run_function_ablation",
    "DEFAULT_SEED",
    "PAPER_CONVERGENCE",
    "PAPER_ENGINE_CONFIG",
    "PAPER_EPOCH_SAVINGS_PERCENT",
    "PAPER_NAS_CONFIG",
    "PAPER_OVERHEAD",
    "PAPER_SPEEDUP_4GPU",
    "PAPER_TABLE3",
    "PAPER_WALLTIME_HOURS",
    "PAPER_WALLTIME_SAVED_HOURS",
    "Fig2Result",
    "format_fig2",
    "run_fig2",
    "Fig5Result",
    "format_fig5",
    "run_fig5",
    "Fig10Result",
    "format_fig10",
    "run_fig10",
    "RealModeResult",
    "format_real_mode",
    "real_mode_config",
    "run_real_mode",
    "Fig6Result",
    "format_fig6",
    "run_fig6",
    "Fig7Result",
    "format_fig7",
    "run_fig7",
    "Fig8Result",
    "format_fig8",
    "run_fig8",
    "Fig9Result",
    "format_fig9",
    "run_fig9",
    "OverheadResult",
    "format_overhead",
    "run_overhead",
    "clear_cache",
    "get_comparison",
    "paper_config",
    "Table3Result",
    "format_table3",
    "run_table3",
]
