"""Paper configuration constants and expected results.

Table 1 (prediction engine) and Table 2 (NSGA-Net) are encoded as the
library defaults; this module pins them explicitly and records the
numbers the paper reports for each figure/table so benchmarks can print
paper-vs-measured side by side.
"""

from __future__ import annotations

from repro.core.engine import EngineConfig
from repro.nas.search import NSGANetConfig

__all__ = [
    "PAPER_ENGINE_CONFIG",
    "PAPER_NAS_CONFIG",
    "PAPER_EPOCH_SAVINGS_PERCENT",
    "PAPER_CONVERGENCE",
    "PAPER_WALLTIME_HOURS",
    "PAPER_WALLTIME_SAVED_HOURS",
    "PAPER_SPEEDUP_4GPU",
    "PAPER_TABLE3",
    "PAPER_OVERHEAD",
    "DEFAULT_SEED",
]

#: Root seed used by all paper-scale reproduction benchmarks.
DEFAULT_SEED = 42

#: Table 1 — prediction-engine configuration.
PAPER_ENGINE_CONFIG = EngineConfig(
    function="exp3",  # F(x) = a - b**(c - x)
    c_min=3,
    e_pred=25,
    n_predictions=3,
    tolerance=0.5,
)

#: Table 2 — NSGA-Net configuration (100 networks per test).
PAPER_NAS_CONFIG = NSGANetConfig(
    population_size=10,
    nodes_per_phase=4,
    offspring_per_generation=10,
    generations=10,
    max_epochs=25,
)

#: Figure 7 — percent of training epochs saved by A4NN (single GPU).
PAPER_EPOCH_SAVINGS_PERCENT = {"low": 13.3, "medium": 34.1, "high": 30.5}

#: Figure 8 — convergence behaviour per intensity:
#: (percent of models terminated early, mean termination epoch).
PAPER_CONVERGENCE = {
    "low": {"percent_terminated": 60.0, "mean_e_t": 18.0, "direction": ("above", "above")},
    "medium": {"percent_terminated": 70.0, "mean_e_t": 12.5, "direction": ("above", "below")},
    "high": {"percent_terminated": 55.0, "mean_e_t": 10.0, "direction": ("near", "near")},
}

#: Table 3 / §4.4 — A4NN wall times in hours.
PAPER_WALLTIME_HOURS = {
    "low": {"a4nn_1gpu": 46.55, "a4nn_4gpu": 12.06, "xpsi": 15.45},
    "medium": {"a4nn_1gpu": 36.09, "a4nn_4gpu": 9.17, "xpsi": 15.45},
    "high": {"a4nn_1gpu": 32.30, "a4nn_4gpu": 9.46, "xpsi": 15.45},
}

#: Figure 9 — wall-time savings of A4NN vs standalone NSGA-Net (hours, 1 GPU).
PAPER_WALLTIME_SAVED_HOURS = {"low": 3.5, "medium": 15.8, "high": 16.3}

#: Figure 9 / §4.3.2 — 4-GPU wall-time speedups.
PAPER_SPEEDUP_4GPU = {"low": 3.8, "medium": 3.9, "high": 3.4}

#: Table 3 — validation accuracy (percent).
PAPER_TABLE3 = {
    "low": {"a4nn_accuracy": 97.8, "xpsi_accuracy": 92.0},
    "medium": {"a4nn_accuracy": 99.9, "xpsi_accuracy": 99.0},
    "high": {"a4nn_accuracy": 100.0, "xpsi_accuracy": 100.0},
}

#: §4.3.1 — prediction-engine overhead on the authors' hardware.
PAPER_OVERHEAD = {
    "total_seconds_per_100_models": 52.16,
    "mean_ms_per_interaction": 28.07,
    "variance_ms_per_epoch": 1.12,
}
