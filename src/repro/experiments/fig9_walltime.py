"""Figure 9: wall times — A4NN (1 & 4 GPUs) vs standalone NSGA-Net (1 GPU).

Paper shape targets: A4NN saves hours on one GPU (3.5 / 15.8 / 16.3 h
for low / medium / high), and distributing across four GPUs yields
near-linear speedups (3.8× / 3.9× / 3.4×) even though epoch savings
barely change.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.configs import (
    DEFAULT_SEED,
    PAPER_SPEEDUP_4GPU,
    PAPER_WALLTIME_SAVED_HOURS,
)
from repro.experiments.reporting import ReportTable, shape_check
from repro.experiments.runner import get_comparison
from repro.xfel.intensity import BeamIntensity

__all__ = ["Fig9Result", "run_fig9", "format_fig9"]


@dataclass
class Fig9Result:
    """Wall-time accounting per intensity."""

    standalone_1gpu: dict  # label -> hours
    a4nn_1gpu: dict
    a4nn_4gpu: dict
    utilization_4gpu: dict

    def saved_hours(self, intensity: str) -> float:
        return self.standalone_1gpu[intensity] - self.a4nn_1gpu[intensity]

    def speedup(self, intensity: str) -> float:
        return self.a4nn_1gpu[intensity] / self.a4nn_4gpu[intensity]


def run_fig9(*, seed: int = DEFAULT_SEED) -> Fig9Result:
    """Simulate the three wall-time bars per intensity."""
    standalone: dict[str, float] = {}
    one: dict[str, float] = {}
    four: dict[str, float] = {}
    util: dict[str, float] = {}
    for intensity in BeamIntensity:
        comparison = get_comparison(intensity, seed=seed)
        standalone[intensity.label] = comparison.standalone.walltime[1].wall_hours
        one[intensity.label] = comparison.a4nn.walltime[1].wall_hours
        four[intensity.label] = comparison.a4nn.walltime[4].wall_hours
        util[intensity.label] = comparison.a4nn.walltime[4].utilization
    return Fig9Result(
        standalone_1gpu=standalone, a4nn_1gpu=one, a4nn_4gpu=four, utilization_4gpu=util
    )


def format_fig9(result: Fig9Result) -> str:
    """Wall-time table with the scaling shape checks."""
    table = ReportTable(
        "intensity",
        "standalone h",
        "a4nn 1-gpu h",
        "a4nn 4-gpu h",
        "saved h (paper)",
        "saved h (measured)",
        "speedup (paper)",
        "speedup (measured)",
    )
    for intensity in BeamIntensity:
        label = intensity.label
        table.row(
            label,
            result.standalone_1gpu[label],
            result.a4nn_1gpu[label],
            result.a4nn_4gpu[label],
            PAPER_WALLTIME_SAVED_HOURS[label],
            result.saved_hours(label),
            PAPER_SPEEDUP_4GPU[label],
            result.speedup(label),
        )
    saved = {i.label: result.saved_hours(i.label) for i in BeamIntensity}
    speedups = {i.label: result.speedup(i.label) for i in BeamIntensity}
    checks = [
        shape_check("A4NN saves wall time on every intensity", all(v > 0 for v in saved.values())),
        shape_check(
            "low saves the fewest hours",
            saved["low"] < saved["medium"] and saved["low"] < saved["high"],
        ),
        shape_check(
            "near-linear 4-GPU speedup (> 3x everywhere)",
            all(s > 3.0 for s in speedups.values()),
        ),
        shape_check(
            "speedup stays sub-linear (< 4x, barrier downtime)",
            all(s < 4.0 for s in speedups.values()),
        ),
    ]
    return "\n".join([table.render("Figure 9: wall times"), *checks])
