"""Command-line interface for the A4NN workflow.

Mirrors the paper's user-interface layer (§2.6): NAS settings, the data
path, and prediction-engine settings are supplied as one JSON document
(or built from flags), and runs are launched, compared, and analyzed
without writing Python.

Usage::

    python -m repro run --intensity medium --mode surrogate --commons ./commons
    python -m repro compare --intensity high --seed 7
    python -m repro analyze --commons ./commons --run-id a4nn_surrogate_medium_seed42
    python -m repro report --commons ./commons
    python -m repro verify --commons ./commons
    python -m repro config --intensity low > low.json
    python -m repro run --config low.json
    python -m repro check src/ --format=json
    python -m repro check --list-rules
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

from repro.analysis import (
    CommonsQuery,
    flops_accuracy_correlation,
    pareto_frontier,
    prediction_error_summary,
    sparkline,
    termination_histogram,
    write_run_report,
)
from repro.experiments.reporting import ReportTable
from repro.lineage import DataCommons, verify_run
from repro.scheduler.faults import FaultInjectionConfig, FaultPolicy
from repro.tooling import (
    all_rules,
    apply_fixes,
    markdown_catalog,
    render_json,
    render_sarif,
    render_text,
    run_check,
    write_baseline,
)
from repro.utils.io import read_json
from repro.utils.logging import configure_logging
from repro.utils.timing import format_hours
from repro.workflow import WorkflowConfig, run_comparison, run_workflow
from repro.xfel import BeamIntensity, DatasetConfig

__all__ = ["main", "build_parser"]


def _fault_settings_from_args(args: argparse.Namespace):
    """(FaultPolicy | None, FaultInjectionConfig | None) from CLI flags.

    Any fault flag enables the policy (with defaults for the rest);
    ``--inject-faults`` alone also enables it, since injection without a
    policy would abort the run on the first injected fault.
    """
    wants_policy = any(
        value is not None
        for value in (args.max_retries, args.eval_timeout, args.retry_backoff)
    )
    injection = None
    if args.inject_faults:
        injection = FaultInjectionConfig(
            rate=args.inject_faults,
            modes=tuple(args.inject_modes.split(",")),
        )
        wants_policy = True
    if not wants_policy:
        return None, None
    defaults = FaultPolicy()
    policy = FaultPolicy(
        max_retries=defaults.max_retries if args.max_retries is None else args.max_retries,
        backoff_seconds=defaults.backoff_seconds
        if args.retry_backoff is None
        else args.retry_backoff,
        timeout_seconds=args.eval_timeout,
    )
    return policy, injection


def _fastpath_overrides(args: argparse.Namespace) -> dict:
    """Evaluation fast-path / backend settings given explicitly on the CLI."""
    overrides = {}
    if args.dtype is not None:
        overrides["dtype"] = args.dtype
    if args.rng_keying is not None:
        overrides["rng_keying"] = args.rng_keying
    if args.eval_cache is not None:
        overrides["eval_cache"] = args.eval_cache
    if args.arena is not None:
        overrides["arena"] = args.arena
    if args.sanitize_writes:
        overrides["sanitize_writes"] = True
    if args.backend is not None:
        overrides["backend"] = args.backend
    if args.n_workers is not None:
        overrides["n_workers"] = args.n_workers
    if args.surrogate is not None:
        from repro.nas.surrogate import SurrogateConfig

        overrides["surrogate"] = (
            SurrogateConfig() if args.surrogate == "rank" else None
        )
    return overrides


def _nas_overrides(args: argparse.Namespace) -> dict:
    """Evolution-loop settings given explicitly on the CLI (nested in nas)."""
    overrides = {}
    if args.evolution is not None:
        overrides["evolution"] = args.evolution
    if args.steady_lag is not None:
        overrides["steady_lag"] = args.steady_lag
    return overrides


def _config_from_args(args: argparse.Namespace) -> WorkflowConfig:
    faults, fault_injection = _fault_settings_from_args(args)
    overrides = _fastpath_overrides(args)
    nas_overrides = _nas_overrides(args)
    if args.config:
        config = WorkflowConfig.from_dict(read_json(args.config))
        if faults is not None or fault_injection is not None:
            # CLI fault flags override the document's fault settings
            config = dataclasses.replace(
                config,
                faults=faults if faults is not None else config.faults,
                fault_injection=fault_injection
                if fault_injection is not None
                else config.fault_injection,
            )
        if overrides:
            config = dataclasses.replace(config, **overrides)
        if nas_overrides:
            config = dataclasses.replace(
                config, nas=dataclasses.replace(config.nas, **nas_overrides)
            )
        return config
    config = WorkflowConfig(
        dataset=DatasetConfig(intensity=BeamIntensity.from_label(args.intensity)),
        mode=args.mode,
        seed=args.seed,
        sanitize=args.sanitize,
        faults=faults,
        fault_injection=fault_injection,
        **overrides,
    )
    if nas_overrides:
        config = dataclasses.replace(
            config, nas=dataclasses.replace(config.nas, **nas_overrides)
        )
    return config


def _add_common_run_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--config", type=Path, help="JSON WorkflowConfig document")
    parser.add_argument(
        "--intensity", default="medium", choices=[m.label for m in BeamIntensity]
    )
    parser.add_argument("--mode", default="surrogate", choices=["surrogate", "real"])
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--commons", type=Path, help="data-commons directory")
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="attach the runtime numerical sanitizer to trained networks (real mode)",
    )
    parser.add_argument(
        "--sanitize-writes",
        action="store_true",
        help="attach the runtime write guard to trained networks (real mode): "
        "borrowed inter-layer tensors become read-only around layer calls, "
        "so aliasing writes raise a guarded-write fault instead of silently "
        "corrupting a neighbouring buffer",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        help="enable the fault policy: retries per failing evaluation (default 2)",
    )
    parser.add_argument(
        "--eval-timeout",
        type=float,
        help="enable the fault policy: per-evaluation timeout in seconds",
    )
    parser.add_argument(
        "--retry-backoff",
        type=float,
        help="enable the fault policy: base backoff seconds (doubles per retry)",
    )
    parser.add_argument(
        "--inject-faults",
        type=float,
        default=0.0,
        metavar="RATE",
        help="deterministically inject faults into this fraction of evaluation "
        "attempts (enables the fault policy; test harness)",
    )
    parser.add_argument(
        "--inject-modes",
        default="crash,hang,nan",
        help="comma-separated fault modes to inject (crash, hang, nan)",
    )
    parser.add_argument(
        "--dtype",
        choices=["float32", "float64"],
        help="compute dtype for real-mode evaluation (new runs default to "
        "float32; float64 reproduces historical runs bit-exactly)",
    )
    parser.add_argument(
        "--rng-keying",
        choices=["model", "genome"],
        help="evaluation RNG identity: 'genome' (new-run default) makes "
        "duplicate architectures cacheable; 'model' replays legacy runs",
    )
    parser.add_argument(
        "--eval-cache",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="memoize evaluations of duplicate architectures "
        "(on by default for new runs; requires --rng-keying genome)",
    )
    parser.add_argument(
        "--arena",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="train real-mode networks on the buffer-arena kernel fast path "
        "(default: on for float32, off for float64 — the byte-exact "
        "replay dtype)",
    )
    parser.add_argument(
        "--backend",
        choices=["serial", "thread", "process"],
        help="generation-execution backend: 'serial' (inline loop), "
        "'thread' (FIFO thread pool; default), or 'process' (spawned "
        "workers sharing the dataset through shared memory, with "
        "hard-kill timeouts)",
    )
    parser.add_argument(
        "--n-workers",
        type=int,
        help="concurrent evaluations per generation (default 1)",
    )
    parser.add_argument(
        "--surrogate",
        choices=["off", "rank"],
        help="surrogate pre-ranking over the lineage commons: 'rank' trains "
        "a cross-architecture fitness predictor online and spends full "
        "epoch budgets only on predicted winners (predicted losers get a "
        "short probe); 'off' (the default) reproduces pre-surrogate runs "
        "byte-identically",
    )
    parser.add_argument(
        "--evolution",
        choices=["barrier", "steady"],
        help="evolution loop: 'barrier' (generational; default) or 'steady' "
        "(asynchronous steady-state under a deterministic logical clock — "
        "no generation-boundary downtime)",
    )
    parser.add_argument(
        "--steady-lag",
        type=int,
        help="steady-state breeding lag (in-flight window); determinism "
        "depends only on (seed, lag). Defaults to --n-workers",
    )


def _cmd_run(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    result = run_workflow(config, commons_path=args.commons)
    budget = result.search.epoch_budget
    print(f"run id            : {result.run_id}")
    print(f"networks evaluated: {len(result.search.archive)}")
    if config.faults is not None:
        print(f"quarantined       : {result.search.n_quarantined}")
    if config.eval_cache:
        hits = sum(g.n_cache_hits for g in result.search.generations)
        print(f"cache hits        : {hits}")
    print(
        f"epochs            : {result.total_epochs_trained}/{budget} "
        f"({100 * result.epochs_saved_fraction():.1f}% saved)"
    )
    if config.surrogate is not None:
        probed = sum(
            1 for m in result.search.archive if m.budget_assigned is not None
        )
        print(
            f"surrogate         : {probed} candidates probed/skipped, "
            f"{result.total_epochs_skipped} epochs skipped"
        )
    for n_gpus, report in sorted(result.walltime.items()):
        print(
            f"wall time {n_gpus} gpu  : {format_hours(report.wall_seconds)} "
            f"(utilization {100 * report.utilization:.0f}%)"
        )
    print(f"best accuracy     : {result.search.population.best_fitness():.2f}%")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    comparison = run_comparison(config, commons_path=args.commons)
    table = ReportTable("metric", "standalone", "A4NN")
    table.row(
        "epochs trained",
        comparison.standalone.total_epochs_trained,
        comparison.a4nn.total_epochs_trained,
    )
    table.row(
        "wall time 1 gpu (h)",
        comparison.standalone.walltime[1].wall_hours,
        comparison.a4nn.walltime[1].wall_hours,
    )
    table.row(
        "best accuracy %",
        comparison.standalone.search.population.best_fitness(),
        comparison.a4nn.search.population.best_fitness(),
    )
    print(table.render(f"A4NN vs standalone ({config.intensity.label}, seed {config.seed})"))
    print(f"epochs saved   : {comparison.epochs_saved_percent:.1f}%")
    print(f"hours saved    : {comparison.walltime_saved_hours(1):.1f} (1 gpu)")
    if 4 in comparison.a4nn.walltime:
        print(f"4-gpu speedup  : {comparison.speedup(1, 4):.2f}x")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    commons = DataCommons(args.commons)
    run_ids = commons.run_ids()
    if not run_ids:
        print(f"no runs published under {args.commons}", file=sys.stderr)
        return 1
    run_id = args.run_id or run_ids[0]
    records = commons.load_models(run_id)
    query = CommonsQuery(records)

    print(f"run {run_id}: {len(records)} models")
    summary = termination_histogram(records, max_epochs=records[0].max_epochs or 25)
    print(
        f"terminated early  : {summary.percent_terminated:.0f}% "
        f"(mean e_t {summary.mean_termination_epoch:.1f})"
    )
    print(f"mean fitness      : {query.mean_fitness():.2f}%")
    corr = flops_accuracy_correlation(records)
    print(f"flops~accuracy rho: {corr.rho:+.2f} (p={corr.p_value:.3f})")
    try:
        errors = prediction_error_summary(records)
        print(f"prediction |err|  : {errors.mean_abs_error:.2f}% mean over {errors.n} models")
    except ValueError:
        print("prediction |err|  : n/a (no early-terminated models)")
    print("pareto frontier   :")
    for point in pareto_frontier(records):
        print(f"  model {point.model_id:4d}: {point.fitness:6.2f}%  {point.flops / 1e6:8.2f} MFLOPs")
    best = query.top_by_fitness(1)[0]
    print(f"best model {best.model_id} curve: {sparkline(best.fitness_history)}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    commons = DataCommons(args.commons)
    run_ids = [args.run_id] if args.run_id else commons.run_ids()
    if not run_ids:
        print(f"no runs published under {args.commons}", file=sys.stderr)
        return 1
    all_match = True
    for run_id in run_ids:
        report = verify_run(commons, run_id)
        print(report.summary())
        all_match &= report.matches
    return 0 if all_match else 2


def _cmd_report(args: argparse.Namespace) -> int:
    commons = DataCommons(args.commons)
    run_ids = commons.run_ids()
    if not run_ids:
        print(f"no runs published under {args.commons}", file=sys.stderr)
        return 1
    run_id = args.run_id or run_ids[0]
    out_path = args.output or (Path(args.commons) / f"{run_id}_report.md")
    path = write_run_report(commons, run_id, out_path)
    print(f"wrote {path}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    if args.list_rules:
        if args.format == "md":
            print(markdown_catalog())
        else:
            for rule in all_rules():
                print(f"{rule.rule_id}  [{rule.category}]  {rule.description}")
        return 0
    if args.format == "md":
        print("--format md is only valid with --list-rules", file=sys.stderr)
        return 2
    paths = args.paths or [Path(__file__).parent]
    select = args.select.split(",") if args.select else None
    ignore = args.ignore.split(",") if args.ignore else None
    cache_dir = None if args.no_cache else args.cache_dir
    baseline = None
    if not args.update_baseline and args.baseline.exists():
        baseline = args.baseline

    def check() -> "object":
        return run_check(
            paths,
            select=select,
            ignore=ignore,
            cache_dir=cache_dir,
            baseline=baseline,
            jobs=args.jobs,
        )

    try:
        result = check()
        if args.fix:
            outcome = apply_fixes(result.diagnostics + result.grandfathered)
            for path, n in sorted(outcome.applied.items()):
                print(f"fixed {n} finding(s) in {path}")
            for path, fix, reason in outcome.skipped:
                print(f"skipped a fix in {path}: {reason}", file=sys.stderr)
            if outcome.n_applied:
                result = check()
    except (FileNotFoundError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.update_baseline:
        write_baseline(result.diagnostics, args.baseline)
        print(
            f"wrote {args.baseline} grandfathering {len(result.diagnostics)} finding(s)"
        )
        return 0
    cache_note = f"cache: {result.n_cache_hits} hit(s), {result.n_analyzed} analyzed"
    if args.format == "json":
        print(render_json(result.diagnostics))
    elif args.format == "sarif":
        print(render_sarif(result.diagnostics, all_rules()))
    elif result.diagnostics:
        print(render_text(result.diagnostics))
        print(f"({cache_note})")
    else:
        note = f" ({len(result.grandfathered)} grandfathered)" if result.grandfathered else ""
        print(f"a4nn check: {result.n_files} file(s) clean{note} ({cache_note})")
    return result.exit_code


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import BenchReport, compare_reports, run_bench

    if args.scaling:
        return _cmd_bench_scaling(args)
    if args.check:
        return _cmd_bench_check(args)
    report = run_bench(
        seed=args.seed,
        repeats=args.repeats,
        skip_kernels=args.skip_kernels,
        kernels_only=args.kernels_only,
    )
    print(report.summary())
    if args.output:
        path = report.save(args.output)
        print(f"wrote {path}")
    if args.compare:
        committed = BenchReport.load(args.compare)
        print(compare_reports(report, committed))
    if (
        args.min_speedup is not None
        and report.evalpath
        and report.speedup < args.min_speedup
    ):
        print(
            f"FAIL: end-to-end speedup {report.speedup:.2f}x is below the "
            f"required {args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_bench_scaling(args: argparse.Namespace) -> int:
    from repro.bench import ScalingReport, compare_scaling, run_scaling

    report = run_scaling(seed=args.seed)
    print(report.summary())
    if args.output:
        path = report.save(args.output)
        print(f"wrote {path}")
    if args.compare:
        committed = ScalingReport.load(args.compare)
        diff = compare_scaling(report, committed)
        print(diff)
        if "DIFF" in diff:
            return 1
    if not report.consistent():
        print(
            "FAIL: search outcome differs across execution backends",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_bench_check(args: argparse.Namespace) -> int:
    from repro.bench import CheckBenchReport, compare_checkbench, run_checkbench

    report = run_checkbench(repeats=args.repeats)
    print(report.summary())
    if args.output:
        path = report.save(args.output)
        print(f"wrote {path}")
    if args.compare:
        committed = CheckBenchReport.load(args.compare)
        print(compare_checkbench(report, committed))
    if report.warm_seconds >= report.cold_seconds:
        print(
            "FAIL: warm-cache analysis is not faster than cold",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_config(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    json.dump(config.to_dict(), sys.stdout, indent=2, sort_keys=True)
    print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="A4NN: composable NAS workflow with in situ fitness prediction",
    )
    parser.add_argument("-v", "--verbose", action="store_true", help="enable INFO logging")
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run one A4NN workflow")
    _add_common_run_flags(run_parser)
    run_parser.set_defaults(handler=_cmd_run)

    compare_parser = subparsers.add_parser(
        "compare", help="run A4NN and the standalone-NAS baseline"
    )
    _add_common_run_flags(compare_parser)
    compare_parser.set_defaults(handler=_cmd_compare)

    analyze_parser = subparsers.add_parser("analyze", help="analyze a data commons")
    analyze_parser.add_argument("--commons", type=Path, required=True)
    analyze_parser.add_argument("--run-id", help="defaults to the first published run")
    analyze_parser.set_defaults(handler=_cmd_analyze)

    verify_parser = subparsers.add_parser(
        "verify", help="replay published runs and verify their record trails"
    )
    verify_parser.add_argument("--commons", type=Path, required=True)
    verify_parser.add_argument("--run-id", help="defaults to every published run")
    verify_parser.set_defaults(handler=_cmd_verify)

    report_parser = subparsers.add_parser(
        "report", help="write a Markdown analysis report for a run"
    )
    report_parser.add_argument("--commons", type=Path, required=True)
    report_parser.add_argument("--run-id", help="defaults to the first published run")
    report_parser.add_argument("--output", type=Path, help="report path (.md)")
    report_parser.set_defaults(handler=_cmd_report)

    config_parser = subparsers.add_parser(
        "config", help="emit a WorkflowConfig JSON document"
    )
    _add_common_run_flags(config_parser)
    config_parser.set_defaults(handler=_cmd_config)

    bench_parser = subparsers.add_parser(
        "bench", help="benchmark the evaluation fast path (kernels + end-to-end)"
    )
    bench_parser.add_argument("--seed", type=int, default=21)
    bench_parser.add_argument(
        "--repeats", type=int, default=5, help="timing repeats per kernel"
    )
    bench_parser.add_argument(
        "--skip-kernels", action="store_true", help="run only the end-to-end benchmark"
    )
    bench_parser.add_argument(
        "--kernels-only",
        action="store_true",
        help="run only the kernel tier (skips the slow end-to-end searches; "
        "the CI smoke job and 'make bench-kernels' use this)",
    )
    bench_parser.add_argument(
        "--scaling",
        action="store_true",
        help="run the execution-backend scaling sweep instead "
        "(serial/thread/process × worker counts; BENCH_scaling.json)",
    )
    bench_parser.add_argument(
        "--check",
        action="store_true",
        help="benchmark the static-analysis engine instead: cold vs "
        "warm-cache 'a4nn check' timings (BENCH_check.json)",
    )
    bench_parser.add_argument(
        "--output", type=Path, help="write the bench document (BENCH_evalpath.json)"
    )
    bench_parser.add_argument(
        "--compare", type=Path, help="diff against a committed bench document"
    )
    bench_parser.add_argument(
        "--min-speedup",
        type=float,
        help="exit nonzero when the end-to-end speedup falls below this factor",
    )
    bench_parser.set_defaults(handler=_cmd_bench)

    check_parser = subparsers.add_parser(
        "check", help="run the A4NN static-analysis rule catalog over source files"
    )
    check_parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files/directories to lint (default: the installed repro package)",
    )
    check_parser.add_argument(
        "--format",
        choices=["text", "json", "sarif", "md"],
        default="text",
        help="diagnostic format (md is the README rule-catalog table, "
        "only with --list-rules)",
    )
    check_parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    check_parser.add_argument("--select", help="comma-separated rule ids to run exclusively")
    check_parser.add_argument("--ignore", help="comma-separated rule ids to skip")
    check_parser.add_argument(
        "--cache-dir",
        type=Path,
        default=Path(".a4nn-cache"),
        help="incremental analysis cache location (default .a4nn-cache)",
    )
    check_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental cache (always re-parse everything)",
    )
    check_parser.add_argument(
        "--baseline",
        type=Path,
        default=Path(".a4nn-baseline.json"),
        help="baseline of grandfathered findings (applied when the file exists)",
    )
    check_parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="record the current findings as the new grandfathered baseline",
    )
    check_parser.add_argument(
        "--fix",
        action="store_true",
        help="apply the mechanical autofixes attached to findings, then re-check",
    )
    check_parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="parallelize the cold per-file parse/lint stage over N "
        "processes (0 = one per CPU; cross-file rules stay single-pass)",
    )
    check_parser.set_defaults(handler=_cmd_check)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.verbose:
        configure_logging()
    return args.handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
