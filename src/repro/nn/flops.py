"""FLOP accounting.

NSGA-Net's second objective is minimizing inference cost; the paper
reports FLOPS as "a proxy for energy consumed by a neural architecture".
We count forward-pass floating-point operations per sample (one
multiply-accumulate = 2 FLOPs) layer by layer, using the same shape
propagation the network uses for summaries.  The paper's plots use
*MFLOPs*-scale numbers (hundreds); :func:`network_mflops` provides that
unit.
"""

from __future__ import annotations

from repro.nn.network import Network

__all__ = ["network_flops", "network_mflops", "layer_flops_table"]


def layer_flops_table(network: Network) -> list[dict]:
    """Per-layer rows: index, repr, output shape, param count, FLOPs."""
    shape = network._require_input_shape()
    rows = []
    for idx, layer in enumerate(network.layers):
        flops = layer.flops(shape)
        shape_out = layer.output_shape(shape)
        rows.append(
            {
                "index": idx,
                "layer": type(layer).__name__,
                "config": layer.get_config(),
                "input_shape": tuple(shape),
                "output_shape": tuple(shape_out),
                "params": layer.n_parameters(),
                "flops": int(flops),
            }
        )
        shape = shape_out
    return rows


def network_flops(network: Network) -> int:
    """Total forward FLOPs per sample."""
    return sum(row["flops"] for row in layer_flops_table(network))


def network_mflops(network: Network) -> float:
    """Total forward FLOPs per sample, in millions (paper's plotted unit)."""
    return network_flops(network) / 1e6
