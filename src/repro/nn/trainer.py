"""Epoch-wise training driver implementing the Algorithm-1 model interface.

The prediction engine interacts with training strictly through the
:class:`~repro.core.plugin.TrainableModel` protocol — one ``train()``
call per epoch, ``validate()`` returning percent fitness.  This module
provides that interface for real NumPy networks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.losses import Loss, SoftmaxCrossEntropy
from repro.nn.metrics import accuracy_percent
from repro.nn.network import Network
from repro.nn.optimizers import Optimizer, SGD, clip_grad_norm
from repro.utils.rng import fallback_rng
from repro.utils.timing import Stopwatch
from repro.utils.validation import ensure_positive

__all__ = ["Trainer", "EpochStats"]


@dataclass
class EpochStats:
    """Per-epoch record persisted by the lineage tracker."""

    epoch: int
    train_loss: float
    train_accuracy: float
    wall_seconds: float


@dataclass
class Trainer:
    """Mini-batch trainer for one network on one dataset split.

    Parameters
    ----------
    network:
        The model under training.
    x_train, y_train, x_val, y_val:
        Data splits; images are NCHW float arrays, labels integer.
    optimizer:
        Defaults to SGD with momentum 0.9 at ``lr=0.01``.
    loss:
        Defaults to softmax cross-entropy.
    batch_size:
        Mini-batch size; the last ragged batch is kept.
    rng:
        Generator for epoch shuffling (deterministic training).
    schedule:
        Optional :class:`~repro.nn.schedules.LRSchedule`; stepped once
        per epoch after training.
    max_grad_norm:
        Optional global gradient-norm clip applied before each update.
    sanitizer:
        Optional :class:`~repro.tooling.sanitizer.Sanitizer` (duck-
        typed); when set, every step's loss and parameter gradients are
        asserted finite, raising ``NumericalFault`` on violation.
    write_guard:
        Optional :class:`~repro.tooling.sanitizer.WriteGuard` (duck-
        typed); attached to the network it flips borrowed inter-layer
        tensors read-only around layer calls.  The trainer only keeps
        its ``epoch`` stamp current so trips carry their position.
    """

    network: Network
    x_train: np.ndarray
    y_train: np.ndarray
    x_val: np.ndarray
    y_val: np.ndarray
    optimizer: Optimizer | None = None
    loss: Loss | None = None
    batch_size: int = 32
    rng: np.random.Generator | None = None
    history: list = field(default_factory=list)
    schedule: object | None = None
    max_grad_norm: float | None = None
    sanitizer: object | None = None
    write_guard: object | None = None

    def __post_init__(self) -> None:
        ensure_positive(self.batch_size, "batch_size")
        if len(self.x_train) != len(self.y_train):
            raise ValueError(
                f"train split mismatch: {len(self.x_train)} images, {len(self.y_train)} labels"
            )
        if len(self.x_val) != len(self.y_val):
            raise ValueError(
                f"val split mismatch: {len(self.x_val)} images, {len(self.y_val)} labels"
            )
        if len(self.x_train) == 0 or len(self.x_val) == 0:
            raise ValueError("train and validation splits must be non-empty")
        if self.optimizer is None:
            self.optimizer = SGD(self.network, lr=0.01, momentum=0.9)
        if self.loss is None:
            self.loss = SoftmaxCrossEntropy()
        if self.rng is None:
            self.rng = fallback_rng()

    @property
    def epoch(self) -> int:
        """Epochs completed so far."""
        return len(self.history)

    def _gather_batch(self, batch: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Materialize one shuffled mini-batch.

        With the network bound to a :class:`~repro.nn.arena.BufferArena`
        the gather runs ``np.take(..., out=...)`` into pinned buffers
        (the ragged last batch keys its own buffer by shape); unbound,
        it is the historical allocating fancy index.  The gathered
        values are identical either way, so training math is unaffected.
        """
        arena = self.network.arena
        if arena is None:
            return self.x_train[batch], self.y_train[batch]
        xb = arena.buffer(
            "trainer", "xb", (len(batch),) + self.x_train.shape[1:], self.x_train.dtype
        )
        np.take(self.x_train, batch, axis=0, out=xb)
        yb = arena.buffer("trainer", "yb", (len(batch),), self.y_train.dtype)
        np.take(self.y_train, batch, axis=0, out=yb)
        return xb, yb  # a4nn: noqa(ALIAS002) -- batch buffers are consumed within the epoch step before the next gather reuses them

    def train(self) -> EpochStats:
        """Run one full training epoch (shuffle, batch, update)."""
        clock = Stopwatch().start()
        if self.sanitizer is not None:
            self.sanitizer.epoch = self.epoch + 1
        if self.write_guard is not None:
            self.write_guard.epoch = self.epoch + 1
        order = self.rng.permutation(len(self.x_train))
        losses: list[float] = []
        correct = 0
        for start in range(0, len(order), self.batch_size):
            batch = order[start : start + self.batch_size]
            x, y = self._gather_batch(batch)
            self.optimizer.zero_grad()
            logits = self.network.forward(x, training=True)
            value, grad = self.loss(logits, y)
            if self.sanitizer is not None:
                self.sanitizer.check_loss(value)
            self.network.backward(grad)
            if self.max_grad_norm is not None:
                clip_grad_norm(self.network, self.max_grad_norm)
            if self.sanitizer is not None:
                self.sanitizer.check_parameter_gradients(self.network)
            self.optimizer.step()
            losses.append(value)
            correct += int(np.sum(logits.argmax(axis=1) == y))
        clock.stop()
        if self.schedule is not None:
            self.schedule.step()
        stats = EpochStats(
            epoch=self.epoch + 1,
            train_loss=float(np.mean(losses)),
            train_accuracy=100.0 * correct / len(order),
            wall_seconds=clock.total,
        )
        self.history.append(stats)
        return stats

    def validate(self) -> float:
        """Validation accuracy in percent — the workflow's fitness."""
        batch_size = max(self.batch_size, 64)
        arena = self.network.arena
        if arena is None:
            logits = self.network.predict(self.x_val, batch_size=batch_size)
            return accuracy_percent(logits, self.y_val)
        # arena inference: each chunk's output lives in the head layer's
        # pinned buffer, so copy it into a pinned full-split logit table
        # before the next forward overwrites it
        n = len(self.x_val)
        logits = None
        for i in range(0, n, batch_size):
            out = self.network.forward(self.x_val[i : i + batch_size], training=False)
            if logits is None:
                logits = arena.buffer("trainer", "val_logits", (n,) + out.shape[1:], out.dtype)
            logits[i : i + out.shape[0]] = out
        return accuracy_percent(logits, self.y_val)
