"""Model checkpointing.

The workflow orchestrator "writes the partially trained NN's state to
memory, such that each model can be loaded and re-evaluated from any
point in the training phase" (§2.2.2).  A checkpoint is two artifacts:

* an architecture document (JSON) — layer class names and configs plus
  the input shape, enough to rebuild the network structure; and
* a state archive (NPZ) — every trainable parameter plus batch-norm
  running statistics, keyed by ``<layer idx>.<name>``.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.nn.layers import LAYER_TYPES
from repro.nn.network import Network
from repro.utils.io import atomic_write_json, atomic_write_npz, read_json, read_npz

__all__ = [
    "architecture_config",
    "network_from_config",
    "state_dict",
    "load_state_dict",
    "save_checkpoint",
    "load_checkpoint",
]


def architecture_config(network: Network) -> dict:
    """Structure-only description sufficient to rebuild the network."""
    return {
        "name": network.name,
        "input_shape": list(network.input_shape) if network.input_shape else None,
        "layers": [
            {"type": type(layer).__name__, "config": layer.get_config()}
            for layer in network.layers
        ],
    }


def network_from_config(config: dict) -> Network:
    """Rebuild a network's structure (weights are freshly initialized)."""
    layers = []
    for spec in config["layers"]:
        try:
            cls = LAYER_TYPES[spec["type"]]
        except KeyError:
            raise ValueError(f"unknown layer type {spec['type']!r} in checkpoint") from None
        layers.append(cls(**spec["config"]))
    input_shape = tuple(config["input_shape"]) if config.get("input_shape") else None
    return Network(layers, input_shape=input_shape, name=config.get("name", "network"))


def state_dict(network: Network) -> dict[str, np.ndarray]:
    """All mutable arrays: parameters + per-layer non-trainable state."""
    state = {name: param.value.copy() for name, param in network.parameters()}
    for idx, layer in enumerate(network.layers):
        for key, value in layer.state().items():
            state[f"{idx}.{key}"] = np.asarray(value)
    return state


def load_state_dict(network: Network, state: dict[str, np.ndarray]) -> Network:
    """Load arrays into an architecture-compatible network, strictly."""
    # a4nn: mutates(network) -- restoring a checkpoint rewrites parameters in place by contract
    remaining = dict(state)
    for name, param in network.parameters():
        if name not in remaining:
            raise KeyError(f"checkpoint missing parameter {name!r}")
        value = np.asarray(remaining.pop(name))
        if value.shape != param.value.shape:
            raise ValueError(
                f"shape mismatch for {name!r}: checkpoint {value.shape} vs model {param.value.shape}"
            )
        # cast into the model's compute dtype (set at construction from
        # the layer config), not a hard-coded precision: a float32
        # network restored from a float64 archive stays float32
        param.value = value.astype(param.value.dtype)
        param.grad = np.zeros_like(param.value)
    for idx, layer in enumerate(network.layers):
        expected = layer.state()
        collected = {}
        for key in expected:
            full = f"{idx}.{key}"
            if full not in remaining:
                raise KeyError(f"checkpoint missing layer state {full!r}")
            collected[key] = remaining.pop(full)
        if collected:
            layer.load_state(collected)
    if remaining:
        raise KeyError(f"checkpoint has unused entries: {sorted(remaining)}")
    return network


def save_checkpoint(network: Network, directory: str | Path, *, tag: str = "checkpoint") -> dict:
    """Persist architecture + state under ``directory`` with file stem ``tag``.

    Returns the paths written, for lineage records.
    """
    directory = Path(directory)
    arch_path = atomic_write_json(directory / f"{tag}.arch.json", architecture_config(network))
    state_path = atomic_write_npz(directory / f"{tag}.state.npz", state_dict(network))
    return {"architecture": str(arch_path), "state": str(state_path)}


def load_checkpoint(directory: str | Path, *, tag: str = "checkpoint") -> Network:
    """Rebuild the network saved by :func:`save_checkpoint`."""
    directory = Path(directory)
    network = network_from_config(read_json(directory / f"{tag}.arch.json"))
    return load_state_dict(network, read_npz(directory / f"{tag}.state.npz"))
