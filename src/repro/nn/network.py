"""Sequential network container.

Architectures decoded from NSGA-Net genomes are directed chains of
stages, so a sequential container suffices (skip connections inside a
phase are materialized by the decoder as summed channel stacks; see
:mod:`repro.nas.decoder`).
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.nn.layers.base import Layer, Parameter

__all__ = ["Network"]


class Network:
    """An ordered stack of layers with whole-network train/infer passes.

    Parameters
    ----------
    layers:
        Layers applied in order.
    input_shape:
        Per-sample input shape, e.g. ``(1, 32, 32)`` for grayscale
        images; required for shape/FLOP introspection and summaries.
    name:
        Identifier used in lineage records.
    """

    def __init__(
        self,
        layers: Iterable[Layer] = (),
        *,
        input_shape: tuple | None = None,
        name: str = "network",
    ) -> None:
        self.layers: list[Layer] = list(layers)
        self.input_shape = tuple(input_shape) if input_shape is not None else None
        self.name = str(name)
        # opt-in numerical watchdog (repro.tooling.sanitizer.Sanitizer);
        # duck-typed so nn/ stays decoupled from the tooling package
        self.sanitizer = None
        # opt-in write guard (repro.tooling.sanitizer.WriteGuard): flips
        # borrowed inter-layer tensors read-only around layer calls
        self.write_guard = None
        # opt-in scratch storage (repro.nn.arena.BufferArena); None keeps
        # every layer on the historical allocate-per-call path
        self.arena = None

    def add(self, layer: Layer) -> "Network":
        """Append a layer; returns self for chaining."""
        self.layers.append(layer)
        if self.arena is not None:
            layer.bind_arena(self.arena, owner=str(len(self.layers) - 1))
        return self

    def bind_arena(self, arena) -> "Network":
        """Route every layer's scratch through ``arena`` (fast path).

        Each layer binds under its stack index as the owner key, so no
        two layers can alias each other's buffers.  Pass ``None`` to
        unbind and restore allocate-per-call behaviour.
        """
        self.arena = arena
        for idx, layer in enumerate(self.layers):
            if arena is None:
                layer.unbind_arena()
            else:
                layer.bind_arena(arena, owner=str(idx))
        return self

    # -- computation ---------------------------------------------------------

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the full stack."""
        if self.sanitizer is None and self.write_guard is None:
            for layer in self.layers:
                x = layer.forward(x, training=training)
            return x
        for index, layer in enumerate(self.layers):
            x_in = x
            if self.write_guard is not None:
                x = self.write_guard.guard_forward(index, layer, x, training=training)
            else:
                x = layer.forward(x, training=training)
            if self.sanitizer is not None:
                self.sanitizer.after_layer_forward(index, layer, x_in, x)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Back-propagate from the loss gradient; returns dL/d(input)."""
        if self.sanitizer is None and self.write_guard is None:
            for layer in reversed(self.layers):
                grad = layer.backward(grad)
            return grad
        for index in range(len(self.layers) - 1, -1, -1):
            layer = self.layers[index]
            if self.write_guard is not None:
                grad = self.write_guard.guard_backward(index, layer, grad)
            else:
                grad = layer.backward(grad)
            if self.sanitizer is not None:
                self.sanitizer.after_layer_backward(index, layer, grad)
        return grad

    def predict(self, x: np.ndarray, *, batch_size: int = 256) -> np.ndarray:
        """Inference in eval mode, batched to bound peak memory."""
        outputs = [
            self.forward(x[i : i + batch_size], training=False)
            for i in range(0, len(x), batch_size)
        ]
        return np.concatenate(outputs, axis=0)

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)

    # -- parameters ------------------------------------------------------------

    def parameters(self) -> Iterator[tuple[str, Parameter]]:
        """Iterate ``("<idx>.<name>", parameter)`` over all layers."""
        for idx, layer in enumerate(self.layers):
            for pname, param in layer.parameters():
                yield f"{idx}.{pname}", param

    def n_parameters(self) -> int:
        """Total trainable scalar count."""
        return sum(layer.n_parameters() for layer in self.layers)

    def zero_grad(self) -> None:
        """Reset every parameter gradient."""
        for layer in self.layers:
            layer.zero_grad()

    # -- introspection -----------------------------------------------------------

    def _require_input_shape(self) -> tuple:
        if self.input_shape is None:
            raise RuntimeError(
                "network has no input_shape; pass it to the constructor for "
                "shape/FLOP introspection"
            )
        return self.input_shape

    def layer_shapes(self) -> list[tuple]:
        """Per-sample output shape after each layer."""
        shape = self._require_input_shape()
        shapes = []
        for layer in self.layers:
            shape = layer.output_shape(shape)
            shapes.append(shape)
        return shapes

    def output_shape(self) -> tuple:
        """Per-sample shape produced by the final layer."""
        shapes = self.layer_shapes()
        return shapes[-1] if shapes else self._require_input_shape()

    def flops(self) -> int:
        """Total forward FLOPs per sample (see :mod:`repro.nn.flops`)."""
        from repro.nn.flops import network_flops

        return network_flops(self)

    def summary(self) -> str:
        """Human-readable per-layer table (shapes, params, FLOPs)."""
        from repro.nn.flops import layer_flops_table

        rows = layer_flops_table(self)
        header = f"{'#':>3}  {'layer':<28} {'output shape':<18} {'params':>10} {'flops':>14}"
        lines = [f"Network {self.name!r}", header, "-" * len(header)]
        for row in rows:
            lines.append(
                f"{row['index']:>3}  {row['layer']:<28} {str(row['output_shape']):<18} "
                f"{row['params']:>10,} {row['flops']:>14,}"
            )
        lines.append("-" * len(header))
        lines.append(
            f"total params: {self.n_parameters():,}   total flops/sample: {self.flops():,}"
        )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.layers)

    def __repr__(self) -> str:
        return f"Network(name={self.name!r}, layers={len(self.layers)}, params={self.n_parameters():,})"
