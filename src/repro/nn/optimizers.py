"""Gradient-descent optimizers.

Optimizers operate on the ``(name, Parameter)`` pairs a
:class:`~repro.nn.network.Network` exposes; per-parameter state (momenta)
is keyed by parameter name so that checkpoint/restore round-trips keep
optimizer state aligned with weights.
"""

from __future__ import annotations

import math

import numpy as np

from repro.nn.network import Network
from repro.utils.validation import ensure_non_negative, ensure_positive

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(network: Network, max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.  Standard protection against the
    exploding gradients random NAS architectures occasionally produce.
    """
    # a4nn: mutates(network) -- gradient clipping rescales grads in place by contract
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    total = 0.0
    for _, param in network.parameters():
        total += float(np.sum(param.grad**2))
    norm = math.sqrt(total)
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for _, param in network.parameters():
            param.grad *= scale
    return norm


class Optimizer:
    """Base optimizer bound to a network.

    Updates run fully in place: per-step temporaries live in scratch
    buffers keyed by ``(slot, shape, dtype)``, so parameters sharing a
    shape share a buffer and steady-state steps allocate nothing.  The
    in-place decompositions only commute operands or split fused
    expressions into the identical ufunc sequence, so every update is
    bit-identical to the historical allocating arithmetic.
    """

    def __init__(self, network: Network, lr: float) -> None:
        self.network = network
        self.lr = ensure_positive(float(lr), "lr")
        self._scratch_bufs: dict[tuple, np.ndarray] = {}

    def _scratch(self, slot: str, like: np.ndarray) -> np.ndarray:
        """A reusable uninitialized buffer matching ``like``'s geometry."""
        key = (slot, like.shape, like.dtype.str)
        buf = self._scratch_bufs.get(key)
        if buf is None:
            buf = np.empty(like.shape, dtype=like.dtype)
            self._scratch_bufs[key] = buf
        return buf

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        raise NotImplementedError

    def zero_grad(self) -> None:
        """Convenience passthrough to the network."""
        self.network.zero_grad()


class SGD(Optimizer):
    """SGD with classical momentum and decoupled L2 weight decay."""

    def __init__(
        self,
        network: Network,
        lr: float = 0.01,
        *,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(network, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self.weight_decay = ensure_non_negative(float(weight_decay), "weight_decay")
        self._velocity: dict[str, np.ndarray] = {}

    def step(self) -> None:
        for name, param in self.network.parameters():
            grad = param.grad
            buf = self._scratch("sgd", param.value)
            if self.weight_decay:
                # grad + wd * value, in scratch
                np.multiply(param.value, self.weight_decay, out=buf)
                buf += grad
                grad = buf
            if self.momentum:
                vel = self._velocity.get(name)
                if vel is None:
                    vel = np.zeros_like(param.value)  # a4nn: noqa(PERF003) -- one-time lazy init of persistent state
                    self._velocity[name] = vel
                vel *= self.momentum
                vel += grad
                grad = vel
            # value -= lr * grad (grad may alias buf; multiply handles it)
            np.multiply(grad, self.lr, out=buf)
            param.value -= buf


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(
        self,
        network: Network,
        lr: float = 1e-3,
        *,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(network, lr)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {beta1}, {beta2}")
        self.beta1, self.beta2 = float(beta1), float(beta2)
        self.eps = ensure_positive(float(eps), "eps")
        self.weight_decay = ensure_non_negative(float(weight_decay), "weight_decay")
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for name, param in self.network.parameters():
            grad = param.grad
            s1 = self._scratch("adam1", param.value)
            s2 = self._scratch("adam2", param.value)
            if self.weight_decay:
                np.multiply(param.value, self.weight_decay, out=s1)
                s1 += grad
                grad = s1
            m = self._m.setdefault(name, np.zeros_like(param.value))  # a4nn: noqa(PERF003) -- allocates once per parameter
            v = self._v.setdefault(name, np.zeros_like(param.value))  # a4nn: noqa(PERF003) -- allocates once per parameter
            m *= self.beta1
            np.multiply(grad, 1.0 - self.beta1, out=s2)
            m += s2
            v *= self.beta2
            np.power(grad, 2, out=s2)
            s2 *= 1.0 - self.beta2
            v += s2
            # value -= (lr * (m / bias1)) / (sqrt(v / bias2) + eps),
            # replicating the legacy left-to-right evaluation order
            np.divide(v, bias2, out=s2)
            np.sqrt(s2, out=s2)
            s2 += self.eps
            np.divide(m, bias1, out=s1)  # grad is dead; s1 reuse is safe
            s1 *= self.lr
            s1 /= s2
            param.value -= s1
