"""Gradient-descent optimizers.

Optimizers operate on the ``(name, Parameter)`` pairs a
:class:`~repro.nn.network.Network` exposes; per-parameter state (momenta)
is keyed by parameter name so that checkpoint/restore round-trips keep
optimizer state aligned with weights.
"""

from __future__ import annotations

import math

import numpy as np

from repro.nn.network import Network
from repro.utils.validation import ensure_non_negative, ensure_positive

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(network: Network, max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.  Standard protection against the
    exploding gradients random NAS architectures occasionally produce.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    total = 0.0
    for _, param in network.parameters():
        total += float(np.sum(param.grad**2))
    norm = math.sqrt(total)
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for _, param in network.parameters():
            param.grad *= scale
    return norm


class Optimizer:
    """Base optimizer bound to a network."""

    def __init__(self, network: Network, lr: float) -> None:
        self.network = network
        self.lr = ensure_positive(float(lr), "lr")

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        raise NotImplementedError

    def zero_grad(self) -> None:
        """Convenience passthrough to the network."""
        self.network.zero_grad()


class SGD(Optimizer):
    """SGD with classical momentum and decoupled L2 weight decay."""

    def __init__(
        self,
        network: Network,
        lr: float = 0.01,
        *,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(network, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self.weight_decay = ensure_non_negative(float(weight_decay), "weight_decay")
        self._velocity: dict[str, np.ndarray] = {}

    def step(self) -> None:
        for name, param in self.network.parameters():
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.value
            if self.momentum:
                vel = self._velocity.get(name)
                if vel is None:
                    vel = np.zeros_like(param.value)
                vel *= self.momentum
                vel += grad
                self._velocity[name] = vel
                grad = vel
            param.value -= self.lr * grad


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(
        self,
        network: Network,
        lr: float = 1e-3,
        *,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(network, lr)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {beta1}, {beta2}")
        self.beta1, self.beta2 = float(beta1), float(beta2)
        self.eps = ensure_positive(float(eps), "eps")
        self.weight_decay = ensure_non_negative(float(weight_decay), "weight_decay")
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for name, param in self.network.parameters():
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.value
            m = self._m.setdefault(name, np.zeros_like(param.value))
            v = self._v.setdefault(name, np.zeros_like(param.value))
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            param.value -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)
