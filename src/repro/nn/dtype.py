"""Compute-dtype policy for the NumPy NN framework.

All dtype decisions in :mod:`repro.nn` flow through this module: layers,
initializers, and serialization accept an optional ``dtype`` and resolve
it here instead of hard-coding ``np.float32``/``np.float64``.  That
single seam is what lets the workflow flip the whole evaluation path to
float32 (roughly halving BLAS time and memory on the im2col/GEMM hot
loops) while float64 stays available so historical seeded runs replay
bit-exactly.

The framework-level default remains float64 — a bare ``Conv2D(...)``
behaves exactly as before this policy existed.  The float32 fast path is
opted into at the workflow level (``WorkflowConfig.dtype`` /
``--dtype``), which threads the choice down through the decoder into
every layer.

Linter note: this module is the one sanctioned home for narrow-dtype
names inside ``repro.nn`` — NUM003 (narrow dtype outside the policy) and
PERF001 (float64-forcing constructs on the hot path) both exempt it.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SUPPORTED_DTYPES", "DEFAULT_DTYPE", "resolve_dtype", "dtype_label"]

#: Dtypes the compute policy accepts.  float16 stays out: the trainer's
#: loss/accuracy accumulations are not numerically safe in half precision.
SUPPORTED_DTYPES = ("float32", "float64")

#: Framework-level default (backward compatible with the pre-policy code).
DEFAULT_DTYPE = np.dtype("float64")


def resolve_dtype(spec=None, *, default=None) -> np.dtype:
    """Resolve a user-facing dtype spec to a concrete ``np.dtype``.

    Parameters
    ----------
    spec:
        ``None`` (use the default), a string (``"float32"``/``"float64"``),
        or anything ``np.dtype`` accepts.
    default:
        What ``None`` resolves to; defaults to :data:`DEFAULT_DTYPE`.

    Raises
    ------
    ValueError
        If the resolved dtype is not in :data:`SUPPORTED_DTYPES`.
    """
    if spec is None:
        return DEFAULT_DTYPE if default is None else resolve_dtype(default)
    dtype = np.dtype(spec)
    if dtype.name not in SUPPORTED_DTYPES:
        raise ValueError(
            f"unsupported compute dtype {dtype.name!r}; "
            f"supported: {', '.join(SUPPORTED_DTYPES)}"
        )
    return dtype


def dtype_label(spec) -> str:
    """Canonical string label for a dtype spec (for configs and cache keys)."""
    return resolve_dtype(spec).name
