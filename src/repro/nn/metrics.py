"""Classification metrics.

The workflow's fitness measurement is validation accuracy *in percent*
(the prediction analyzer's validity bounds are [0, 100]), so
:func:`accuracy_percent` is the canonical fitness used everywhere.
"""

from __future__ import annotations

import numpy as np

__all__ = ["accuracy", "accuracy_percent", "confusion_matrix", "per_class_accuracy"]


def _labels_from(predictions: np.ndarray) -> np.ndarray:
    """Accept either logits/probabilities (2-D) or hard labels (1-D)."""
    predictions = np.asarray(predictions)
    if predictions.ndim == 2:
        return predictions.argmax(axis=1)
    if predictions.ndim == 1:
        return predictions
    raise ValueError(f"predictions must be 1-D labels or 2-D scores, got {predictions.shape}")


def accuracy(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Fraction correct in [0, 1]."""
    predicted = _labels_from(predictions)
    targets = np.asarray(targets)
    if predicted.shape != targets.shape:
        raise ValueError(f"shape mismatch: {predicted.shape} vs {targets.shape}")
    if len(targets) == 0:
        raise ValueError("cannot compute accuracy of an empty batch")
    return float(np.mean(predicted == targets))


def accuracy_percent(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Percent correct in [0, 100] — the workflow's fitness measurement."""
    return 100.0 * accuracy(predictions, targets)


def confusion_matrix(predictions: np.ndarray, targets: np.ndarray, n_classes: int) -> np.ndarray:
    """Counts matrix ``C[i, j]`` = samples of true class ``i`` predicted ``j``."""
    predicted = _labels_from(predictions)
    targets = np.asarray(targets)
    matrix = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(matrix, (targets, predicted), 1)
    return matrix


def per_class_accuracy(
    predictions: np.ndarray, targets: np.ndarray, n_classes: int
) -> tuple[np.ndarray, np.ndarray]:
    """Recall per class, NaN-free, with an explicit presence mask.

    Returns ``(recall, present)``: classes absent from ``targets``
    report ``0.0`` recall and ``False`` in ``present``, so downstream
    aggregation never has to special-case NaN (use
    ``recall[present].mean()`` for a macro average over seen classes).
    """
    matrix = confusion_matrix(predictions, targets, n_classes)
    totals = matrix.sum(axis=1)
    present = totals > 0
    recall = np.diag(matrix) / np.where(present, totals, 1)
    return recall, present
