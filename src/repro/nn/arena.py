"""Per-network buffer arena: preallocated scratch reused across batches.

The training hot loop historically allocated every intermediate array
fresh — im2col column matrices, layer outputs, gradient images,
optimizer temporaries — dozens of megabyte-scale ``np.zeros``/
``ascontiguousarray`` calls per batch.  :class:`BufferArena` replaces
that with keyed, lazily-allocated, shape-stable storage: a layer asks
for ``(owner, name, shape, dtype)`` and gets the *same* ndarray back on
every batch, so after the first epoch the training loop reaches a
steady state with zero new large allocations.

Design rules (see DESIGN "The buffer arena"):

* **Keying** — buffers are keyed by ``(owner, name, shape, dtype)``.
  Including the shape means a ragged last batch gets its own buffer
  instead of thrashing a single slot between two sizes; steady state is
  reached after one epoch, and :attr:`nbytes` reports the true peak.
* **Ownership** — every layer instance binds with a unique owner string
  (the network wires ``"<layer-idx>"``, composite layers extend it with
  sublayer paths), so two layers can never alias each other's scratch.
* **Lifetime** — a buffer's contents are only guaranteed between the
  owning layer's forward and the matching backward of the *same* batch;
  the next forward may overwrite everything.
* **Opt-out** — an unbound layer (``layer.arena is None``) takes the
  historical allocate-per-call code path, byte-for-byte.  Float64
  replay of pre-arena runs relies on this.

The arena is deliberately not picklable state: it is rebuilt per
evaluation (the process backend's :class:`~repro.scheduler.procpool.
EvalSpec` carries only the ``arena`` *flag*, never buffer contents).
"""

from __future__ import annotations

import numpy as np

from repro.nn.dtype import resolve_dtype

__all__ = ["BufferArena"]


class BufferArena:
    """Keyed pool of reusable ndarrays for one network's training loop.

    Parameters
    ----------
    dtype:
        Default element type for buffers requested without an explicit
        dtype — the network's compute dtype.  Integer/bool buffers
        (argmax indices, masks) always pass their dtype explicitly.
    """

    def __init__(self, dtype=None) -> None:
        self.dtype = resolve_dtype(dtype)
        self._buffers: dict[tuple, np.ndarray] = {}

    def buffer(self, owner: str, name: str, shape: tuple, dtype=None) -> np.ndarray:
        """The pinned buffer for ``(owner, name, shape, dtype)``.

        Allocated with ``np.empty`` on first request (callers that need
        zeros zero it explicitly — most GEMM/scatter consumers overwrite
        every element anyway), then returned as-is forever after.
        """
        dtype = np.dtype(self.dtype if dtype is None else dtype)
        key = (owner, name, tuple(shape), dtype.str)
        buf = self._buffers.get(key)
        if buf is None:
            buf = np.empty(shape, dtype=dtype)
            self._buffers[key] = buf
        return buf

    @property
    def nbytes(self) -> int:
        """Total bytes pinned — the per-evaluation peak-scratch figure."""
        return sum(buf.nbytes for buf in self._buffers.values())

    @property
    def n_buffers(self) -> int:
        return len(self._buffers)

    def clear(self) -> None:
        """Drop every buffer (the next request reallocates)."""
        self._buffers.clear()

    def __repr__(self) -> str:
        return (
            f"BufferArena(dtype={np.dtype(self.dtype).name}, "
            f"buffers={self.n_buffers}, nbytes={self.nbytes})"
        )
