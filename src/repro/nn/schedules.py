"""Learning-rate schedules.

The paper's lineage records include the learning rate among the training
parameters it tracks; real NAS training stacks anneal it.  Schedules
wrap an optimizer and update its ``lr`` once per epoch.
"""

from __future__ import annotations

import math

from repro.nn.optimizers import Optimizer
from repro.utils.validation import ensure_positive

__all__ = ["LRSchedule", "StepDecay", "CosineAnnealing", "ExponentialDecay"]


class LRSchedule:
    """Base schedule bound to an optimizer.

    Call :meth:`step` once per completed epoch; the schedule assigns
    ``optimizer.lr`` for the *next* epoch.
    """

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = float(optimizer.lr)
        self.epoch = 0

    def lr_at(self, epoch: int) -> float:
        """The learning rate used during ``epoch`` (0-based)."""
        raise NotImplementedError

    def step(self) -> float:
        """Advance one epoch; returns the new learning rate."""
        self.epoch += 1
        self.optimizer.lr = self.lr_at(self.epoch)
        return self.optimizer.lr


class StepDecay(LRSchedule):
    """Multiply the rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, *, step_size: int = 10, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        ensure_positive(step_size, "step_size")
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.step_size = int(step_size)
        self.gamma = float(gamma)

    def lr_at(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class ExponentialDecay(LRSchedule):
    """Multiply the rate by ``gamma`` every epoch."""

    def __init__(self, optimizer: Optimizer, *, gamma: float = 0.95) -> None:
        super().__init__(optimizer)
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.gamma = float(gamma)

    def lr_at(self, epoch: int) -> float:
        return self.base_lr * self.gamma**epoch


class CosineAnnealing(LRSchedule):
    """Cosine decay from the base rate to ``min_lr`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, *, t_max: int = 25, min_lr: float = 0.0) -> None:
        super().__init__(optimizer)
        ensure_positive(t_max, "t_max")
        if min_lr < 0 or min_lr > self.base_lr:
            raise ValueError(
                f"min_lr must be in [0, base_lr={self.base_lr}], got {min_lr}"
            )
        self.t_max = int(t_max)
        self.min_lr = float(min_lr)

    def lr_at(self, epoch: int) -> float:
        clamped = min(epoch, self.t_max)
        cosine = (1 + math.cos(math.pi * clamped / self.t_max)) / 2
        return self.min_lr + (self.base_lr - self.min_lr) * cosine
