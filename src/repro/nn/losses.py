"""Loss functions with analytic gradients."""

from __future__ import annotations

import numpy as np

__all__ = ["Loss", "SoftmaxCrossEntropy", "MeanSquaredError", "softmax", "log_softmax"]


def log_softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise log-softmax, shifted for numerical stability."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax."""
    return np.exp(log_softmax(logits))


class Loss:
    """Interface: ``value, grad = loss(predictions, targets)``."""

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> tuple[float, np.ndarray]:
        raise NotImplementedError


class SoftmaxCrossEntropy(Loss):
    """Softmax + cross-entropy fused for a stable, simple gradient.

    ``predictions`` are raw logits ``(batch, classes)``; ``targets`` are
    integer class labels ``(batch,)``.  The returned gradient is with
    respect to the logits: ``(softmax - onehot) / batch``.
    """

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> tuple[float, np.ndarray]:
        targets = np.asarray(targets)
        if predictions.ndim != 2:
            raise ValueError(f"logits must be 2-D, got shape {predictions.shape}")
        if targets.shape != (predictions.shape[0],):
            raise ValueError(
                f"targets shape {targets.shape} does not match batch {predictions.shape[0]}"
            )
        if targets.min() < 0 or targets.max() >= predictions.shape[1]:
            raise ValueError(
                f"labels must be in [0, {predictions.shape[1]}), "
                f"got range [{targets.min()}, {targets.max()}]"
            )
        n = predictions.shape[0]
        logp = log_softmax(predictions)
        value = float(-logp[np.arange(n), targets].mean())
        grad = np.exp(logp)
        grad[np.arange(n), targets] -= 1.0
        return value, grad / n


class MeanSquaredError(Loss):
    """Mean squared error over all elements (used by the autoencoder baseline)."""

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> tuple[float, np.ndarray]:
        predictions = np.asarray(predictions)
        # match the prediction dtype: casting targets to python ``float``
        # (float64) would silently upcast a float32 compute path here
        targets = np.asarray(targets, dtype=predictions.dtype)
        if predictions.shape != targets.shape:
            raise ValueError(
                f"shape mismatch: predictions {predictions.shape} vs targets {targets.shape}"
            )
        diff = predictions - targets
        value = float(np.mean(diff**2))
        return value, 2.0 * diff / diff.size
