"""Fully connected layer."""

from __future__ import annotations

import numpy as np

from repro.nn.dtype import dtype_label, resolve_dtype
from repro.nn.initializers import get_initializer
from repro.nn.layers.base import Layer, Parameter
from repro.utils.rng import fallback_rng

__all__ = ["Dense"]


class Dense(Layer):
    """Affine map ``y = x @ W + b`` on ``(batch, in_features)`` inputs.

    Parameters
    ----------
    in_features, out_features:
        Input/output widths.
    use_bias:
        Whether to add the bias term.
    weight_init, bias_init:
        Initializer names from :mod:`repro.nn.initializers`.
    rng:
        Generator for weight initialization (deterministic builds).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        use_bias: bool = True,
        weight_init: str = "he_normal",
        bias_init: str = "zeros",
        rng: np.random.Generator | None = None,
        dtype=None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError(
                f"features must be positive, got in={in_features}, out={out_features}"
            )
        rng = rng if rng is not None else fallback_rng()
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.use_bias = bool(use_bias)
        self.weight_init = weight_init
        self.bias_init = bias_init
        self.dtype = resolve_dtype(dtype)
        self.params["weight"] = Parameter(
            get_initializer(weight_init)(
                (self.in_features, self.out_features), rng, dtype=self.dtype
            ),
            dtype=self.dtype,
        )
        if self.use_bias:
            self.params["bias"] = Parameter(
                get_initializer(bias_init)((self.out_features,), rng, dtype=self.dtype),
                dtype=self.dtype,
            )
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Dense expects (batch, {self.in_features}), got {x.shape}"
            )
        self._x = x if training else None
        if self._arena is not None:
            out = self._buf("out", (x.shape[0], self.out_features), x.dtype)
            np.matmul(x, self.params["weight"].value, out=out)
        else:
            out = x @ self.params["weight"].value
        if self.use_bias:
            out += self.params["bias"].value
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before a training-mode forward")
        if self._arena is not None:
            dt = grad_out.dtype
            dw = self._buf("dw", self.params["weight"].shape, dt)
            np.matmul(self._x.T, grad_out, out=dw)
            self.params["weight"].grad += dw
            if self.use_bias:
                db = self._buf("db", (self.out_features,), dt)
                np.sum(grad_out, axis=0, out=db)
                self.params["bias"].grad += db
            grad_in = self._buf("grad_in", self._x.shape, dt)
            np.matmul(grad_out, self.params["weight"].value.T, out=grad_in)
            return grad_in
        self.params["weight"].grad += self._x.T @ grad_out
        if self.use_bias:
            self.params["bias"].grad += grad_out.sum(axis=0)
        return grad_out @ self.params["weight"].value.T

    def output_shape(self, input_shape: tuple) -> tuple:
        if tuple(input_shape) != (self.in_features,):
            raise ValueError(
                f"Dense({self.in_features}) cannot take per-sample shape {input_shape}"
            )
        return (self.out_features,)

    def flops(self, input_shape: tuple) -> int:
        # matmul: 2 * in * out; bias add: out
        flops = 2 * self.in_features * self.out_features
        if self.use_bias:
            flops += self.out_features
        return flops

    def get_config(self) -> dict:
        return {
            "in_features": self.in_features,
            "out_features": self.out_features,
            "use_bias": self.use_bias,
            "weight_init": self.weight_init,
            "bias_init": self.bias_init,
            "dtype": dtype_label(self.dtype),
        }
