"""Batch normalization for NCHW feature maps and flat features."""

from __future__ import annotations

import numpy as np

from repro.nn.dtype import dtype_label, resolve_dtype
from repro.nn.layers.base import Layer, Parameter

__all__ = ["BatchNorm2D", "BatchNorm1D"]


class _BatchNorm(Layer):
    """Shared machinery; subclasses define the reduction axes."""

    def __init__(
        self,
        num_features: int,
        *,
        momentum: float = 0.9,
        eps: float = 1e-5,
        dtype=None,
    ) -> None:
        super().__init__()
        if num_features <= 0:
            raise ValueError(f"num_features must be positive, got {num_features}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.num_features = int(num_features)
        self.momentum = float(momentum)
        self.eps = float(eps)
        self.dtype = resolve_dtype(dtype)
        self.params["gamma"] = Parameter(
            np.ones(self.num_features, dtype=self.dtype), dtype=self.dtype
        )
        self.params["beta"] = Parameter(
            np.zeros(self.num_features, dtype=self.dtype), dtype=self.dtype
        )
        # running statistics are state, not trainable parameters; they
        # live in the layer dtype so eval-mode forwards stay in-dtype
        self.running_mean = np.zeros(self.num_features, dtype=self.dtype)
        self.running_var = np.ones(self.num_features, dtype=self.dtype)
        self._cache: tuple | None = None

    _axes: tuple = ()

    def _shape_params(self, arr: np.ndarray, ndim: int) -> np.ndarray:
        """Broadcast a per-channel vector against an ndim input."""
        shape = [1] * ndim
        shape[1] = self.num_features
        return arr.reshape(shape)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.shape[1] != self.num_features:
            raise ValueError(
                f"expected {self.num_features} channels, got input shape {x.shape}"
            )
        if self._arena is not None:
            return self._forward_arena(x, training)
        if training:
            mean = x.mean(axis=self._axes)
            var = x.var(axis=self._axes)
            self.running_mean = self.momentum * self.running_mean + (1 - self.momentum) * mean
            self.running_var = self.momentum * self.running_var + (1 - self.momentum) * var
        else:
            mean, var = self.running_mean, self.running_var

        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - self._shape_params(mean, x.ndim)) * self._shape_params(inv_std, x.ndim)
        out = (
            self._shape_params(self.params["gamma"].value, x.ndim) * x_hat
            + self._shape_params(self.params["beta"].value, x.ndim)
        )
        self._cache = (x_hat, inv_std) if training else None
        return out

    def _forward_arena(self, x: np.ndarray, training: bool) -> np.ndarray:
        """Feature-map-sized temporaries pinned; per-channel vectors stay tiny.

        Bit-identical to the legacy expression: ``np.var`` decomposes
        into the same subtract/square/mean ufunc sequence the scratch
        version runs, and the remaining rewrites only commute operands
        or fuse into ``out=`` forms.
        """
        if training:
            mean = x.mean(axis=self._axes)
            t = self._buf("var_tmp", x.shape, x.dtype)
            np.subtract(x, self._shape_params(mean, x.ndim), out=t)
            np.multiply(t, t, out=t)
            var = t.mean(axis=self._axes)
            self.running_mean = self.momentum * self.running_mean + (1 - self.momentum) * mean
            self.running_var = self.momentum * self.running_var + (1 - self.momentum) * var
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = self._buf("x_hat", x.shape, x.dtype)
        np.subtract(x, self._shape_params(mean, x.ndim), out=x_hat)
        x_hat *= self._shape_params(inv_std, x.ndim)
        out = self._buf("out", x.shape, x.dtype)
        np.multiply(x_hat, self._shape_params(self.params["gamma"].value, x.ndim), out=out)
        out += self._shape_params(self.params["beta"].value, x.ndim)
        self._cache = (x_hat, inv_std) if training else None
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training-mode forward")
        x_hat, inv_std = self._cache
        m = grad_out.size // self.num_features  # elements per channel
        if self._arena is not None:
            return self._backward_arena(grad_out, x_hat, inv_std, m)

        self.params["gamma"].grad += (grad_out * x_hat).sum(axis=self._axes)
        self.params["beta"].grad += grad_out.sum(axis=self._axes)

        gamma = self._shape_params(self.params["gamma"].value, grad_out.ndim)
        inv = self._shape_params(inv_std, grad_out.ndim)
        g = grad_out * gamma
        sum_g = self._shape_params(g.sum(axis=self._axes), grad_out.ndim)
        sum_gx = self._shape_params((g * x_hat).sum(axis=self._axes), grad_out.ndim)
        return (inv / m) * (m * g - sum_g - x_hat * sum_gx)

    def _backward_arena(
        self, grad_out: np.ndarray, x_hat: np.ndarray, inv_std: np.ndarray, m: int
    ) -> np.ndarray:
        """The legacy gradient expression on pinned scratch, bit-identical."""
        ndim = grad_out.ndim
        t = self._buf("bwd_tmp", grad_out.shape, grad_out.dtype)
        np.multiply(grad_out, x_hat, out=t)
        self.params["gamma"].grad += t.sum(axis=self._axes)
        self.params["beta"].grad += grad_out.sum(axis=self._axes)

        gamma = self._shape_params(self.params["gamma"].value, ndim)
        inv = self._shape_params(inv_std, ndim)
        g = self._buf("g", grad_out.shape, grad_out.dtype)
        np.multiply(grad_out, gamma, out=g)
        sum_g = self._shape_params(g.sum(axis=self._axes), ndim)
        np.multiply(g, x_hat, out=t)
        sum_gx = self._shape_params(t.sum(axis=self._axes), ndim)
        grad_in = self._buf("grad_in", grad_out.shape, grad_out.dtype)
        np.multiply(x_hat, sum_gx, out=grad_in)  # x_hat * sum_gx
        np.multiply(g, m, out=g)  # m * g
        g -= sum_g
        g -= grad_in  # (m*g - sum_g) - x_hat*sum_gx
        np.multiply(g, inv / m, out=grad_in)
        return grad_in

    def flops(self, input_shape: tuple) -> int:
        # normalize + scale + shift: ~4 ops per element
        return 4 * int(np.prod(input_shape))

    def state(self) -> dict[str, np.ndarray]:
        return {
            "running_mean": self.running_mean.copy(),
            "running_var": self.running_var.copy(),
        }

    def load_state(self, state: dict[str, np.ndarray]) -> None:
        for key in ("running_mean", "running_var"):
            if key not in state:
                raise KeyError(f"batch-norm state missing {key!r}")
            value = np.asarray(state[key], dtype=self.dtype)
            if value.shape != (self.num_features,):
                raise ValueError(
                    f"{key} shape {value.shape} != ({self.num_features},)"
                )
            setattr(self, key, value)

    def get_config(self) -> dict:
        return {
            "num_features": self.num_features,
            "momentum": self.momentum,
            "eps": self.eps,
            "dtype": dtype_label(self.dtype),
        }


class BatchNorm2D(_BatchNorm):
    """Per-channel normalization over (batch, H, W) for NCHW inputs."""

    _axes = (0, 2, 3)


class BatchNorm1D(_BatchNorm):
    """Per-feature normalization over the batch for (batch, features) inputs."""

    _axes = (0,)
