"""Spatial pooling layers (max and average) and global average pooling."""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.nn.layers.base import Layer

__all__ = ["MaxPool2D", "AvgPool2D", "GlobalAvgPool2D"]


class _Pool2D(Layer):
    """Shared shape logic for fixed-window pooling."""

    def __init__(self, pool_size: int = 2, stride: int | None = None) -> None:
        super().__init__()
        if pool_size <= 0:
            raise ValueError(f"pool_size must be positive, got {pool_size}")
        self.pool_size = int(pool_size)
        self.stride = int(stride) if stride is not None else self.pool_size
        if self.stride <= 0:
            raise ValueError(f"stride must be positive, got {stride}")

    def _out_hw(self, h: int, w: int) -> tuple[int, int]:
        k, s = self.pool_size, self.stride
        oh = (h - k) // s + 1
        ow = (w - k) // s + 1
        if oh <= 0 or ow <= 0:
            raise ValueError(
                f"{type(self).__name__}(k={k}, s={s}) empty output for input {h}x{w}"
            )
        return oh, ow

    def _windows(self, x: np.ndarray) -> np.ndarray:
        # (N, C, oh, ow, k, k) strided view
        view = sliding_window_view(x, (self.pool_size, self.pool_size), axis=(2, 3))
        return view[:, :, :: self.stride, :: self.stride, :, :]

    def output_shape(self, input_shape: tuple) -> tuple:
        c, h, w = input_shape
        oh, ow = self._out_hw(h, w)
        return (c, oh, ow)

    def get_config(self) -> dict:
        return {"pool_size": self.pool_size, "stride": self.stride}


class MaxPool2D(_Pool2D):
    """Max pooling; backward routes gradient to each window's argmax."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        windows = self._windows(x)
        n, c, oh, ow, k, _ = windows.shape
        flat = windows.reshape(n, c, oh, ow, k * k)
        out = flat.max(axis=-1)
        if training:
            argmax = flat.argmax(axis=-1)
            self._cache = (x.shape, argmax)
        else:
            self._cache = None
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training-mode forward")
        x_shape, argmax = self._cache
        n, c, oh, ow = grad_out.shape
        k = self.pool_size
        grad_x = np.zeros(x_shape, dtype=grad_out.dtype)
        rows = argmax // k  # offset within window
        cols = argmax % k
        base_i = np.arange(oh)[None, None, :, None] * self.stride
        base_j = np.arange(ow)[None, None, None, :] * self.stride
        ii = (base_i + rows).ravel()
        jj = (base_j + cols).ravel()
        nn = np.repeat(np.arange(n), c * oh * ow)
        cc = np.tile(np.repeat(np.arange(c), oh * ow), n)
        np.add.at(grad_x, (nn, cc, ii, jj), grad_out.ravel())
        return grad_x

    def flops(self, input_shape: tuple) -> int:
        c, oh, ow = self.output_shape(input_shape)
        # k*k - 1 comparisons per output element
        return (self.pool_size * self.pool_size - 1) * c * oh * ow


class AvgPool2D(_Pool2D):
    """Average pooling; backward spreads gradient uniformly over the window."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        windows = self._windows(x)
        out = windows.mean(axis=(-2, -1))
        self._cache = x.shape if training else None
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training-mode forward")
        x_shape = self._cache
        k, s = self.pool_size, self.stride
        n, c, oh, ow = grad_out.shape
        grad_x = np.zeros(x_shape, dtype=grad_out.dtype)
        share = grad_out / (k * k)
        for i in range(k):
            for j in range(k):
                grad_x[:, :, i : i + oh * s : s, j : j + ow * s : s] += share
        return grad_x

    def flops(self, input_shape: tuple) -> int:
        c, oh, ow = self.output_shape(input_shape)
        return self.pool_size * self.pool_size * c * oh * ow


class GlobalAvgPool2D(Layer):
    """Collapse each channel's spatial map to its mean: NCHW -> (N, C)."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._cache = x.shape if training else None
        return x.mean(axis=(2, 3))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training-mode forward")
        n, c, h, w = self._cache
        return np.broadcast_to(
            grad_out[:, :, None, None] / (h * w), (n, c, h, w)
        ).copy()

    def output_shape(self, input_shape: tuple) -> tuple:
        c, h, w = input_shape
        return (c,)

    def flops(self, input_shape: tuple) -> int:
        c, h, w = input_shape
        return c * h * w
