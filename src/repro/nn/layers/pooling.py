"""Spatial pooling layers (max and average) and global average pooling.

``MaxPool2D.backward`` routes each output gradient to its window's
argmax with a *flat* scatter: the static part of every target index
(batch/channel/window-origin offsets) is precomputed once per input
shape, so the per-call work is two elementwise integer ops plus one
scatter.  Disjoint windows (``stride >= pool_size`` — the decoder's 2x2
case) use direct fancy assignment; overlapping windows fall back to
``np.add.at``.  Bound to a :class:`~repro.nn.arena.BufferArena`, the
scatter runs entirely in pinned buffers (zero allocations per batch);
unbound, it allocates per call but computes bit-identical results.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.nn.layers.base import Layer

__all__ = ["MaxPool2D", "AvgPool2D", "GlobalAvgPool2D"]


class _Pool2D(Layer):
    """Shared shape logic for fixed-window pooling."""

    def __init__(self, pool_size: int = 2, stride: int | None = None) -> None:
        super().__init__()
        if pool_size <= 0:
            raise ValueError(f"pool_size must be positive, got {pool_size}")
        self.pool_size = int(pool_size)
        self.stride = int(stride) if stride is not None else self.pool_size
        if self.stride <= 0:
            raise ValueError(f"stride must be positive, got {stride}")

    def _out_hw(self, h: int, w: int) -> tuple[int, int]:
        k, s = self.pool_size, self.stride
        oh = (h - k) // s + 1
        ow = (w - k) // s + 1
        if oh <= 0 or ow <= 0:
            raise ValueError(
                f"{type(self).__name__}(k={k}, s={s}) empty output for input {h}x{w}"
            )
        return oh, ow

    def _windows(self, x: np.ndarray) -> np.ndarray:
        # (N, C, oh, ow, k, k) strided view
        view = sliding_window_view(x, (self.pool_size, self.pool_size), axis=(2, 3))
        return view[:, :, :: self.stride, :: self.stride, :, :]

    def output_shape(self, input_shape: tuple) -> tuple:
        c, h, w = input_shape
        oh, ow = self._out_hw(h, w)
        return (c, oh, ow)

    def get_config(self) -> dict:
        return {"pool_size": self.pool_size, "stride": self.stride}


class MaxPool2D(_Pool2D):
    """Max pooling; backward routes gradient to each window's argmax."""

    def __init__(self, pool_size: int = 2, stride: int | None = None) -> None:
        super().__init__(pool_size, stride)
        # static flat-offset tables keyed by input shape: the
        # batch/channel/window-origin part of every scatter target never
        # changes for a given geometry, so it is computed exactly once
        self._flat_bases: dict[tuple, np.ndarray] = {}

    def _flat_base(self, x_shape: tuple, oh: int, ow: int) -> np.ndarray:
        base = self._flat_bases.get(x_shape)
        if base is None:
            n, c, h, w = x_shape
            s = self.stride
            nc = (np.arange(n * c, dtype=np.intp) * (h * w)).reshape(n, c, 1, 1)
            oi = (np.arange(oh, dtype=np.intp) * (s * w)).reshape(1, 1, oh, 1)
            oj = (np.arange(ow, dtype=np.intp) * s).reshape(1, 1, 1, ow)
            base = nc + oi + oj
            self._flat_bases[x_shape] = base
        return base

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        windows = self._windows(x)
        n, c, oh, ow, k, _ = windows.shape
        if self._arena is not None:
            # pin the window gather so max/argmax read a contiguous block
            flat = self._buf("windows", (n, c, oh, ow, k * k), x.dtype)
            np.copyto(flat.reshape(windows.shape), windows)
            out = self._buf("out", (n, c, oh, ow), x.dtype)
            np.max(flat, axis=-1, out=out)
        else:
            flat = windows.reshape(n, c, oh, ow, k * k)
            out = flat.max(axis=-1)
        if training:
            if self._arena is not None:
                argmax = self._buf("argmax", (n, c, oh, ow), np.intp)
                np.argmax(flat, axis=-1, out=argmax)
            else:
                argmax = flat.argmax(axis=-1)
            self._cache = (x.shape, argmax)
        else:
            self._cache = None
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training-mode forward")
        x_shape, argmax = self._cache
        n, c, oh, ow = grad_out.shape
        k, s = self.pool_size, self.stride
        w = x_shape[3]
        base = self._flat_base(x_shape, oh, ow)
        if self._arena is not None:
            idx = self._buf("scatter_idx", argmax.shape, np.intp)
            tmp = self._buf("scatter_tmp", argmax.shape, np.intp)
            np.floor_divide(argmax, k, out=idx)  # row within window
            idx *= w
            np.remainder(argmax, k, out=tmp)  # column within window
            idx += tmp
            idx += base
            grad_x = self._buf("grad_x", x_shape, grad_out.dtype)
            grad_x[...] = 0.0
        else:
            idx = base + (argmax // k) * w + argmax % k
            grad_x = np.zeros(x_shape, dtype=grad_out.dtype)
        flat = grad_x.reshape(-1)
        if s >= k:
            # disjoint windows: every input cell receives at most one
            # gradient, so fancy assignment equals the scatter-add
            flat[idx] = grad_out
        else:
            np.add.at(flat, idx, grad_out)
        return grad_x

    def flops(self, input_shape: tuple) -> int:
        c, oh, ow = self.output_shape(input_shape)
        # k*k - 1 comparisons per output element
        return (self.pool_size * self.pool_size - 1) * c * oh * ow


class AvgPool2D(_Pool2D):
    """Average pooling; backward spreads gradient uniformly over the window."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        windows = self._windows(x)
        if self._arena is not None:
            out = self._buf("out", windows.shape[:4], x.dtype)
            np.mean(windows, axis=(-2, -1), out=out)
        else:
            out = windows.mean(axis=(-2, -1))
        self._cache = x.shape if training else None
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training-mode forward")
        x_shape = self._cache
        k, s = self.pool_size, self.stride
        n, c, oh, ow = grad_out.shape
        if self._arena is not None:
            grad_x = self._buf("grad_x", x_shape, grad_out.dtype)
            grad_x[...] = 0.0
            share = self._buf("share", grad_out.shape, grad_out.dtype)
            np.true_divide(grad_out, k * k, out=share)
        else:
            grad_x = np.zeros(x_shape, dtype=grad_out.dtype)
            share = grad_out / (k * k)
        for i in range(k):
            for j in range(k):
                grad_x[:, :, i : i + oh * s : s, j : j + ow * s : s] += share
        return grad_x

    def flops(self, input_shape: tuple) -> int:
        c, oh, ow = self.output_shape(input_shape)
        return self.pool_size * self.pool_size * c * oh * ow


class GlobalAvgPool2D(Layer):
    """Collapse each channel's spatial map to its mean: NCHW -> (N, C)."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._cache = x.shape if training else None
        if self._arena is not None:
            out = self._buf("out", x.shape[:2], x.dtype)
            np.mean(x, axis=(2, 3), out=out)
            return out
        return x.mean(axis=(2, 3))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training-mode forward")
        n, c, h, w = self._cache
        if self._arena is not None:
            scaled = self._buf("scaled", (n, c), grad_out.dtype)
            np.true_divide(grad_out, h * w, out=scaled)
            grad_x = self._buf("grad_x", (n, c, h, w), grad_out.dtype)
            grad_x[...] = scaled[:, :, None, None]
            return grad_x
        return np.broadcast_to(
            grad_out[:, :, None, None] / (h * w), (n, c, h, w)
        ).copy()

    def output_shape(self, input_shape: tuple) -> tuple:
        c, h, w = input_shape
        return (c,)

    def flops(self, input_shape: tuple) -> int:
        c, h, w = input_shape
        return c * h * w
