"""Shape adapters between convolutional and dense stages."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer

__all__ = ["Flatten"]


class Flatten(Layer):
    """Collapse all per-sample dimensions: (N, ...) -> (N, prod(...))."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._shape = x.shape if training else None
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before a training-mode forward")
        return grad_out.reshape(self._shape)

    def output_shape(self, input_shape: tuple) -> tuple:
        return (int(np.prod(input_shape)),)
