"""2-D convolution via im2col.

The im2col transform turns convolution into one large matrix multiply,
which is the standard way to get BLAS-speed convolutions out of NumPy
(vectorize the loop, let the optimized GEMM do the work).  Patch
extraction uses ``sliding_window_view`` so the forward pass allocates no
per-patch copies beyond the final contiguous column matrix.

Two execution paths share the layer:

* **Legacy (no arena)** — the historical allocate-per-call code,
  byte-for-byte: sample-major columns ``(N, oh*ow, C*k*k)``, fresh
  ``ascontiguousarray``/``np.zeros`` every batch, ``einsum`` weight
  gradient.  Float64 replay of pre-arena runs depends on this path
  staying bit-identical.
* **Arena fast path** (:meth:`~repro.nn.layers.base.Layer.bind_arena`)
  — *channel-major* columns ``(N, C*k*k, oh*ow)`` written into pinned
  scratch in channel blocks (the transpose-copy's working set stays
  cache-sized), with every GEMM running ``np.matmul(..., out=...)`` on
  views: the forward product lands directly in NCHW layout (no output
  transpose), the weight gradient is a batched GEMM against the column
  transpose-view, and the input gradient scatters from column space
  without per-call allocation.  Numerically equivalent to the legacy
  path at gradcheck tolerance (the reshaped GEMMs may accumulate in a
  different order than the expressions they replace, so equality is
  close-to-ulp, not bitwise).
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.nn.dtype import dtype_label, resolve_dtype
from repro.nn.initializers import get_initializer
from repro.nn.layers.base import Layer, Parameter
from repro.utils.rng import fallback_rng

__all__ = ["Conv2D", "im2col", "col2im"]

#: Channel-block width for the arena im2col copy.  Small enough that one
#: block's strided transpose fits in cache, and a no-op (single copy)
#: for the narrow layers the decoder emits.
_CHANNEL_BLOCK = 16


def im2col(x: np.ndarray, kh: int, kw: int, stride: int) -> np.ndarray:
    """Extract sliding patches: ``(N, C, H, W) -> (N, oh*ow, C*kh*kw)``."""
    n, c, h, w = x.shape
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    # windows: (N, C, H-kh+1, W-kw+1, kh, kw) — a view, no copy yet
    windows = sliding_window_view(x, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride, :, :]
    # one contiguous copy: (N, oh, ow, C, kh, kw) -> (N, oh*ow, C*kh*kw)
    return np.ascontiguousarray(windows.transpose(0, 2, 3, 1, 4, 5)).reshape(
        n, oh * ow, c * kh * kw
    )


def col2im(
    cols: np.ndarray,
    x_shape: tuple,
    kh: int,
    kw: int,
    stride: int,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Scatter-add column gradients back to image layout (im2col adjoint).

    With ``out=`` the scatter accumulates into the caller's buffer
    (zeroed first) instead of allocating ``np.zeros(x_shape)`` per call;
    the default signature keeps the allocating behaviour for external
    callers.
    """
    n, c, h, w = x_shape
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    grads = cols.reshape(n, oh, ow, c, kh, kw)
    if out is None:
        out = np.zeros(x_shape, dtype=cols.dtype)
    else:
        if out.shape != tuple(x_shape):
            raise ValueError(f"out has shape {out.shape}, expected {tuple(x_shape)}")
        out[...] = 0.0
    # kh*kw is tiny (<= 49); vectorize over batch and spatial dims instead.
    for i in range(kh):
        for j in range(kw):
            out[:, :, i : i + oh * stride : stride, j : j + ow * stride : stride] += (
                grads[:, :, :, :, i, j].transpose(0, 3, 1, 2)
            )
    return out


class Conv2D(Layer):
    """Cross-correlation conv layer on NCHW inputs.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts.
    kernel_size:
        Square kernel side length.
    stride:
        Spatial stride (same in both dims).
    padding:
        Zero padding.  An int pads symmetrically; a ``(before, after)``
        pair pads asymmetrically (applied to both H and W).  ``"same"``
        computes exact output-preserving padding — ``k // 2`` on each
        side for odd kernels, ``((k - 1) // 2, k // 2)`` for even ones —
        and requires ``stride == 1`` (with a larger stride the padding
        that preserves ``ceil(size / stride)`` depends on the input
        size, so it cannot be fixed at construction; pass an explicit
        value instead).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        *,
        stride: int = 1,
        padding: int | str = "same",
        use_bias: bool = True,
        weight_init: str = "he_normal",
        rng: np.random.Generator | None = None,
        dtype=None,
    ) -> None:
        super().__init__()
        if min(in_channels, out_channels, kernel_size, stride) <= 0:
            raise ValueError("channels, kernel_size and stride must be positive")
        if padding == "same":
            if stride != 1:
                raise ValueError(
                    f"padding='same' is undefined for stride {stride}: the "
                    "output-preserving padding depends on the input size; "
                    "pass an explicit int or (before, after) padding"
                )
            pad_before, pad_after = (kernel_size - 1) // 2, kernel_size // 2
        elif isinstance(padding, str):
            raise ValueError(f"unknown padding mode {padding!r}; use 'same' or an int")
        elif isinstance(padding, (tuple, list)):
            if len(padding) != 2:
                raise ValueError(
                    f"tuple padding must be (before, after), got {padding!r}"
                )
            pad_before, pad_after = int(padding[0]), int(padding[1])
        else:
            pad_before = pad_after = int(padding)
        if min(pad_before, pad_after) < 0:
            raise ValueError(f"padding must be non-negative, got {padding}")
        rng = rng if rng is not None else fallback_rng()
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.pad_before = pad_before
        self.pad_after = pad_after
        # canonical config form: an int when symmetric, else the pair
        self.padding = pad_before if pad_before == pad_after else (pad_before, pad_after)
        self.use_bias = bool(use_bias)
        self.weight_init = weight_init
        self.dtype = resolve_dtype(dtype)
        kernel_shape = (self.out_channels, self.in_channels, self.kernel_size, self.kernel_size)
        self.params["weight"] = Parameter(
            get_initializer(weight_init)(kernel_shape, rng, dtype=self.dtype),
            dtype=self.dtype,
        )
        if self.use_bias:
            self.params["bias"] = Parameter(
                np.zeros(self.out_channels, dtype=self.dtype), dtype=self.dtype
            )
        self._cache: tuple | None = None

    def _pad(self, x: np.ndarray) -> np.ndarray:
        pb, pa = self.pad_before, self.pad_after
        if pb == 0 and pa == 0:
            return x
        return np.pad(x, ((0, 0), (0, 0), (pb, pa), (pb, pa)))

    def _out_hw(self, h: int, w: int) -> tuple[int, int]:
        k, s = self.kernel_size, self.stride
        total = self.pad_before + self.pad_after
        oh = (h + total - k) // s + 1
        ow = (w + total - k) // s + 1
        if oh <= 0 or ow <= 0:
            raise ValueError(
                f"Conv2D(k={k}, s={s}, p={self.padding}) produces empty output "
                f"for input {h}x{w}"
            )
        return oh, ow

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2D expects (N, {self.in_channels}, H, W), got {x.shape}"
            )
        n = x.shape[0]
        oh, ow = self._out_hw(x.shape[2], x.shape[3])
        if self._arena is not None:
            return self._forward_arena(x, n, oh, ow, training)
        padded = self._pad(x)
        cols = im2col(padded, self.kernel_size, self.kernel_size, self.stride)
        kernel = self.params["weight"].value.reshape(self.out_channels, -1)
        # (N, oh*ow, C*k*k) @ (C*k*k, out_c) -> (N, oh*ow, out_c)
        out = cols @ kernel.T
        if self.use_bias:
            out += self.params["bias"].value
        out = out.transpose(0, 2, 1).reshape(n, self.out_channels, oh, ow)
        self._cache = (cols, padded.shape, x.shape, False) if training else None
        return out

    def _forward_arena(
        self, x: np.ndarray, n: int, oh: int, ow: int, training: bool
    ) -> np.ndarray:
        """Allocation-free forward: channel-major columns, in-place GEMM."""
        k, s, c = self.kernel_size, self.stride, self.in_channels
        pb, pa = self.pad_before, self.pad_after
        dt = x.dtype
        if pb or pa:
            padded = self._buf(
                "padded", (n, c, x.shape[2] + pb + pa, x.shape[3] + pb + pa), dt
            )
            padded[...] = 0.0
            padded[:, :, pb : pb + x.shape[2], pb : pb + x.shape[3]] = x
        else:
            padded = x
        p = oh * ow
        if k == 1 and s == 1 and not (pb or pa) and x.flags.c_contiguous:
            # 1x1 conv: im2col is the identity, so the (N, C, P) view of
            # the input IS the column matrix — no copy, no scatter later
            cols = x.reshape(n, c, p)
        else:
            cols = self._buf("cols", (n, c * k * k, p), dt)
            # channel-major view (N, C, k, k, oh, ow): each channel's k*k
            # taps are contiguous runs of ow output pixels, so both the
            # transpose-copy below and the backward scatter stay sequential
            cols6 = cols.reshape(n, c, k, k, oh, ow)
            windows = sliding_window_view(padded, (k, k), axis=(2, 3))[:, :, ::s, ::s]
            for c0 in range(0, c, _CHANNEL_BLOCK):
                c1 = min(c0 + _CHANNEL_BLOCK, c)
                np.copyto(
                    cols6[:, c0:c1], windows[:, c0:c1].transpose(0, 1, 4, 5, 2, 3)
                )
        kernel = self.params["weight"].value.reshape(self.out_channels, -1)
        out = self._buf("out", (n, self.out_channels, oh, ow), dt)
        # (out_c, C*k*k) @ (N, C*k*k, oh*ow) -> (N, out_c, oh*ow): the
        # product lands directly in NCHW layout, no output transpose
        np.matmul(kernel, cols, out=out.reshape(n, self.out_channels, p))
        if self.use_bias:
            out += self.params["bias"].value.reshape(1, -1, 1, 1)
        self._cache = (cols, padded.shape, x.shape, True) if training else None
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training-mode forward")
        cols, padded_shape, x_shape, arena_cols = self._cache
        if arena_cols:
            return self._backward_arena(grad_out, cols, padded_shape)
        n, _, oh, ow = grad_out.shape
        # (N, out_c, oh, ow) -> (N, oh*ow, out_c)
        grad_flat = grad_out.reshape(n, self.out_channels, oh * ow).transpose(0, 2, 1)

        kernel = self.params["weight"].value.reshape(self.out_channels, -1)
        # dW: sum over batch of grad_flat^T @ cols
        grad_kernel = np.einsum("npo,npk->ok", grad_flat, cols)
        self.params["weight"].grad += grad_kernel.reshape(self.params["weight"].shape)
        if self.use_bias:
            self.params["bias"].grad += grad_flat.sum(axis=(0, 1))

        grad_cols = grad_flat @ kernel  # (N, oh*ow, C*k*k)
        grad_padded = col2im(grad_cols, padded_shape, self.kernel_size, self.kernel_size, self.stride)
        pb, pa = self.pad_before, self.pad_after
        if pb or pa:
            return grad_padded[
                :,
                :,
                pb : grad_padded.shape[2] - pa,
                pb : grad_padded.shape[3] - pa,
            ]
        return grad_padded

    def _backward_arena(
        self, grad_out: np.ndarray, cols: np.ndarray, padded_shape: tuple
    ) -> np.ndarray:
        """Allocation-free backward on the channel-major column layout."""
        k, s, c = self.kernel_size, self.stride, self.in_channels
        n, oc, oh, ow = grad_out.shape
        p = oh * ow
        dt = grad_out.dtype
        if grad_out.flags.c_contiguous:
            g3 = grad_out.reshape(n, oc, p)
        else:
            # e.g. an interior view of an upstream layer's padded-grad
            # buffer; compact it once so the GEMMs below get BLAS strides
            gbuf = self._buf("gout", grad_out.shape, dt)
            np.copyto(gbuf, grad_out)
            g3 = gbuf.reshape(n, oc, p)
        weight = self.params["weight"]
        kernel = weight.value.reshape(oc, -1)
        # dW: (N, out_c, P) @ (N, P, C*k*k) per batch item, reduced over N
        dw_batch = self._buf("dw_batch", (n, oc, c * k * k), dt)
        np.matmul(g3, cols.transpose(0, 2, 1), out=dw_batch)
        dw = self._buf("dw", (oc, c * k * k), dt)
        np.sum(dw_batch, axis=0, out=dw)
        weight.grad += dw.reshape(weight.shape)
        if self.use_bias:
            db = self._buf("db", (oc,), dt)
            np.sum(g3, axis=(0, 2), out=db)
            self.params["bias"].grad += db
        # dX: back to column space, then scatter-add (col2im adjoint on
        # the channel-major layout — no transposes needed)
        gcols = self._buf("gcols", (n, c * k * k, p), dt)
        np.matmul(kernel.T, g3, out=gcols)
        if k == 1 and s == 1 and not (self.pad_before or self.pad_after):
            # 1x1 conv: column space IS image space, nothing to scatter
            return gcols.reshape(n, c, oh, ow)
        g6 = gcols.reshape(n, c, k, k, oh, ow)
        grad_padded = self._buf("grad_padded", padded_shape, dt)
        grad_padded[...] = 0.0
        for i in range(k):
            for j in range(k):
                grad_padded[
                    :, :, i : i + oh * s : s, j : j + ow * s : s
                ] += g6[:, :, i, j]
        pb, pa = self.pad_before, self.pad_after
        if pb or pa:
            return grad_padded[
                :,
                :,
                pb : grad_padded.shape[2] - pa,
                pb : grad_padded.shape[3] - pa,
            ]
        return grad_padded

    def output_shape(self, input_shape: tuple) -> tuple:
        c, h, w = input_shape
        if c != self.in_channels:
            raise ValueError(
                f"Conv2D expects {self.in_channels} channels, got shape {input_shape}"
            )
        oh, ow = self._out_hw(h, w)
        return (self.out_channels, oh, ow)

    def flops(self, input_shape: tuple) -> int:
        _, oh, ow = self.output_shape(input_shape)
        k2c = self.kernel_size * self.kernel_size * self.in_channels
        per_output = 2 * k2c + (1 if self.use_bias else 0)
        return per_output * self.out_channels * oh * ow

    def get_config(self) -> dict:
        return {
            "in_channels": self.in_channels,
            "out_channels": self.out_channels,
            "kernel_size": self.kernel_size,
            "stride": self.stride,
            "padding": self.padding
            if isinstance(self.padding, int)
            else list(self.padding),
            "use_bias": self.use_bias,
            "weight_init": self.weight_init,
            "dtype": dtype_label(self.dtype),
        }
