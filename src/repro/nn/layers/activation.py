"""Elementwise activation layers."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer

__all__ = ["ReLU", "LeakyReLU", "Sigmoid", "Tanh"]


class ReLU(Layer):
    """Rectified linear unit, ``max(x, 0)``."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if self._arena is not None:
            mask = self._buf("mask", x.shape, np.bool_)
            np.greater(x, 0, out=mask)
            out = self._buf("out", x.shape, x.dtype)
            # zero-fill + masked copy is bitwise np.where(mask, x, 0.0)
            # (an out= multiply would turn -0.0/inf inputs into -0.0/nan)
            out[...] = 0.0
            np.copyto(out, x, where=mask)
        else:
            mask = x > 0
            out = np.where(mask, x, 0.0)
        self._mask = mask if training else None
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before a training-mode forward")
        if self._arena is not None:
            grad_in = self._buf("grad_in", grad_out.shape, grad_out.dtype)
            np.multiply(grad_out, self._mask, out=grad_in)
            return grad_in
        return grad_out * self._mask

    def flops(self, input_shape: tuple) -> int:
        return int(np.prod(input_shape))


class LeakyReLU(Layer):
    """``x if x > 0 else alpha * x``."""

    def __init__(self, alpha: float = 0.01) -> None:
        super().__init__()
        if not 0.0 <= alpha < 1.0:
            raise ValueError(f"alpha must be in [0, 1), got {alpha}")
        self.alpha = float(alpha)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if self._arena is not None:
            mask = self._buf("mask", x.shape, np.bool_)
            np.greater(x, 0, out=mask)
            out = self._buf("out", x.shape, x.dtype)
            np.multiply(x, self.alpha, out=out)
            np.copyto(out, x, where=mask)
        else:
            mask = x > 0
            out = np.where(mask, x, self.alpha * x)
        self._mask = mask if training else None
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before a training-mode forward")
        if self._arena is not None:
            grad_in = self._buf("grad_in", grad_out.shape, grad_out.dtype)
            np.multiply(grad_out, self.alpha, out=grad_in)
            np.copyto(grad_in, grad_out, where=self._mask)
            return grad_in
        # np.where over array operands preserves dtype; building the
        # scale factor from python scalars would silently yield float64
        return np.where(self._mask, grad_out, grad_out * self.alpha)

    def flops(self, input_shape: tuple) -> int:
        return 2 * int(np.prod(input_shape))

    def get_config(self) -> dict:
        return {"alpha": self.alpha}


class Sigmoid(Layer):
    """Logistic sigmoid with numerically stable split evaluation."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = np.empty_like(x)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out[~pos] = ex / (1.0 + ex)
        self._out = out if training else None
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before a training-mode forward")
        return grad_out * self._out * (1.0 - self._out)

    def flops(self, input_shape: tuple) -> int:
        return 4 * int(np.prod(input_shape))


class Tanh(Layer):
    """Hyperbolic tangent."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = np.tanh(x)
        self._out = out if training else None
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before a training-mode forward")
        return grad_out * (1.0 - self._out**2)

    def flops(self, input_shape: tuple) -> int:
        return 4 * int(np.prod(input_shape))
