"""Layer abstraction for the NumPy NN framework.

Every layer implements a ``forward``/``backward`` pair operating on
batched float arrays in the layer's compute dtype (float64 by default,
float32 on the workflow fast path — see :mod:`repro.nn.dtype`), exposes
its trainable parameters and their
gradients by name, reports its output shape and FLOP cost for a given
input shape, and serializes its configuration.  Convolutional data
layout is NCHW throughout (batch, channels, height, width) — channel-
contiguous inner dimensions keep the im2col hot loops cache friendly.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.nn.dtype import resolve_dtype

__all__ = ["Layer", "Parameter"]


class Parameter:
    """A trainable array with its gradient accumulator.

    The stored dtype comes from the compute-dtype policy
    (:mod:`repro.nn.dtype`): ``dtype=None`` keeps the historical float64
    behaviour; layers constructed on the float32 fast path pass their
    resolved dtype through.
    """

    __slots__ = ("value", "grad")

    def __init__(self, value: np.ndarray, dtype=None) -> None:
        self.value = np.asarray(value, dtype=resolve_dtype(dtype))
        self.grad = np.zeros_like(self.value)

    @property
    def shape(self) -> tuple:
        return self.value.shape

    @property
    def size(self) -> int:
        return int(self.value.size)

    def zero_grad(self) -> None:
        """Reset the gradient accumulator in place (no reallocation)."""
        self.grad[...] = 0.0


class Layer:
    """Base class: stateless by default, override what applies.

    Subclasses with trainable parameters register them in
    ``self.params`` (an ordered ``dict[str, Parameter]``).  Layers that
    behave differently in training vs. evaluation (dropout, batch norm)
    read the ``training`` flag passed to :meth:`forward`.
    """

    def __init__(self) -> None:
        self.params: dict[str, Parameter] = {}
        # optional BufferArena binding (repro.nn.arena): when set, the
        # layer's forward/backward take the allocation-free fast path;
        # when None, the historical allocate-per-call code runs
        # byte-for-byte (float64 replay relies on this)
        self._arena = None
        self._arena_owner: str = ""

    # -- scratch storage -----------------------------------------------------

    @property
    def arena(self):
        """The bound :class:`~repro.nn.arena.BufferArena`, or ``None``."""
        return self._arena

    def bind_arena(self, arena, owner: str = "") -> None:
        """Attach ``arena`` under a unique ``owner`` key.

        Composite layers override this to propagate the binding to their
        sublayers with extended owner paths.
        """
        self._arena = arena
        self._arena_owner = owner or type(self).__name__

    def unbind_arena(self) -> None:
        """Detach the arena; the layer reverts to allocate-per-call."""
        self._arena = None

    def _buf(self, name: str, shape: tuple, dtype=None) -> np.ndarray:
        """This layer's pinned scratch buffer (fast path only)."""
        return self._arena.buffer(self._arena_owner, name, shape, dtype)

    # -- computation ---------------------------------------------------------

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output; cache what backward needs."""
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Given dL/d(output), accumulate parameter grads and return dL/d(input)."""
        raise NotImplementedError

    # -- shape and cost ------------------------------------------------------

    def output_shape(self, input_shape: tuple) -> tuple:
        """Per-sample output shape for a per-sample ``input_shape``.

        Defaults to shape-preserving (elementwise layers).
        """
        return tuple(input_shape)

    def flops(self, input_shape: tuple) -> int:
        """Forward-pass floating-point operations per sample.

        Defaults to 0 for layers that are pure data movement.
        Multiply-accumulate counts as 2 FLOPs.
        """
        return 0

    # -- parameters ------------------------------------------------------------

    def parameters(self) -> Iterator[tuple[str, Parameter]]:
        """Iterate ``(name, parameter)`` pairs."""
        yield from self.params.items()

    def n_parameters(self) -> int:
        """Total trainable scalar count."""
        return sum(p.size for p in self.params.values())

    def zero_grad(self) -> None:
        """Reset all parameter gradients."""
        for param in self.params.values():
            param.zero_grad()

    # -- non-trainable state ------------------------------------------------

    def state(self) -> dict[str, np.ndarray]:
        """Non-trainable mutable arrays (e.g. batch-norm running stats).

        Checkpointing saves these alongside parameters; layers without
        such state return an empty dict.
        """
        return {}

    def load_state(self, state: dict[str, np.ndarray]) -> None:
        """Restore arrays produced by :meth:`state`."""
        if state:
            raise KeyError(
                f"{type(self).__name__} holds no state, got keys {sorted(state)}"
            )

    # -- serialization ----------------------------------------------------------

    def get_config(self) -> dict:
        """Constructor arguments needed to rebuild this layer."""
        return {}

    def __repr__(self) -> str:
        config = ", ".join(f"{k}={v!r}" for k, v in self.get_config().items())
        return f"{type(self).__name__}({config})"
