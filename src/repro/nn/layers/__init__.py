"""Layer zoo for the NumPy NN framework (NCHW data layout)."""

from repro.nn.layers.activation import LeakyReLU, ReLU, Sigmoid, Tanh
from repro.nn.layers.base import Layer, Parameter
from repro.nn.layers.conv import Conv2D, col2im, im2col
from repro.nn.layers.dense import Dense
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.flatten import Flatten
from repro.nn.layers.norm import BatchNorm1D, BatchNorm2D
from repro.nn.layers.pooling import AvgPool2D, GlobalAvgPool2D, MaxPool2D

LAYER_TYPES = {
    cls.__name__: cls
    for cls in (
        ReLU,
        LeakyReLU,
        Sigmoid,
        Tanh,
        Conv2D,
        Dense,
        Dropout,
        Flatten,
        BatchNorm1D,
        BatchNorm2D,
        AvgPool2D,
        MaxPool2D,
        GlobalAvgPool2D,
    )
}

__all__ = [
    "Layer",
    "Parameter",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Conv2D",
    "im2col",
    "col2im",
    "Dense",
    "Dropout",
    "Flatten",
    "BatchNorm1D",
    "BatchNorm2D",
    "AvgPool2D",
    "MaxPool2D",
    "GlobalAvgPool2D",
    "LAYER_TYPES",
]
