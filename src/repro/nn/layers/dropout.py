"""Inverted dropout."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer
from repro.utils.rng import fallback_rng

__all__ = ["Dropout"]


class Dropout(Layer):
    """Inverted dropout: scaling happens at train time, eval is identity.

    Parameters
    ----------
    rate:
        Probability of zeroing each activation during training.
    rng:
        Generator for mask sampling; injectable for reproducibility.
    """

    def __init__(self, rate: float = 0.5, *, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self.rng = rng if rng is not None else fallback_rng()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        # cast the boolean mask to the input dtype before scaling: the
        # draw itself stays float64 (identical RNG sequence across
        # dtypes) but bool / float would otherwise produce a float64
        # mask that upcasts a float32 activation stream
        self._mask = (self.rng.random(x.shape) < keep).astype(x.dtype) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            # rate == 0 or eval-mode forward: gradient passes through
            return grad_out
        return grad_out * self._mask

    def get_config(self) -> dict:
        return {"rate": self.rate}
