"""From-scratch NumPy deep-learning framework (PyTorch substitute).

Provides everything the NAS needs of a training stack: NCHW conv nets
with backprop (:mod:`repro.nn.layers`), a sequential container
(:class:`~repro.nn.network.Network`), losses, SGD/Adam optimizers,
accuracy metrics, FLOP accounting for the multi-objective search, full
checkpointing, and an epoch-wise :class:`~repro.nn.trainer.Trainer`
that satisfies the Algorithm-1 model protocol.
"""

from repro.nn import layers
from repro.nn.flops import layer_flops_table, network_flops, network_mflops
from repro.nn.layers import (
    AvgPool2D,
    BatchNorm1D,
    BatchNorm2D,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    Layer,
    LeakyReLU,
    MaxPool2D,
    Parameter,
    ReLU,
    Sigmoid,
    Tanh,
)
from repro.nn.losses import MeanSquaredError, SoftmaxCrossEntropy, log_softmax, softmax
from repro.nn.metrics import accuracy, accuracy_percent, confusion_matrix, per_class_accuracy
from repro.nn.network import Network
from repro.nn.optimizers import SGD, Adam, Optimizer, clip_grad_norm
from repro.nn.schedules import CosineAnnealing, ExponentialDecay, LRSchedule, StepDecay
from repro.nn.serialization import (
    architecture_config,
    load_checkpoint,
    load_state_dict,
    network_from_config,
    save_checkpoint,
    state_dict,
)
from repro.nn.trainer import EpochStats, Trainer

__all__ = [
    "layers",
    "Layer",
    "Parameter",
    "Conv2D",
    "Dense",
    "Dropout",
    "Flatten",
    "BatchNorm1D",
    "BatchNorm2D",
    "AvgPool2D",
    "MaxPool2D",
    "GlobalAvgPool2D",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Network",
    "SoftmaxCrossEntropy",
    "MeanSquaredError",
    "softmax",
    "log_softmax",
    "SGD",
    "Adam",
    "Optimizer",
    "clip_grad_norm",
    "LRSchedule",
    "StepDecay",
    "ExponentialDecay",
    "CosineAnnealing",
    "accuracy",
    "accuracy_percent",
    "confusion_matrix",
    "per_class_accuracy",
    "network_flops",
    "network_mflops",
    "layer_flops_table",
    "architecture_config",
    "network_from_config",
    "state_dict",
    "load_state_dict",
    "save_checkpoint",
    "load_checkpoint",
    "EpochStats",
    "Trainer",
]
