"""Weight initialization schemes for the NumPy NN framework.

The genome decoder builds many small CNNs; stable training across random
architectures needs variance-preserving initialization, so He-normal is
the default for ReLU stacks and Glorot-uniform for linear outputs.

Dtype policy: random draws always happen in float64 and are cast to the
requested compute dtype afterwards.  That keeps the RNG draw sequence —
and therefore seeded reproducibility — identical across float32 and
float64 runs; only the stored precision differs.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.dtype import resolve_dtype

__all__ = ["he_normal", "glorot_uniform", "zeros", "ones", "get_initializer"]

Initializer = Callable[..., np.ndarray]


def _fans(shape: tuple) -> tuple[int, int]:
    """Compute (fan_in, fan_out) for dense and conv kernels.

    Dense kernels are ``(in, out)``; conv kernels are
    ``(out_channels, in_channels, kh, kw)``.
    """
    if len(shape) == 2:
        return shape[0], shape[1]
    if len(shape) == 4:
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    size = int(np.prod(shape))
    return size, size


def he_normal(shape: tuple, rng: np.random.Generator, dtype=None) -> np.ndarray:
    """He-normal: N(0, sqrt(2 / fan_in)); standard for ReLU networks."""
    fan_in, _ = _fans(shape)
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape).astype(resolve_dtype(dtype))


def glorot_uniform(shape: tuple, rng: np.random.Generator, dtype=None) -> np.ndarray:
    """Glorot-uniform: U(-limit, limit), limit = sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-limit, limit, size=shape).astype(resolve_dtype(dtype))


def zeros(shape: tuple, rng: np.random.Generator, dtype=None) -> np.ndarray:
    """All-zero initialization (biases, batch-norm shift)."""
    return np.zeros(shape, dtype=resolve_dtype(dtype))


def ones(shape: tuple, rng: np.random.Generator, dtype=None) -> np.ndarray:
    """All-one initialization (batch-norm scale)."""
    return np.ones(shape, dtype=resolve_dtype(dtype))


_REGISTRY: dict[str, Initializer] = {
    "he_normal": he_normal,
    "glorot_uniform": glorot_uniform,
    "zeros": zeros,
    "ones": ones,
}


def get_initializer(name: str) -> Initializer:
    """Look up an initializer by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown initializer {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
