"""Genetic operators on NSGA-Net genomes.

NSGA-Net evolves bit-string genomes with crossover between two parents
and per-bit mutation.  Both operators act on the flat bit representation
and rebuild structured genomes, so they are agnostic to phase layout.
"""

from __future__ import annotations

import numpy as np

from repro.nas.genome import Genome

__all__ = ["uniform_crossover", "point_crossover", "bitflip_mutation"]


def _check_compatible(a: Genome, b: Genome) -> None:
    if a.nodes_per_phase != b.nodes_per_phase:
        raise ValueError(
            f"cannot cross genomes with phase layouts {a.nodes_per_phase} "
            f"and {b.nodes_per_phase}"
        )


def uniform_crossover(
    a: Genome, b: Genome, rng: np.random.Generator, *, swap_probability: float = 0.5
) -> tuple[Genome, Genome]:
    """Exchange each bit between parents independently with ``swap_probability``."""
    _check_compatible(a, b)
    if not 0.0 <= swap_probability <= 1.0:
        raise ValueError(f"swap_probability must be in [0, 1], got {swap_probability}")
    bits_a = np.array(a.to_bits())
    bits_b = np.array(b.to_bits())
    swap = rng.random(bits_a.size) < swap_probability
    child_a = np.where(swap, bits_b, bits_a)
    child_b = np.where(swap, bits_a, bits_b)
    layout = a.nodes_per_phase
    return Genome.from_bits(child_a, layout), Genome.from_bits(child_b, layout)


def point_crossover(a: Genome, b: Genome, rng: np.random.Generator) -> tuple[Genome, Genome]:
    """Single-point crossover at a uniformly random cut."""
    _check_compatible(a, b)
    bits_a = list(a.to_bits())
    bits_b = list(b.to_bits())
    cut = int(rng.integers(1, len(bits_a)))  # at least one bit from each side
    child_a = bits_a[:cut] + bits_b[cut:]
    child_b = bits_b[:cut] + bits_a[cut:]
    layout = a.nodes_per_phase
    return Genome.from_bits(child_a, layout), Genome.from_bits(child_b, layout)


def bitflip_mutation(
    genome: Genome, rng: np.random.Generator, *, rate: float | None = None
) -> Genome:
    """Flip each bit independently; default rate is ``1 / genome_length``."""
    bits = np.array(genome.to_bits())
    if rate is None:
        rate = 1.0 / bits.size
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"rate must be in [0, 1], got {rate}")
    flips = rng.random(bits.size) < rate
    return Genome.from_bits(np.where(flips, 1 - bits, bits), genome.nodes_per_phase)
