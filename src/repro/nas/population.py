"""Individuals and populations for the NAS.

An :class:`Individual` couples a genome with its evaluation outcome
(fitness, FLOPs, training trace) and identity metadata (model id,
generation) used by the lineage tracker.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.plugin import TrainingResult
from repro.nas.genome import Genome

__all__ = ["Individual", "Population"]


@dataclass
class Individual:
    """One candidate architecture and everything measured about it.

    Attributes
    ----------
    genome:
        The NSGA-Net encoding.
    model_id:
        Unique, monotonically assigned id within a search run.
    generation:
        Generation in which this individual was created (0 = initial).
    fitness:
        Validation accuracy in percent, as reported to the NAS (the
        engine's converged prediction, or the last measured value).
    flops:
        Forward FLOPs per sample of the decoded network.
    result:
        Full Algorithm-1 trace (histories, epochs, overhead).
    epoch_seconds:
        Per-epoch wall times (measured or cost-modelled) for the epochs
        actually trained; the scheduler replays these.
    eval_attempt:
        Current evaluation attempt (0 = first try); the fault-tolerance
        layer bumps this on retries so evaluators derive re-seeded RNG
        children.
    quarantined:
        Whether the fault policy gave up on this candidate and assigned
        penalized objectives instead of measured ones.
    fault_events:
        Every fault/retry/quarantine decision taken for this candidate
        (dict snapshots of :class:`~repro.scheduler.faults.FaultEvent`).
    cache_hit:
        Whether this candidate's outcome was copied from the evaluation
        cache (a previously evaluated candidate with the same canonical
        genome) instead of being trained.
    cache_source:
        Model id of the candidate whose evaluation was reused when
        ``cache_hit`` is set.
    logical_tick:
        Position of this candidate on the steady-state logical clock:
        the commit index at which its result was folded into the
        population (equal to ``model_id`` by construction, since steady
        commits apply in submission order).  ``None`` for barrier-mode
        runs.
    arena_enabled:
        Whether training ran on the allocation-free buffer-arena fast
        path (see :mod:`repro.nn.arena`).
    arena_peak_bytes:
        Peak scratch footprint of the network's arena for this
        evaluation (0 when the arena was disabled).
    predicted_fitness:
        Cross-architecture surrogate prediction made when this candidate
        was bred (``None`` when the surrogate is off or had not yet
        reached its cold-start floor).
    predicted_rank:
        1-based rank of the prediction against the breeding population's
        measured fitnesses (1 = predicted better than every member).
    budget_assigned:
        Reduced epoch budget assigned by the surrogate allocator;
        ``None`` means the full ``max_epochs`` budget.
    skip_reason:
        Why the allocator flagged this candidate — ``"predicted_loser"``
        (probed at the reduced budget) or ``"exploration"`` (a predicted
        loser granted full budget by the exploration floor).  ``None``
        for predicted winners and unscored candidates.
    """

    genome: Genome
    model_id: int
    generation: int
    fitness: float | None = None
    flops: int | None = None
    result: TrainingResult | None = None
    epoch_seconds: list = field(default_factory=list)
    eval_attempt: int = 0
    quarantined: bool = False
    fault_events: list = field(default_factory=list)
    cache_hit: bool = False
    cache_source: int | None = None
    logical_tick: int | None = None
    arena_enabled: bool = False
    arena_peak_bytes: int = 0
    predicted_fitness: float | None = None
    predicted_rank: int | None = None
    budget_assigned: int | None = None
    skip_reason: str | None = None

    @property
    def evaluated(self) -> bool:
        return self.fitness is not None and self.flops is not None

    def objectives(self) -> tuple[float, float]:
        """Minimization objectives: (-accuracy, flops)."""
        if not self.evaluated:
            raise ValueError(f"model {self.model_id} has not been evaluated")
        return (-float(self.fitness), float(self.flops))

    def to_dict(self) -> dict:
        """Lineage-record form."""
        return {
            "model_id": self.model_id,
            "generation": self.generation,
            "genome": self.genome.to_dict(),
            "fitness": self.fitness,
            "flops": self.flops,
            "epoch_seconds": list(self.epoch_seconds),
            "result": self.result.to_dict() if self.result else None,
            "quarantined": self.quarantined,
            "fault_events": [dict(e) for e in self.fault_events],
            "cache_hit": self.cache_hit,
            "cache_source": self.cache_source,
            "logical_tick": self.logical_tick,
            "arena_enabled": self.arena_enabled,
            "arena_peak_bytes": self.arena_peak_bytes,
            "predicted_fitness": self.predicted_fitness,
            "predicted_rank": self.predicted_rank,
            "budget_assigned": self.budget_assigned,
            "skip_reason": self.skip_reason,
        }


class Population:
    """An ordered collection of individuals with objective-array views."""

    def __init__(self, members: list[Individual] | None = None) -> None:
        self.members: list[Individual] = list(members or [])

    def __len__(self) -> int:
        return len(self.members)

    def __iter__(self):
        return iter(self.members)

    def __getitem__(self, idx):
        return self.members[idx]

    def append(self, individual: Individual) -> None:
        self.members.append(individual)

    def extend(self, individuals) -> None:
        self.members.extend(individuals)

    def objective_array(self) -> np.ndarray:
        """Stacked minimization objectives, shape ``(n, 2)``."""
        if not all(m.evaluated for m in self.members):
            missing = [m.model_id for m in self.members if not m.evaluated]
            raise ValueError(f"unevaluated members: {missing}")
        return np.array([m.objectives() for m in self.members], dtype=float)

    def subset(self, indices) -> "Population":
        """New population holding the members at ``indices`` (shared objects)."""
        return Population([self.members[i] for i in np.asarray(indices, dtype=int)])

    def best_fitness(self) -> float:
        """Highest validation accuracy in the population."""
        return max(float(m.fitness) for m in self.members if m.evaluated)
