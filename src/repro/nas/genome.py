"""NSGA-Net genome encoding.

NSGA-Net's macro search space (Lu et al., 2019) describes a CNN as a
sequence of *phases* separated by spatial down-sampling.  Each phase is
a small directed acyclic graph of identical computation nodes
(conv → batch-norm → ReLU blocks).  The genome encodes, per phase, a
bit-string with one bit per ordered node pair ``(i, j), i < j`` (node
``j`` consumes node ``i``'s output when set) plus one trailing bit for a
residual skip connection around the whole phase.

With the paper's 4 nodes per phase that is ``4*3/2 + 1 = 7`` bits per
phase; three phases give a 21-bit genome.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations

import numpy as np

__all__ = ["PhaseGenome", "Genome", "random_genome", "n_connection_bits"]

#: Above this node count the factorial canonicalization search is not
#: worth it; phases are returned unnormalized (the cache then simply
#: misses some isomorphic duplicates — correctness is unaffected).
_CANONICAL_MAX_NODES = 8


def n_connection_bits(n_nodes: int) -> int:
    """Connection bits for a phase of ``n_nodes`` (excludes the skip bit)."""
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    return n_nodes * (n_nodes - 1) // 2


@dataclass(frozen=True)
class PhaseGenome:
    """One phase's connectivity: connection bits + residual skip bit.

    ``bits`` is laid out pair-major: ``(0,1), (0,2), (1,2), (0,3), ...``
    (all predecessors of node 1, then node 2, ...), followed by the skip
    bit — matching NSGA-Net's encoding.
    """

    n_nodes: int
    bits: tuple

    def __post_init__(self) -> None:
        expected = n_connection_bits(self.n_nodes) + 1
        bits = tuple(int(b) for b in self.bits)
        if len(bits) != expected:
            raise ValueError(
                f"phase with {self.n_nodes} nodes needs {expected} bits, got {len(bits)}"
            )
        if any(b not in (0, 1) for b in bits):
            raise ValueError(f"bits must be 0/1, got {bits}")
        object.__setattr__(self, "bits", bits)

    @property
    def skip(self) -> bool:
        """Whether the phase has a residual connection around it."""
        return bool(self.bits[-1])

    def connection_matrix(self) -> np.ndarray:
        """Boolean adjacency ``A[i, j]`` = node j consumes node i (i < j)."""
        matrix = np.zeros((self.n_nodes, self.n_nodes), dtype=bool)
        idx = 0
        for j in range(1, self.n_nodes):
            for i in range(j):
                matrix[i, j] = bool(self.bits[idx])
                idx += 1
        return matrix

    def predecessors(self, node: int) -> list[int]:
        """Indices of nodes feeding ``node``."""
        matrix = self.connection_matrix()
        return [i for i in range(node) if matrix[i, node]]

    def successors(self, node: int) -> list[int]:
        """Indices of nodes consuming ``node``'s output."""
        matrix = self.connection_matrix()
        return [j for j in range(node + 1, self.n_nodes) if matrix[node, j]]

    def active_nodes(self) -> list[int]:
        """Nodes on some input→output path.

        Every node computes (sourceless nodes read the phase input,
        sinkless nodes feed the phase output), so all nodes are active in
        NSGA-Net's macro encoding; kept as a method for forward
        compatibility with pruned variants and used by the surrogate's
        architecture features.
        """
        return list(range(self.n_nodes))

    @property
    def n_connections(self) -> int:
        """Count of set connection bits (a complexity feature)."""
        return sum(self.bits[:-1])

    def canonical(self) -> "PhaseGenome":
        """Connectivity-normalized form: the same DAG with the
        lexicographically smallest bit string.

        NSGA-Net's macro encoding is redundant: relabeling nodes while
        preserving edge direction (``i < j``) yields a different bit
        string that decodes to an isomorphic phase — same routing, same
        FLOPs, same forward function up to weight values.  This method
        picks one representative per isomorphism class by brute-forcing
        all direction-preserving node permutations (at most ``n!``;
        the paper's phases have 4 nodes, so 24) and keeping the minimal
        bit tuple.  The skip bit is routing around the *whole* phase and
        is unaffected by relabeling.

        Dead-edge pruning is intentionally a no-op here: in this
        decoder every node computes (sourceless nodes read the adapted
        phase input, sinkless nodes feed the phase output — see
        :meth:`active_nodes`), so the encoding has no dead structure to
        remove; isomorphic relabeling is the only true redundancy.
        """
        n = self.n_nodes
        if n > _CANONICAL_MAX_NODES:
            return self
        matrix = self.connection_matrix()
        edges = [(i, j) for i in range(n) for j in range(i + 1, n) if matrix[i, j]]
        best = self.bits
        for perm in permutations(range(n)):
            # perm[i] is node i's new label; edge direction must survive
            if any(perm[i] > perm[j] for i, j in edges):
                continue
            relabeled = np.zeros((n, n), dtype=bool)
            for i, j in edges:
                relabeled[perm[i], perm[j]] = True
            bits = tuple(
                int(relabeled[i, j]) for j in range(1, n) for i in range(j)
            ) + (self.bits[-1],)
            if bits < best:
                best = bits
        if best == self.bits:
            return self
        return PhaseGenome(n, best)


@dataclass(frozen=True)
class Genome:
    """A full architecture genome: one :class:`PhaseGenome` per phase."""

    phases: tuple

    def __post_init__(self) -> None:
        phases = tuple(self.phases)
        if not phases:
            raise ValueError("genome needs at least one phase")
        if any(not isinstance(p, PhaseGenome) for p in phases):
            raise TypeError("phases must be PhaseGenome instances")
        object.__setattr__(self, "phases", phases)

    @property
    def n_phases(self) -> int:
        return len(self.phases)

    @property
    def nodes_per_phase(self) -> tuple:
        return tuple(p.n_nodes for p in self.phases)

    def to_bits(self) -> tuple:
        """Flatten to the genetic-operator representation."""
        return tuple(b for phase in self.phases for b in phase.bits)

    @classmethod
    def from_bits(cls, bits, nodes_per_phase) -> "Genome":
        """Rebuild from a flat bit tuple and the per-phase node counts."""
        bits = tuple(int(b) for b in bits)
        phases = []
        cursor = 0
        for n_nodes in nodes_per_phase:
            width = n_connection_bits(n_nodes) + 1
            phases.append(PhaseGenome(n_nodes, bits[cursor : cursor + width]))
            cursor += width
        if cursor != len(bits):
            raise ValueError(
                f"bit string length {len(bits)} does not match phases "
                f"{tuple(nodes_per_phase)} (expected {cursor})"
            )
        return cls(tuple(phases))

    def to_dict(self) -> dict:
        """Lineage-record form."""
        return {
            "nodes_per_phase": list(self.nodes_per_phase),
            "bits": list(self.to_bits()),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Genome":
        return cls.from_bits(payload["bits"], payload["nodes_per_phase"])

    def key(self) -> str:
        """Compact architecture identifier, e.g. ``"0110101-0010011-1100110"``."""
        return "-".join("".join(str(b) for b in p.bits) for p in self.phases)

    def canonical(self) -> "Genome":
        """Connectivity-normalized genome: each phase canonicalized.

        Genomes decoding to isomorphic networks share one canonical
        form, which is what the evaluation cache and the genome-keyed
        RNG policy key on (see :meth:`PhaseGenome.canonical`).
        """
        phases = tuple(p.canonical() for p in self.phases)
        if all(c is p for c, p in zip(phases, self.phases)):
            return self
        return Genome(phases)

    def canonical_key(self) -> str:
        """:meth:`key` of the canonical form — equal across isomorphic genomes."""
        return self.canonical().key()

    @property
    def n_connections(self) -> int:
        """Total set connection bits across phases."""
        return sum(p.n_connections for p in self.phases)

    @property
    def n_skips(self) -> int:
        """Number of phases with a residual skip."""
        return sum(1 for p in self.phases if p.skip)


def random_genome(
    rng: np.random.Generator,
    *,
    n_phases: int = 3,
    nodes_per_phase: int = 4,
    density: float = 0.5,
) -> Genome:
    """Sample a genome with i.i.d. Bernoulli(``density``) bits."""
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density}")
    phases = []
    for _ in range(n_phases):
        width = n_connection_bits(nodes_per_phase) + 1
        bits = (rng.random(width) < density).astype(int)
        phases.append(PhaseGenome(nodes_per_phase, tuple(bits)))
    return Genome(tuple(phases))
