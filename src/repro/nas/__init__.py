"""NSGA-Net: multi-objective evolutionary neural architecture search.

Re-implementation of the NAS the paper composes A4NN with (Lu et al.,
2019): bit-string genomes over a phase-structured macro search space
(:mod:`repro.nas.genome`), a decoder materializing genomes as runnable
networks (:mod:`repro.nas.decoder`), NSGA-II selection machinery
(:mod:`repro.nas.nsga2`), genetic operators
(:mod:`repro.nas.operators`), and the search driver
(:mod:`repro.nas.search`) with two interchangeable evaluation backends —
real training (:mod:`repro.nas.evaluation`) and paper-scale surrogate
curves (:mod:`repro.nas.surrogate`).
"""

from repro.nas.decoder import DecoderConfig, PhaseBlock, decode_genome
from repro.nas.evaluation import Evaluator, TrainingEvaluator
from repro.nas.genome import Genome, PhaseGenome, n_connection_bits, random_genome
from repro.nas.nsga2 import (
    binary_tournament,
    crowded_compare,
    crowding_distance,
    dominates,
    environmental_selection,
    fast_non_dominated_sort,
    pareto_front_mask,
)
from repro.nas.operators import bitflip_mutation, point_crossover, uniform_crossover
from repro.nas.population import Individual, Population
from repro.nas.search import GenerationStats, NSGANet, NSGANetConfig, SearchResult
from repro.nas.surrogate import (
    REGIMES,
    CurveRegime,
    LearningCurveModel,
    SurrogateEvaluator,
    sample_curve,
)

__all__ = [
    "DecoderConfig",
    "PhaseBlock",
    "decode_genome",
    "Evaluator",
    "TrainingEvaluator",
    "Genome",
    "PhaseGenome",
    "n_connection_bits",
    "random_genome",
    "binary_tournament",
    "crowded_compare",
    "crowding_distance",
    "dominates",
    "environmental_selection",
    "fast_non_dominated_sort",
    "pareto_front_mask",
    "bitflip_mutation",
    "point_crossover",
    "uniform_crossover",
    "Individual",
    "Population",
    "GenerationStats",
    "NSGANet",
    "NSGANetConfig",
    "SearchResult",
    "REGIMES",
    "CurveRegime",
    "LearningCurveModel",
    "SurrogateEvaluator",
    "sample_curve",
]
