"""Evaluators: how the NAS measures an individual.

Two interchangeable implementations of the :class:`Evaluator` protocol:

* :class:`TrainingEvaluator` — decodes the genome and actually trains
  the NumPy network on a generated XFEL dataset (*real mode*).
* :class:`~repro.nas.surrogate.SurrogateEvaluator` — drives the same
  Algorithm-1 loop with an architecture-conditioned synthetic learning
  curve (*surrogate mode*, for paper-scale sweeps).

Both fill the same :class:`~repro.nas.population.Individual` fields, so
the search, scheduler, and lineage tracker cannot tell them apart.
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

import numpy as np

from repro.core.engine import PredictionEngine
from repro.core.plugin import run_training_loop
from repro.nas.decoder import DecoderConfig, decode_genome
from repro.nas.population import Individual
from repro.nn.flops import network_flops
from repro.nn.optimizers import Adam
from repro.nn.trainer import Trainer
from repro.tooling.sanitizer import NumericalFault, Sanitizer
from repro.utils.rng import RngStream
from repro.xfel.dataset import DiffractionDataset

__all__ = ["Evaluator", "TrainingEvaluator", "EpochObserver", "retry_salt"]


def retry_salt(individual: Individual) -> tuple:
    """RNG stream salt for the individual's current evaluation attempt.

    Empty for the first attempt (so historical runs replay
    byte-identically) and ``("retry", n)`` for the ``n``-th retry, giving
    each attempt statistically independent init/shuffle/curve draws while
    staying fully derived from the root seed.
    """
    attempt = getattr(individual, "eval_attempt", 0)
    return () if not attempt else ("retry", int(attempt))

#: Callback signature invoked after every trained epoch:
#: ``observer(individual, epoch, fitness, prediction, context)`` where
#: ``context`` carries evaluator-specific extras (e.g. the live network).
EpochObserver = Callable[[Individual, int, float, float | None, dict], None]


@runtime_checkable
class Evaluator(Protocol):
    """What the search requires of an evaluation backend."""

    max_epochs: int

    def evaluate(self, individual: Individual) -> Individual:
        """Train/score ``individual`` in place and return it."""


class TrainingEvaluator:
    """Real-mode evaluation: decode and train the network (Algorithm 1).

    Parameters
    ----------
    dataset:
        The XFEL train/test split.
    engine:
        Prediction engine; ``None`` gives the standalone-NAS baseline
        (full-budget truncated training).
    max_epochs:
        Training budget per network (paper: 25).
    decoder_config:
        Channel widths / head geometry for genome decoding.
    batch_size, learning_rate:
        Training hyper-parameters shared by all candidates.
    rng_stream:
        Deterministic stream; each model derives its own init/shuffle
        generators from its model id.
    observers:
        Per-epoch callbacks (the workflow orchestrator hooks lineage
        tracking and checkpointing in here).
    sanitize:
        Attach a :class:`~repro.tooling.sanitizer.Sanitizer` to every
        candidate's network and trainer; numerical faults abort the
        model's training with :class:`NumericalFault`.
    on_fault:
        Callback ``on_fault(individual, fault)`` invoked before a
        :class:`NumericalFault` propagates (the orchestrator records it
        into the model's lineage record here).
    """

    def __init__(
        self,
        dataset: DiffractionDataset,
        engine: PredictionEngine | None,
        *,
        max_epochs: int = 25,
        decoder_config: DecoderConfig | None = None,
        batch_size: int = 16,
        learning_rate: float = 1e-3,
        rng_stream: RngStream | None = None,
        observers: list[EpochObserver] | None = None,
        sanitize: bool = False,
        on_fault: Callable[[Individual, NumericalFault], None] | None = None,
    ) -> None:
        self.dataset = dataset
        self.engine = engine
        self.max_epochs = int(max_epochs)
        self.decoder_config = decoder_config or DecoderConfig(
            input_shape=dataset.input_shape, n_classes=dataset.n_classes
        )
        self.batch_size = int(batch_size)
        self.learning_rate = float(learning_rate)
        self.rng_stream = rng_stream or RngStream(0)
        self.observers = list(observers or [])
        self.sanitize = bool(sanitize)
        self.on_fault = on_fault

    def evaluate(self, individual: Individual) -> Individual:
        """Decode, train with the Algorithm-1 loop, and fill the individual."""
        # retries (fault policy) re-derive the RNG children with an
        # attempt salt; attempt 0 keeps the historical stream names so
        # fault-free runs replay byte-identically
        salt = retry_salt(individual)
        init_rng = self.rng_stream.generator("init", individual.model_id, *salt)
        shuffle_rng = self.rng_stream.generator("shuffle", individual.model_id, *salt)
        network = decode_genome(
            individual.genome,
            self.decoder_config,
            rng=init_rng,
            name=f"model-{individual.model_id}",
        )
        sanitizer = None
        if self.sanitize:
            sanitizer = Sanitizer().watch(network)
        trainer = Trainer(
            network,
            self.dataset.x_train,
            self.dataset.y_train,
            self.dataset.x_test,
            self.dataset.y_test,
            optimizer=Adam(network, self.learning_rate),
            batch_size=self.batch_size,
            rng=shuffle_rng,
            sanitizer=sanitizer,
        )

        def on_epoch(epoch: int, fitness: float, prediction: float | None) -> None:
            context = {
                "network": network,
                "trainer": trainer,
                "epoch_stats": trainer.history[-1],
            }
            for observer in self.observers:
                observer(individual, epoch, fitness, prediction, context)

        try:
            result = run_training_loop(
                trainer, self.engine, self.max_epochs, epoch_callback=on_epoch
            )
        except NumericalFault as fault:
            # the poisoned measurement never reaches fitness_history; the
            # fault is recorded into lineage, then propagates to the caller
            if self.on_fault is not None:
                self.on_fault(individual, fault)
            raise

        individual.fitness = result.fitness
        individual.flops = network_flops(network)
        individual.result = result
        individual.epoch_seconds = [stats.wall_seconds for stats in trainer.history]
        return individual
