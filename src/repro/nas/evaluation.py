"""Evaluators: how the NAS measures an individual.

Two interchangeable implementations of the :class:`Evaluator` protocol:

* :class:`TrainingEvaluator` — decodes the genome and actually trains
  the NumPy network on a generated XFEL dataset (*real mode*).
* :class:`~repro.nas.surrogate.SurrogateEvaluator` — drives the same
  Algorithm-1 loop with an architecture-conditioned synthetic learning
  curve (*surrogate mode*, for paper-scale sweeps).

Both fill the same :class:`~repro.nas.population.Individual` fields, so
the search, scheduler, and lineage tracker cannot tell them apart.
"""

from __future__ import annotations

import hashlib

from typing import Callable, Protocol, runtime_checkable

import numpy as np

from repro.core.engine import PredictionEngine
from repro.core.plugin import run_training_loop
from repro.nas.decoder import DecoderConfig, decode_genome
from repro.nas.population import Individual
from repro.nn.dtype import dtype_label
from repro.nn.flops import network_flops
from repro.nn.optimizers import Adam
from repro.nn.trainer import Trainer
from repro.tooling.sanitizer import NumericalFault, Sanitizer, WriteGuard
from repro.utils.rng import RngStream
from repro.xfel.dataset import DiffractionDataset

__all__ = [
    "Evaluator",
    "TrainingEvaluator",
    "EpochObserver",
    "effective_budget",
    "retry_salt",
    "RNG_KEYINGS",
    "validate_rng_keying",
]

#: RNG-keying policies for evaluation streams.
#:
#: ``"model"`` (legacy): init/shuffle/curve streams derive from the
#: individual's model id — byte-identical to historical runs, but two
#: individuals carrying the same genome draw different weights, so their
#: evaluations differ and cannot be shared.
#:
#: ``"genome"``: streams derive from the *canonical* genome key and the
#: canonical genome is what gets decoded, making evaluation a pure
#: function of (canonical genome, training config, dataset, dtype) —
#: the property the evaluation cache requires for exactness.
RNG_KEYINGS = ("model", "genome")


def validate_rng_keying(rng_keying: str) -> str:
    """Validate and return an RNG-keying policy name."""
    if rng_keying not in RNG_KEYINGS:
        raise ValueError(
            f"rng_keying must be one of {RNG_KEYINGS}, got {rng_keying!r}"
        )
    return rng_keying


def _engine_fingerprint(engine: PredictionEngine | None) -> tuple:
    """Hashable snapshot of the engine configuration for memo keys."""
    if engine is None:
        return ("standalone",)
    return tuple(sorted((k, repr(v)) for k, v in engine.describe().items()))


def _dataset_fingerprint(dataset: DiffractionDataset) -> str:
    """Content hash of a dataset, for memo keys when no cache key is given."""
    digest = hashlib.blake2b(digest_size=16)
    for array in (dataset.x_train, dataset.y_train, dataset.x_test, dataset.y_test):
        array = np.ascontiguousarray(array)
        digest.update(repr((array.shape, array.dtype.str)).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


def retry_salt(individual: Individual) -> tuple:
    """RNG stream salt for the individual's current evaluation attempt.

    Empty for the first attempt (so historical runs replay
    byte-identically) and ``("retry", n)`` for the ``n``-th retry, giving
    each attempt statistically independent init/shuffle/curve draws while
    staying fully derived from the root seed.
    """
    attempt = getattr(individual, "eval_attempt", 0)
    return () if not attempt else ("retry", int(attempt))


def effective_budget(individual: Individual, max_epochs: int) -> int:
    """Epochs this evaluation may actually spend.

    The full ``max_epochs`` unless the surrogate allocator assigned a
    reduced probe budget, which is clamped to ``[0, max_epochs]``.  The
    difference ``max_epochs - effective`` is accounted as
    *surrogate-skipped*, distinct from epochs the engine saves by early
    termination *within* the effective budget.
    """
    budget = individual.budget_assigned
    if budget is None:
        return int(max_epochs)
    return max(0, min(int(budget), int(max_epochs)))

#: Callback signature invoked after every trained epoch:
#: ``observer(individual, epoch, fitness, prediction, context)`` where
#: ``context`` carries evaluator-specific extras (e.g. the live network).
EpochObserver = Callable[[Individual, int, float, float | None, dict], None]


@runtime_checkable
class Evaluator(Protocol):
    """What the search requires of an evaluation backend."""

    max_epochs: int

    def evaluate(self, individual: Individual) -> Individual:
        """Train/score ``individual`` in place and return it."""


class TrainingEvaluator:
    """Real-mode evaluation: decode and train the network (Algorithm 1).

    Parameters
    ----------
    dataset:
        The XFEL train/test split.
    engine:
        Prediction engine; ``None`` gives the standalone-NAS baseline
        (full-budget truncated training).
    max_epochs:
        Training budget per network (paper: 25).
    decoder_config:
        Channel widths / head geometry for genome decoding.
    batch_size, learning_rate:
        Training hyper-parameters shared by all candidates.
    rng_stream:
        Deterministic stream; each model derives its own init/shuffle
        generators from its model id.
    observers:
        Per-epoch callbacks (the workflow orchestrator hooks lineage
        tracking and checkpointing in here).
    sanitize:
        Attach a :class:`~repro.tooling.sanitizer.Sanitizer` to every
        candidate's network and trainer; numerical faults abort the
        model's training with :class:`NumericalFault`.
    sanitize_writes:
        Attach a :class:`~repro.tooling.sanitizer.WriteGuard` to every
        candidate's network: borrowed inter-layer tensors become
        read-only around layer calls, so an aliasing write raises a
        ``guarded-write`` :class:`NumericalFault` instead of silently
        corrupting a neighbouring buffer.  Flag-flips only — an
        untripped guarded run is byte-identical to an unguarded one.
    on_fault:
        Callback ``on_fault(individual, fault)`` invoked before a
        :class:`NumericalFault` propagates (the orchestrator records it
        into the model's lineage record here).
    rng_keying:
        Which identity keys the per-candidate RNG streams — see
        :data:`RNG_KEYINGS`.  ``"model"`` (the default here) replays
        historical runs byte-identically; ``"genome"`` makes evaluation
        a pure function of the canonical genome, which is what the
        evaluation cache keys on.
    dtype:
        Compute dtype for decoded networks when no ``decoder_config`` is
        given (an explicit ``decoder_config`` carries its own dtype).
    dataset_key:
        Stable identifier of the dataset for memo keys (the workflow
        passes ``DatasetConfig.cache_key()``); defaults to a content
        hash of the arrays.
    arena:
        Bind every decoded network to a fresh
        :class:`~repro.nn.arena.BufferArena` so training runs the
        allocation-free kernel fast path.  Off by default: the arena
        GEMMs are equivalent at gradcheck tolerance but not bitwise, so
        byte-exact float64 replay of historical runs needs it disabled.
    """

    def __init__(
        self,
        dataset: DiffractionDataset,
        engine: PredictionEngine | None,
        *,
        max_epochs: int = 25,
        decoder_config: DecoderConfig | None = None,
        batch_size: int = 16,
        learning_rate: float = 1e-3,
        rng_stream: RngStream | None = None,
        observers: list[EpochObserver] | None = None,
        sanitize: bool = False,
        sanitize_writes: bool = False,
        on_fault: Callable[[Individual, NumericalFault], None] | None = None,
        rng_keying: str = "model",
        dtype=None,
        dataset_key: str | None = None,
        arena: bool = False,
    ) -> None:
        self.dataset = dataset
        self.engine = engine
        self.max_epochs = int(max_epochs)
        self.decoder_config = decoder_config or DecoderConfig(
            input_shape=dataset.input_shape, n_classes=dataset.n_classes, dtype=dtype
        )
        self.batch_size = int(batch_size)
        self.learning_rate = float(learning_rate)
        self.rng_stream = rng_stream or RngStream(0)
        self.observers = list(observers or [])
        self.sanitize = bool(sanitize)
        self.sanitize_writes = bool(sanitize_writes)
        self.on_fault = on_fault
        self.rng_keying = validate_rng_keying(rng_keying)
        self.dataset_key = dataset_key or _dataset_fingerprint(dataset)
        self.arena = bool(arena)
        self._flops_cache: dict[str, int] = {}

    def _stream_ident(self, individual: Individual):
        """What keys this individual's RNG streams (see :data:`RNG_KEYINGS`)."""
        if self.rng_keying == "genome":
            return individual.genome.canonical_key()
        return individual.model_id

    def flops_for(self, genome) -> int:
        """FLOP count of the decoded network, cached per genome key.

        FLOPs depend only on structure, never on weight values, so a
        throwaway decode with a fixed generator matches what
        :meth:`evaluate` will report.  The surrogate budget allocator
        uses this to run its dominance test before any training.
        """
        canonical = self.rng_keying == "genome"
        key = genome.canonical_key() if canonical else genome.key()
        if key not in self._flops_cache:
            network = decode_genome(
                genome,
                self.decoder_config,
                rng=np.random.default_rng(0),
                canonical=canonical,
            )
            self._flops_cache[key] = network_flops(network)
        return self._flops_cache[key]

    def memo_key(self, individual: Individual) -> tuple | None:
        """Cache key for this evaluation, or ``None`` when not cacheable.

        Only genome-keyed evaluations are pure functions of the genome;
        under model keying two identical genomes legitimately evaluate
        differently, so their results must not be shared.
        """
        if self.rng_keying != "genome":
            return None
        budget = effective_budget(individual, self.max_epochs)
        if budget == 0:
            # a zero-budget skip is a prediction, not a measurement
            return None
        return (
            "real",
            individual.genome.canonical_key(),
            self.dataset_key,
            dtype_label(self.decoder_config.dtype),
            self.max_epochs,
            self.batch_size,
            self.learning_rate,
            _engine_fingerprint(self.engine),
            self.sanitize,
            retry_salt(individual),
            self.arena,
            self.sanitize_writes,
            budget,
        )

    def evaluate(self, individual: Individual) -> Individual:
        """Decode, train with the Algorithm-1 loop, and fill the individual."""
        budget = effective_budget(individual, self.max_epochs)
        if budget == 0:
            if not individual.evaluated:
                raise ValueError(
                    "zero-budget individual must arrive pre-filled by the "
                    f"allocator, got model {individual.model_id}"
                )
            return individual
        # retries (fault policy) re-derive the RNG children with an
        # attempt salt; attempt 0 keeps the historical stream names so
        # fault-free runs replay byte-identically
        salt = retry_salt(individual)
        ident = self._stream_ident(individual)
        init_rng = self.rng_stream.generator("init", ident, *salt)
        shuffle_rng = self.rng_stream.generator("shuffle", ident, *salt)
        network = decode_genome(
            individual.genome,
            self.decoder_config,
            rng=init_rng,
            name=f"model-{individual.model_id}",
            canonical=self.rng_keying == "genome",
        )
        if self.arena:
            from repro.nn.arena import BufferArena

            network.bind_arena(BufferArena(self.decoder_config.dtype))
        sanitizer = None
        if self.sanitize:
            sanitizer = Sanitizer().watch(network)
        write_guard = None
        if self.sanitize_writes:
            write_guard = WriteGuard().watch(network)
        trainer = Trainer(
            network,
            self.dataset.x_train,
            self.dataset.y_train,
            self.dataset.x_test,
            self.dataset.y_test,
            optimizer=Adam(network, self.learning_rate),
            batch_size=self.batch_size,
            rng=shuffle_rng,
            sanitizer=sanitizer,
            write_guard=write_guard,
        )

        def on_epoch(epoch: int, fitness: float, prediction: float | None) -> None:
            context = {
                "network": network,
                "trainer": trainer,
                "epoch_stats": trainer.history[-1],
            }
            for observer in self.observers:
                observer(individual, epoch, fitness, prediction, context)

        try:
            result = run_training_loop(
                trainer, self.engine, budget, epoch_callback=on_epoch
            )
        except NumericalFault as fault:
            # the poisoned measurement never reaches fitness_history; the
            # fault is recorded into lineage, then propagates to the caller
            if self.on_fault is not None:
                self.on_fault(individual, fault)
            raise

        individual.fitness = result.fitness
        individual.flops = network_flops(network)
        individual.result = result
        individual.epoch_seconds = [stats.wall_seconds for stats in trainer.history]
        individual.arena_enabled = self.arena
        individual.arena_peak_bytes = (
            network.arena.nbytes if network.arena is not None else 0
        )
        return individual
