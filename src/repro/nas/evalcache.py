"""Duplicate-architecture evaluation memoization.

NSGA-II's crossover and mutation routinely regenerate genomes that were
already evaluated — either bit-identical or isomorphic (same phase DAG
under node relabeling).  Under the genome-keyed RNG policy
(``rng_keying="genome"``, see :mod:`repro.nas.evaluation`), evaluation
is a pure function of (canonical genome, training config, dataset,
dtype), so re-training such a candidate buys nothing.  The
:class:`MemoizingEvaluator` wraps the *outermost* evaluation chain and
reuses the recorded outcome instead.

Invariants (also recorded in DESIGN §9):

* the cache key carries the canonical genome key, dataset identity,
  compute dtype, and the training configuration — entries never cross
  any of them;
* quarantined, faulted, or retried evaluations are never cached (a hit
  must reproduce a clean attempt-0 evaluation exactly);
* cache hits are first-class lineage events: the individual (and its
  :class:`~repro.lineage.records.ModelRecord`) carries ``cache_hit``
  and the source model id, and the per-epoch observers are replayed
  from the cached trace so history stores and record trails stay
  populated.

Determinism with parallel workers: :meth:`MemoizingEvaluator.
evaluate_generation` partitions each generation *before* dispatching —
the first individual carrying a given key becomes the leader and is
evaluated; later ones are followers and take the hit after the leaders
settle.  Hit/miss assignment therefore depends only on submission
order, never on thread timing, so ``n_workers=1`` and ``n_workers=N``
produce identical record trails.
"""

from __future__ import annotations

import copy
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.nas.population import Individual
from repro.utils.logging import get_logger

__all__ = ["CacheEntry", "EvaluationCache", "MemoizingEvaluator", "MemoizingStream"]

_LOG = get_logger("nas.evalcache")


@dataclass
class CacheEntry:
    """One cached evaluation outcome (everything a hit must restore)."""

    source_model_id: int
    fitness: float
    flops: int
    epoch_seconds: list
    result: object  # TrainingResult of the source evaluation
    epoch_trace: list  # [(epoch, fitness, prediction), ...] for observer replay
    # arena provenance of the source evaluation; the memo key carries
    # the arena flag, so hits can only restore a matching configuration
    arena_enabled: bool = False
    arena_peak_bytes: int = 0


class EvaluationCache:
    """Thread-safe store of evaluation outcomes keyed by memo key."""

    def __init__(self) -> None:
        self._entries: dict[tuple, CacheEntry] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def peek(self, key: tuple) -> CacheEntry | None:
        """Look up without touching the hit/miss counters."""
        with self._lock:
            return self._entries.get(key)

    def lookup(self, key: tuple) -> CacheEntry | None:
        """Look up and count the outcome."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
            else:
                self.hits += 1
            return entry

    def record_hit(self, key: tuple) -> CacheEntry | None:
        """Count a hit resolved outside :meth:`lookup` (generation path)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
            return entry

    def record_miss(self) -> None:
        """Count a miss resolved outside :meth:`lookup`.

        The process backend partitions leaders in the parent and
        evaluates them in worker processes, so :meth:`lookup` never runs
        for them; :meth:`MemoizingEvaluator.register_remote` calls this
        to keep the hit/miss statistics identical to the serial path.
        """
        with self._lock:
            self.misses += 1

    def put(self, key: tuple, entry: CacheEntry) -> None:
        """Insert an entry; the first writer for a key wins."""
        with self._lock:
            self._entries.setdefault(key, entry)

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
            }


class MemoizingEvaluator:
    """Outermost evaluation wrapper that reuses duplicate evaluations.

    Parameters
    ----------
    evaluator:
        The full evaluation chain a miss runs through (fault injection /
        fault tolerance / the backend).  Wrapping outermost is what
        keeps faulty outcomes out of the cache: whatever the chain
        settles on is inspected *after* retries and quarantine.
    base:
        The innermost backend (:class:`~repro.nas.evaluation.
        TrainingEvaluator` or :class:`~repro.nas.surrogate.
        SurrogateEvaluator`).  It provides ``memo_key`` and the
        ``observers`` list used to capture and replay per-epoch events.
    cache:
        Shared :class:`EvaluationCache`; a fresh one by default.
    executor:
        Inner generation executor (e.g. ``FifoWorkerPool(self).
        evaluate_generation``) used by :meth:`evaluate_generation`; a
        serial loop over :meth:`evaluate` by default.
    """

    def __init__(
        self,
        evaluator,
        base,
        *,
        cache: EvaluationCache | None = None,
        executor: Callable[[list[Individual]], list[Individual]] | None = None,
    ) -> None:
        self.evaluator = evaluator
        self.base = base
        self.cache = cache or EvaluationCache()
        self.executor = executor
        self._trace_lock = threading.Lock()
        self._traces: dict[int, list] = {}
        # capture per-epoch events of evaluations in flight so a future
        # hit can replay them; runs after the real observers
        self.base.observers.append(self._capture)

    @property
    def max_epochs(self) -> int:
        return self.evaluator.max_epochs

    # -- capture & replay -------------------------------------------------------

    def _capture(self, individual, epoch, fitness, prediction, context) -> None:
        with self._trace_lock:
            trace = self._traces.get(individual.model_id)
        if trace is not None:
            trace.append((epoch, float(fitness), prediction))

    def _replay_observers(self, individual: Individual, entry: CacheEntry) -> None:
        observers = [o for o in self.base.observers if o is not self._capture]
        context = {
            "cache_hit": True,
            "source_model_id": entry.source_model_id,
            "network": None,
            "trainer": None,
            "epoch_stats": None,
        }
        for epoch, fitness, prediction in entry.epoch_trace:
            for observer in observers:
                observer(individual, epoch, fitness, prediction, context)

    # -- hit/miss machinery -----------------------------------------------------

    def _apply_hit(self, individual: Individual, entry: CacheEntry) -> Individual:
        individual.fitness = entry.fitness
        individual.flops = entry.flops
        individual.result = copy.deepcopy(entry.result)
        individual.epoch_seconds = list(entry.epoch_seconds)
        individual.cache_hit = True
        individual.cache_source = entry.source_model_id
        individual.arena_enabled = entry.arena_enabled
        individual.arena_peak_bytes = entry.arena_peak_bytes
        self._replay_observers(individual, entry)
        _LOG.debug(
            "cache hit: model %d reuses model %d",
            individual.model_id,
            entry.source_model_id,
        )
        return individual

    @staticmethod
    def _cacheable(individual: Individual) -> bool:
        """Only clean, first-attempt, fully-measured outcomes are cached."""
        return (
            individual.fitness is not None
            and individual.flops is not None
            and individual.result is not None
            and not individual.quarantined
            and not individual.fault_events
            and not getattr(individual, "eval_attempt", 0)
        )

    def _entry_from(self, individual: Individual, trace: list) -> CacheEntry:
        source = (
            individual.cache_source
            if individual.cache_hit and individual.cache_source is not None
            else individual.model_id
        )
        return CacheEntry(
            source_model_id=source,
            fitness=float(individual.fitness),
            flops=int(individual.flops),
            epoch_seconds=list(individual.epoch_seconds),
            result=copy.deepcopy(individual.result),
            epoch_trace=list(trace),
            arena_enabled=bool(individual.arena_enabled),
            arena_peak_bytes=int(individual.arena_peak_bytes),
        )

    def prime(self, individual: Individual, epoch_trace: list | None = None) -> bool:
        """Seed the cache from an already-evaluated individual (resume path).

        Returns whether an entry was stored.  Hits restored from records
        prime with their original source id, so a resumed run attributes
        reuse exactly like the uninterrupted one.
        """
        key = self.base.memo_key(individual)
        if key is None or not self._cacheable(individual):
            return False
        self.cache.put(key, self._entry_from(individual, epoch_trace or []))
        return True

    def register_remote(self, individual: Individual, epoch_trace: list) -> None:
        """Account a leader evaluated in a worker process.

        Wired as :class:`~repro.scheduler.procpool.ProcessWorkerPool`'s
        ``on_result`` hook.  The leader was dispatched because
        generation partitioning found no entry for its key — that is the
        lookup miss :meth:`evaluate` counts on the serial path — and a
        clean outcome primes the cache with the trace the pool replayed,
        so followers take hits exactly as they would have locally.
        """
        key = self.base.memo_key(individual)
        if key is None:
            return
        self.cache.record_miss()
        if self._cacheable(individual):
            self.cache.put(key, self._entry_from(individual, list(epoch_trace)))

    # -- Evaluator protocol -----------------------------------------------------

    def evaluate(self, individual: Individual) -> Individual:
        key = self.base.memo_key(individual)
        if key is None:
            return self.evaluator.evaluate(individual)
        entry = self.cache.lookup(key)
        if entry is not None:
            return self._apply_hit(individual, entry)
        with self._trace_lock:
            self._traces[individual.model_id] = []
        try:
            self.evaluator.evaluate(individual)
        finally:
            with self._trace_lock:
                trace = self._traces.pop(individual.model_id, [])
        if self._cacheable(individual):
            self.cache.put(key, self._entry_from(individual, trace))
        return individual

    # -- generation executor ----------------------------------------------------

    def _run(self, individuals: list[Individual]) -> None:
        if not individuals:
            return
        if self.executor is not None:
            self.executor(individuals)
        else:
            for individual in individuals:
                self.evaluate(individual)

    def evaluate_generation(self, individuals: list[Individual]) -> list[Individual]:
        """Evaluate one generation with deterministic deduplication.

        Partition first, dispatch second: per memo key the first carrier
        in submission order leads (real evaluation through the inner
        executor), later carriers follow (hit once the leaders settle).
        If a leader's outcome turns out uncacheable (quarantined or
        faulted), its followers are evaluated for real in a second wave
        — a fault never silently propagates to other candidates.
        """
        leaders: list[Individual] = []
        deferred: list[tuple[Individual, tuple]] = []
        seen: set[tuple] = set()
        for individual in individuals:
            key = self.base.memo_key(individual)
            if key is None:
                leaders.append(individual)
                continue
            entry = self.cache.record_hit(key)
            if entry is not None:
                self._apply_hit(individual, entry)
            elif key in seen:
                deferred.append((individual, key))
            else:
                seen.add(key)
                leaders.append(individual)
        self._run(leaders)
        second_wave: list[Individual] = []
        for individual, key in deferred:
            entry = self.cache.record_hit(key)
            if entry is not None:
                self._apply_hit(individual, entry)
            else:
                second_wave.append(individual)
        self._run(second_wave)
        return individuals


class MemoizingStream:
    """Streaming (steady-state) face of the evaluation cache.

    Satisfies the :class:`~repro.nas.search.EvalStream` seam by wrapping
    an inner stream (a worker pool).  Hit/miss assignment happens at
    ``submit`` — in steady mode a deterministic logical-clock event —
    and priming at ``on_commit``, the point where results re-enter
    submission order.  Both are driven by the search loop, never by
    worker timing, so cache behaviour is identical on every backend.

    A duplicate bred while its leader is still inside the in-flight
    window finds no entry and re-evaluates for real; under genome-keyed
    RNG the repeat is bit-identical, so only wall time is spent, never
    determinism.  The inner stream evaluates the chain *below* the
    memoizer (its own lookup would race with worker timing).
    """

    def __init__(self, memoizer: MemoizingEvaluator, inner) -> None:
        self.memoizer = memoizer
        self.inner = inner
        self._ready: deque[Individual] = deque()

    def submit(self, individual: Individual) -> None:
        memoizer = self.memoizer
        key = memoizer.base.memo_key(individual)
        if key is not None:
            entry = memoizer.cache.record_hit(key)
            if entry is not None:
                self._ready.append(memoizer._apply_hit(individual, entry))
                return
            memoizer.cache.record_miss()
            # register the trace now so the capture observer collects the
            # per-epoch events of this in-flight evaluation (thread
            # backends capture live; the process pool captures during its
            # parent-side observer replay)
            with memoizer._trace_lock:
                memoizer._traces[individual.model_id] = []
        self.inner.submit(individual)

    def settled(self) -> Individual:
        if self._ready:
            return self._ready.popleft()
        return self.inner.settled()

    def on_commit(self, individual: Individual) -> None:
        memoizer = self.memoizer
        with memoizer._trace_lock:
            trace = memoizer._traces.pop(individual.model_id, [])
        if not individual.cache_hit:
            key = memoizer.base.memo_key(individual)
            if key is not None and memoizer._cacheable(individual):
                memoizer.cache.put(key, memoizer._entry_from(individual, trace))
        self.inner.on_commit(individual)

    def finish(self):
        """Close the inner stream (returns its report, when it keeps one)."""
        return self.inner.finish()
