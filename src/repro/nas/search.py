"""NSGA-Net search driver.

Implements the evolutionary loop the paper plugs A4NN into (§3.2):
genomes encode macro-space connectivity; the first generation is random;
offspring come from binary-tournament parent selection, crossover, and
bit-flip mutation; survivors are chosen by NSGA-II environmental
selection on the two objectives (maximize validation accuracy, minimize
FLOPs).

With the paper's Table 2 settings — population 10, 10 offspring per
generation, 10 generations (the initial population counts as generation
1) — a run evaluates exactly ``10 + 9 × 10 = 100`` networks, matching
"each test produces 100 networks in total".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.nas.evaluation import Evaluator
from repro.nas.genome import Genome, random_genome
from repro.nas.nsga2 import binary_tournament, environmental_selection, pareto_front_mask
from repro.nas.operators import bitflip_mutation, point_crossover, uniform_crossover
from repro.nas.population import Individual, Population
from repro.utils.logging import get_logger
from repro.utils.rng import RngStream
from repro.utils.validation import ensure_positive

__all__ = ["NSGANetConfig", "GenerationStats", "SearchResult", "SearchState", "NSGANet"]

_LOG = get_logger("nas.search")

_CROSSOVERS = {"uniform": uniform_crossover, "point": point_crossover}


@dataclass(frozen=True)
class NSGANetConfig:
    """NSGA-Net settings (paper Table 2 defaults).

    Attributes
    ----------
    population_size:
        Size of the starting population (and of every survivor set).
    nodes_per_phase:
        Nodes in each phase's DAG.
    n_phases:
        Number of phases (NSGA-Net uses 3 in its macro space).
    offspring_per_generation:
        Offspring produced in each generation after the first.
    generations:
        Total generations *including* the initial population.
    max_epochs:
        Per-network training budget.
    mutation_rate:
        Per-bit flip probability; ``None`` means ``1 / genome_length``.
    crossover:
        ``"uniform"`` or ``"point"``.
    initial_density:
        Bernoulli density of initial random genomes.
    """

    population_size: int = 10
    nodes_per_phase: int = 4
    n_phases: int = 3
    offspring_per_generation: int = 10
    generations: int = 10
    max_epochs: int = 25
    mutation_rate: float | None = None
    crossover: str = "uniform"
    initial_density: float = 0.5

    def __post_init__(self) -> None:
        ensure_positive(self.population_size, "population_size")
        ensure_positive(self.offspring_per_generation, "offspring_per_generation")
        ensure_positive(self.generations, "generations")
        ensure_positive(self.max_epochs, "max_epochs")
        if self.crossover not in _CROSSOVERS:
            raise ValueError(
                f"crossover must be one of {sorted(_CROSSOVERS)}, got {self.crossover!r}"
            )

    @property
    def total_evaluations(self) -> int:
        """Networks evaluated in a full run."""
        return self.population_size + (self.generations - 1) * self.offspring_per_generation

    def to_dict(self) -> dict:
        """Lineage-record form (paper Table 2)."""
        return {
            "population_size": self.population_size,
            "nodes_per_phase": self.nodes_per_phase,
            "n_phases": self.n_phases,
            "offspring_per_generation": self.offspring_per_generation,
            "generations": self.generations,
            "max_epochs": self.max_epochs,
            "mutation_rate": self.mutation_rate,
            "crossover": self.crossover,
            "initial_density": self.initial_density,
        }


@dataclass
class GenerationStats:
    """Aggregates recorded after each generation's evaluation.

    ``epochs_saved`` is measured against the budget of *completed*
    evaluations only: a quarantined candidate never trained, so it
    neither consumes nor "saves" budget (counting it would overstate the
    paper's epochs-saved metric).
    """

    generation: int
    n_evaluated: int
    best_fitness: float
    mean_fitness: float
    epochs_trained: int
    epochs_saved: int
    pareto_size: int
    n_quarantined: int = 0
    n_cache_hits: int = 0


@dataclass
class SearchState:
    """Mid-search snapshot sufficient to continue a run exactly.

    Because every stochastic draw in the search derives from the root
    seed plus stable keys (generation number for variation, model id for
    evaluation), continuing from a completed generation reproduces the
    identical run an uninterrupted search would have produced.

    Attributes
    ----------
    population:
        Current survivor set (evaluated individuals).
    archive:
        Every individual evaluated so far, in evaluation order.
    next_generation:
        First generation still to run (1-based; generation 0 is the
        initial population).
    next_model_id:
        Model id the next created individual receives.
    generation_stats:
        Stats of the generations already completed.
    """

    population: Population
    archive: Population
    next_generation: int
    next_model_id: int
    generation_stats: list = field(default_factory=list)


@dataclass
class SearchResult:
    """Everything a completed search produced.

    Attributes
    ----------
    archive:
        Every individual ever evaluated, in evaluation order.
    population:
        Final survivor set.
    generations:
        Per-generation statistics.
    config:
        The settings used.
    """

    archive: Population
    population: Population
    generations: list = field(default_factory=list)
    config: NSGANetConfig | None = None

    @property
    def total_epochs_trained(self) -> int:
        return sum(m.result.epochs_trained for m in self.archive if m.result)

    @property
    def n_quarantined(self) -> int:
        """Archive members the fault policy gave up on."""
        return sum(1 for m in self.archive if m.quarantined)

    @property
    def epoch_budget(self) -> int:
        """Training budget over *completed* evaluations.

        Quarantined candidates carry no :class:`~repro.core.plugin.
        TrainingResult`; excluding them keeps the paper's epochs-saved
        metric honest — it can neither go negative nor count budget that
        was never at stake.
        """
        completed = sum(1 for m in self.archive if m.result)
        return (self.config.max_epochs if self.config else 0) * completed

    @property
    def total_epochs_saved(self) -> int:
        return self.epoch_budget - self.total_epochs_trained

    def pareto_individuals(self) -> list[Individual]:
        """Pareto-optimal members of the archive (accuracy ↑, FLOPs ↓)."""
        mask = pareto_front_mask(self.archive.objective_array())
        return [m for m, keep in zip(self.archive.members, mask) if keep]


class NSGANet:
    """The evolutionary search loop.

    Parameters
    ----------
    config:
        Search settings.
    evaluator:
        Real or surrogate evaluation backend; must expose
        ``evaluate(individual)``.
    rng_stream:
        Deterministic stream for initialization and genetic operators.
    on_individual:
        Optional callback after each evaluation (lineage hook).
    on_generation:
        Optional callback with each :class:`GenerationStats`.
    executor:
        Optional generation executor ``executor(individuals) ->
        individuals`` that runs a whole generation's evaluations (e.g.
        :class:`~repro.scheduler.pool.FifoWorkerPool` for real parallel
        hardware).  Defaults to serial evaluation through ``evaluator``.
    """

    def __init__(
        self,
        config: NSGANetConfig,
        evaluator: Evaluator,
        *,
        rng_stream: RngStream | None = None,
        on_individual: Callable[[Individual], None] | None = None,
        on_generation: Callable[[GenerationStats], None] | None = None,
        executor: Callable[[list], list] | None = None,
    ) -> None:
        self.config = config
        self.evaluator = evaluator
        self.rng_stream = rng_stream or RngStream(0)
        self.on_individual = on_individual
        self.on_generation = on_generation
        self.executor = executor
        self._next_model_id = 0

    def _new_individual(self, genome: Genome, generation: int) -> Individual:
        individual = Individual(genome=genome, model_id=self._next_model_id, generation=generation)
        self._next_model_id += 1
        return individual

    def _evaluate_all(self, individuals: list[Individual]) -> None:
        if self.executor is not None:
            self.executor(individuals)
        else:
            for individual in individuals:
                self.evaluator.evaluate(individual)
        for individual in individuals:
            if not individual.evaluated:
                raise RuntimeError(
                    f"model {individual.model_id} was not evaluated by the executor"
                )
            if self.on_individual is not None:
                self.on_individual(individual)

    def _record_generation(
        self, generation: int, evaluated: list[Individual], population: Population
    ) -> GenerationStats:
        fitnesses = [float(m.fitness) for m in evaluated]
        completed = [m for m in evaluated if m.result]
        epochs = sum(m.result.epochs_trained for m in completed)
        budget = self.config.max_epochs * len(completed)
        stats = GenerationStats(
            generation=generation,
            n_evaluated=len(evaluated),
            best_fitness=max(fitnesses),
            mean_fitness=float(np.mean(fitnesses)),
            epochs_trained=epochs,
            epochs_saved=budget - epochs,
            pareto_size=int(pareto_front_mask(population.objective_array()).sum()),
            n_quarantined=sum(1 for m in evaluated if m.quarantined),
            n_cache_hits=sum(1 for m in evaluated if m.cache_hit),
        )
        _LOG.info(
            "generation %d: best %.2f%%, mean %.2f%%, epochs %d/%d, quarantined %d, cache hits %d",
            generation,
            stats.best_fitness,
            stats.mean_fitness,
            epochs,
            budget,
            stats.n_quarantined,
            stats.n_cache_hits,
        )
        if self.on_generation is not None:
            self.on_generation(stats)
        return stats

    def _make_offspring(
        self, population: Population, generation: int
    ) -> list[Individual]:
        rng = self.rng_stream.generator("variation", generation)
        objectives = population.objective_array()
        n = self.config.offspring_per_generation
        parent_idx = binary_tournament(objectives, rng, n_winners=2 * ((n + 1) // 2))
        crossover = _CROSSOVERS[self.config.crossover]

        children: list[Individual] = []
        for pair_start in range(0, len(parent_idx), 2):
            a = population[int(parent_idx[pair_start])].genome
            b = population[int(parent_idx[pair_start + 1])].genome
            child_a, child_b = crossover(a, b, rng)
            for child in (child_a, child_b):
                if len(children) >= n:
                    break
                mutated = bitflip_mutation(child, rng, rate=self.config.mutation_rate)
                children.append(self._new_individual(mutated, generation))
        return children

    def run(self, *, resume: SearchState | None = None) -> SearchResult:
        """Execute the search (optionally continuing from ``resume``).

        With ``resume``, the initial population phase is skipped and
        evolution continues from ``resume.next_generation``; the result
        covers the whole run (resumed archive included).
        """
        config = self.config
        if resume is None:
            init_rng = self.rng_stream.generator("init-population")
            initial = [
                self._new_individual(
                    random_genome(
                        init_rng,
                        n_phases=config.n_phases,
                        nodes_per_phase=config.nodes_per_phase,
                        density=config.initial_density,
                    ),
                    generation=0,
                )
                for _ in range(config.population_size)
            ]
            self._evaluate_all(initial)
            population = Population(initial)
            archive = Population(list(initial))
            generation_stats = [self._record_generation(0, initial, population)]
            start_generation = 1
        else:
            population = resume.population
            archive = resume.archive
            generation_stats = list(resume.generation_stats)
            start_generation = resume.next_generation
            self._next_model_id = resume.next_model_id
            if len(population) != config.population_size:
                raise ValueError(
                    f"resume population has {len(population)} members, "
                    f"config expects {config.population_size}"
                )

        for generation in range(start_generation, config.generations):
            offspring = self._make_offspring(population, generation)
            self._evaluate_all(offspring)
            archive.extend(offspring)

            combined = Population(population.members + offspring)
            survivors = environmental_selection(
                combined.objective_array(), config.population_size
            )
            population = combined.subset(survivors)
            generation_stats.append(
                self._record_generation(generation, offspring, population)
            )

        return SearchResult(
            archive=archive,
            population=population,
            generations=generation_stats,
            config=config,
        )
