"""NSGA-Net search driver.

Implements the evolutionary loop the paper plugs A4NN into (§3.2):
genomes encode macro-space connectivity; the first generation is random;
offspring come from binary-tournament parent selection, crossover, and
bit-flip mutation; survivors are chosen by NSGA-II environmental
selection on the two objectives (maximize validation accuracy, minimize
FLOPs).

With the paper's Table 2 settings — population 10, 10 offspring per
generation, 10 generations (the initial population counts as generation
1) — a run evaluates exactly ``10 + 9 × 10 = 100`` networks, matching
"each test produces 100 networks in total".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Protocol, runtime_checkable

import numpy as np

from repro.nas.evaluation import Evaluator, effective_budget
from repro.nas.genome import Genome, random_genome
from repro.nas.nsga2 import (
    binary_tournament,
    environmental_selection,
    pareto_front_mask,
    steady_eviction,
)
from repro.nas.operators import bitflip_mutation, point_crossover, uniform_crossover
from repro.nas.population import Individual, Population
from repro.utils.logging import get_logger
from repro.utils.rng import RngStream
from repro.utils.validation import ensure_positive

__all__ = [
    "NSGANetConfig",
    "GenerationStats",
    "SearchResult",
    "SearchState",
    "NSGANet",
    "EvalStream",
    "steady_insert",
]

_LOG = get_logger("nas.search")

_CROSSOVERS = {"uniform": uniform_crossover, "point": point_crossover}

_EVOLUTIONS = ("barrier", "steady")


@runtime_checkable
class EvalStream(Protocol):
    """Streaming evaluation seam for steady-state evolution.

    ``submit`` hands a candidate to the backend; ``settled`` blocks for
    the next completed evaluation *in any order*; ``on_commit`` fires
    when the search folds a result into the population in logical-clock
    order (the deterministic point for cache priming); ``finish`` flushes
    end-of-stream bookkeeping (e.g. a :class:`~repro.scheduler.pool.
    PoolReport` covering the whole run).
    """

    def submit(self, individual: Individual) -> None: ...

    def settled(self) -> Individual: ...

    def on_commit(self, individual: Individual) -> None: ...

    def finish(self) -> None: ...


class _InlineStream:
    """Serial fallback stream: evaluates lazily, in submission order."""

    def __init__(self, evaluator: Evaluator) -> None:
        self._evaluator = evaluator
        self._queue: deque[Individual] = deque()

    def submit(self, individual: Individual) -> None:
        self._queue.append(individual)

    def settled(self) -> Individual:
        if not self._queue:
            raise RuntimeError("no evaluations in flight")
        individual = self._queue.popleft()
        self._evaluator.evaluate(individual)
        return individual

    def on_commit(self, individual: Individual) -> None:
        pass

    def finish(self) -> None:
        pass


def steady_insert(
    members: list[Individual], individual: Individual, population_size: int
) -> list[Individual]:
    """One-in/one-out environmental selection step.

    Adds ``individual`` to ``members``; once the population is full,
    evicts exactly one member (worst rank, least crowded — see
    :func:`~repro.nas.nsga2.steady_eviction`).  Survivor order is
    insertion order, which keeps the replayed population byte-stable.
    """
    combined = list(members) + [individual]
    if len(combined) <= population_size:
        return combined
    objectives = np.array([m.objectives() for m in combined], dtype=float)
    victim = steady_eviction(objectives)
    return [m for i, m in enumerate(combined) if i != victim]


@dataclass(frozen=True)
class NSGANetConfig:
    """NSGA-Net settings (paper Table 2 defaults).

    Attributes
    ----------
    population_size:
        Size of the starting population (and of every survivor set).
    nodes_per_phase:
        Nodes in each phase's DAG.
    n_phases:
        Number of phases (NSGA-Net uses 3 in its macro space).
    offspring_per_generation:
        Offspring produced in each generation after the first.
    generations:
        Total generations *including* the initial population.
    max_epochs:
        Per-network training budget.
    mutation_rate:
        Per-bit flip probability; ``None`` means ``1 / genome_length``.
    crossover:
        ``"uniform"`` or ``"point"``.
    initial_density:
        Bernoulli density of initial random genomes.
    evolution:
        ``"barrier"`` (generational, the paper's loop) or ``"steady"``
        (asynchronous steady-state: one-in/one-out selection under a
        deterministic logical clock).
    steady_lag:
        Breeding lag of the steady-state logical clock: offspring ``g``
        is bred from the population state after commit ``g - lag``, so
        up to ``lag`` evaluations are in flight at once.  Determinism
        depends only on ``(seed, steady_lag)`` — two runs with the same
        lag are bit-identical regardless of backend or worker count.
        ``None`` lets the orchestrator pin it to ``n_workers``; a bare
        :class:`NSGANet` falls back to 1 (classic steady state).
    """

    population_size: int = 10
    nodes_per_phase: int = 4
    n_phases: int = 3
    offspring_per_generation: int = 10
    generations: int = 10
    max_epochs: int = 25
    mutation_rate: float | None = None
    crossover: str = "uniform"
    initial_density: float = 0.5
    evolution: str = "barrier"
    steady_lag: int | None = None

    def __post_init__(self) -> None:
        ensure_positive(self.population_size, "population_size")
        ensure_positive(self.offspring_per_generation, "offspring_per_generation")
        ensure_positive(self.generations, "generations")
        ensure_positive(self.max_epochs, "max_epochs")
        if self.crossover not in _CROSSOVERS:
            raise ValueError(
                f"crossover must be one of {sorted(_CROSSOVERS)}, got {self.crossover!r}"
            )
        if self.evolution not in _EVOLUTIONS:
            raise ValueError(
                f"evolution must be one of {_EVOLUTIONS}, got {self.evolution!r}"
            )
        if self.steady_lag is not None:
            ensure_positive(self.steady_lag, "steady_lag")

    @property
    def total_evaluations(self) -> int:
        """Networks evaluated in a full run."""
        return self.population_size + (self.generations - 1) * self.offspring_per_generation

    def to_dict(self) -> dict:
        """Lineage-record form (paper Table 2)."""
        return {
            "population_size": self.population_size,
            "nodes_per_phase": self.nodes_per_phase,
            "n_phases": self.n_phases,
            "offspring_per_generation": self.offspring_per_generation,
            "generations": self.generations,
            "max_epochs": self.max_epochs,
            "mutation_rate": self.mutation_rate,
            "crossover": self.crossover,
            "initial_density": self.initial_density,
            "evolution": self.evolution,
            "steady_lag": self.steady_lag,
        }


@dataclass
class GenerationStats:
    """Aggregates recorded after each generation's evaluation.

    ``epochs_saved`` counts epochs the *engine* saved by terminating
    early inside each evaluation's effective budget; ``epochs_skipped``
    counts epochs the *surrogate* allocator removed by assigning reduced
    budgets before evaluation.  The two never overlap, and both are
    measured against completed evaluations only: a quarantined candidate
    never trained, so it neither consumes nor "saves" budget (counting
    it would overstate the paper's epochs-saved metric).
    """

    generation: int
    n_evaluated: int
    best_fitness: float
    mean_fitness: float
    epochs_trained: int
    epochs_saved: int
    pareto_size: int
    n_quarantined: int = 0
    n_cache_hits: int = 0
    epochs_skipped: int = 0


@dataclass
class SearchState:
    """Mid-search snapshot sufficient to continue a run exactly.

    Because every stochastic draw in the search derives from the root
    seed plus stable keys (generation number for variation, model id for
    evaluation), continuing from a completed generation reproduces the
    identical run an uninterrupted search would have produced.

    Attributes
    ----------
    population:
        Current survivor set (evaluated individuals).
    archive:
        Every individual evaluated so far, in evaluation order.
    next_generation:
        First generation still to run (1-based; generation 0 is the
        initial population).
    next_model_id:
        Model id the next created individual receives.
    generation_stats:
        Stats of the generations already completed.
    """

    population: Population
    archive: Population
    next_generation: int
    next_model_id: int
    generation_stats: list = field(default_factory=list)


@dataclass
class SearchResult:
    """Everything a completed search produced.

    Attributes
    ----------
    archive:
        Every individual ever evaluated, in evaluation order.
    population:
        Final survivor set.
    generations:
        Per-generation statistics.
    config:
        The settings used.
    """

    archive: Population
    population: Population
    generations: list = field(default_factory=list)
    config: NSGANetConfig | None = None

    @property
    def total_epochs_trained(self) -> int:
        return sum(m.result.epochs_trained for m in self.archive if m.result)

    @property
    def n_quarantined(self) -> int:
        """Archive members the fault policy gave up on."""
        return sum(1 for m in self.archive if m.quarantined)

    @property
    def epoch_budget(self) -> int:
        """Full training budget over *completed* evaluations.

        Quarantined candidates never trained; excluding them keeps the
        paper's epochs-saved metric honest — it can neither go negative
        nor count budget that was never at stake.  Surrogate-skipped
        candidates (zero/reduced budget) still count: their full budget
        was at stake, the allocator just chose not to spend it.
        """
        completed = sum(1 for m in self.archive if not m.quarantined)
        return (self.config.max_epochs if self.config else 0) * completed

    @property
    def total_epochs_skipped(self) -> int:
        """Epochs the surrogate allocator removed by reducing budgets."""
        max_epochs = self.config.max_epochs if self.config else 0
        return sum(
            max_epochs - effective_budget(m, max_epochs)
            for m in self.archive
            if not m.quarantined
        )

    @property
    def total_epochs_saved(self) -> int:
        """Epochs the engine saved by early termination (never includes
        surrogate-skipped epochs; the three counters partition
        :attr:`epoch_budget` exactly)."""
        return self.epoch_budget - self.total_epochs_skipped - self.total_epochs_trained

    def pareto_individuals(self) -> list[Individual]:
        """Pareto-optimal members of the archive (accuracy ↑, FLOPs ↓)."""
        mask = pareto_front_mask(self.archive.objective_array())
        return [m for m, keep in zip(self.archive.members, mask) if keep]


class NSGANet:
    """The evolutionary search loop.

    Parameters
    ----------
    config:
        Search settings.
    evaluator:
        Real or surrogate evaluation backend; must expose
        ``evaluate(individual)``.
    rng_stream:
        Deterministic stream for initialization and genetic operators.
    on_individual:
        Optional callback after each evaluation (lineage hook).
    on_candidate:
        Optional callback ``on_candidate(individual, members,
        n_committed)`` fired the moment a candidate is created, before
        it is submitted for evaluation: ``members`` is the (pinned)
        population state it was bred from and ``n_committed`` the number
        of lineage commits visible at that point.  The surrogate budget
        allocator scores candidates here; because both arguments are
        pure functions of the logical clock, scoring is deterministic
        across backends and replayable on resume.
    on_generation:
        Optional callback with each :class:`GenerationStats`.
    executor:
        Optional generation executor ``executor(individuals) ->
        individuals`` that runs a whole generation's evaluations (e.g.
        :class:`~repro.scheduler.pool.FifoWorkerPool` for real parallel
        hardware).  Defaults to serial evaluation through ``evaluator``.
        Barrier mode only.
    stream:
        Optional :class:`EvalStream` used by steady-state mode.
        Defaults to an inline serial stream over ``evaluator``.
    """

    def __init__(
        self,
        config: NSGANetConfig,
        evaluator: Evaluator,
        *,
        rng_stream: RngStream | None = None,
        on_individual: Callable[[Individual], None] | None = None,
        on_candidate: Callable[[Individual, list, int], None] | None = None,
        on_generation: Callable[[GenerationStats], None] | None = None,
        executor: Callable[[list], list] | None = None,
        stream: EvalStream | None = None,
    ) -> None:
        self.config = config
        self.evaluator = evaluator
        self.rng_stream = rng_stream or RngStream(0)
        self.on_individual = on_individual
        self.on_candidate = on_candidate
        self.on_generation = on_generation
        self.executor = executor
        self.stream = stream
        self._next_model_id = 0

    def _new_individual(self, genome: Genome, generation: int) -> Individual:
        individual = Individual(genome=genome, model_id=self._next_model_id, generation=generation)
        self._next_model_id += 1
        return individual

    def _notify_candidate(
        self, individual: Individual, members: list[Individual], n_committed: int
    ) -> None:
        if self.on_candidate is not None:
            self.on_candidate(individual, members, n_committed)

    def _evaluate_all(self, individuals: list[Individual]) -> None:
        # zero-budget candidates arrive pre-filled by the surrogate
        # allocator and never reach the evaluation backend
        todo = [m for m in individuals if not m.evaluated]
        if self.executor is not None:
            if todo:
                self.executor(todo)
        else:
            for individual in todo:
                self.evaluator.evaluate(individual)
        for individual in individuals:
            if not individual.evaluated:
                raise RuntimeError(
                    f"model {individual.model_id} was not evaluated by the executor"
                )
            if self.on_individual is not None:
                self.on_individual(individual)

    def _record_generation(
        self, generation: int, evaluated: list[Individual], population: Population
    ) -> GenerationStats:
        fitnesses = [float(m.fitness) for m in evaluated]
        completed = [m for m in evaluated if m.result]
        max_epochs = self.config.max_epochs
        epochs = sum(m.result.epochs_trained for m in completed)
        # engine savings are measured inside each evaluation's effective
        # (surrogate-reduced) budget; the gap up to the full budget is
        # what the surrogate skipped — the two counters never overlap
        budget = sum(effective_budget(m, max_epochs) for m in completed)
        skipped = sum(
            max_epochs - effective_budget(m, max_epochs)
            for m in evaluated
            if not m.quarantined
        )
        stats = GenerationStats(
            generation=generation,
            n_evaluated=len(evaluated),
            best_fitness=max(fitnesses),
            mean_fitness=float(np.mean(fitnesses)),
            epochs_trained=epochs,
            epochs_saved=budget - epochs,
            pareto_size=int(pareto_front_mask(population.objective_array()).sum()),
            n_quarantined=sum(1 for m in evaluated if m.quarantined),
            n_cache_hits=sum(1 for m in evaluated if m.cache_hit),
            epochs_skipped=skipped,
        )
        _LOG.info(
            "generation %d: best %.2f%%, mean %.2f%%, epochs %d/%d, quarantined %d, cache hits %d",
            generation,
            stats.best_fitness,
            stats.mean_fitness,
            epochs,
            budget,
            stats.n_quarantined,
            stats.n_cache_hits,
        )
        if self.on_generation is not None:
            self.on_generation(stats)
        return stats

    def _make_offspring(
        self, population: Population, generation: int, n_committed: int = 0
    ) -> list[Individual]:
        rng = self.rng_stream.generator("variation", generation)
        objectives = population.objective_array()
        n = self.config.offspring_per_generation
        parent_idx = binary_tournament(objectives, rng, n_winners=2 * ((n + 1) // 2))
        crossover = _CROSSOVERS[self.config.crossover]

        children: list[Individual] = []
        for pair_start in range(0, len(parent_idx), 2):
            a = population[int(parent_idx[pair_start])].genome
            b = population[int(parent_idx[pair_start + 1])].genome
            child_a, child_b = crossover(a, b, rng)
            for child in (child_a, child_b):
                if len(children) >= n:
                    break
                mutated = bitflip_mutation(child, rng, rate=self.config.mutation_rate)
                offspring = self._new_individual(mutated, generation)
                self._notify_candidate(offspring, population.members, n_committed)
                children.append(offspring)
        return children

    # -- steady-state mode -------------------------------------------------

    def _steady_pool(
        self, members: list[Individual], archive_members: list[Individual]
    ) -> list[Individual]:
        """Breeding pool: current population plus the non-dominated archive."""
        pool = list(members)
        present = {m.model_id for m in pool}
        if archive_members:
            objectives = np.array(
                [m.objectives() for m in archive_members], dtype=float
            )
            for member, keep in zip(archive_members, pareto_front_mask(objectives)):
                if keep and member.model_id not in present:
                    pool.append(member)
                    present.add(member.model_id)
        return pool

    def _breed_steady(
        self, g: int, members: list[Individual], archive_members: list[Individual]
    ) -> Individual:
        """Breed offspring ``g`` from a pinned logical-clock state.

        The RNG is keyed by the candidate's global index, never by wall
        time or completion order, so breeding is reproducible from the
        clock alone.
        """
        rng = self.rng_stream.generator("steady-variation", g)
        pool = self._steady_pool(members, archive_members)
        objectives = np.array([m.objectives() for m in pool], dtype=float)
        parent_idx = binary_tournament(objectives, rng, n_winners=2)
        a = pool[int(parent_idx[0])].genome
        b = pool[int(parent_idx[1])].genome
        child, _ = _CROSSOVERS[self.config.crossover](a, b, rng)
        mutated = bitflip_mutation(child, rng, rate=self.config.mutation_rate)
        generation = 1 + (g - self.config.population_size) // self.config.offspring_per_generation
        individual = self._new_individual(mutated, generation)
        if individual.model_id != g:
            raise RuntimeError(
                f"steady breeding out of order: bred model {individual.model_id}, "
                f"expected global index {g}"
            )
        # the pinned commit count is a pure function of g and the lag, so
        # candidate scoring replays identically on resume
        pinned = max(1, g - (self.config.steady_lag or 1) + 1)
        self._notify_candidate(individual, members, pinned)
        return individual

    def _run_steady(self, resume: SearchState | None) -> SearchResult:
        """Asynchronous steady-state loop under a deterministic logical clock.

        Candidates carry global indices ``g = 0..total_evaluations-1``;
        results may *settle* in any order but *commit* (selection, tick
        assignment, cache priming, lineage) strictly in submission
        order.  Offspring ``g`` is bred the moment commit ``g - lag``
        lands, from exactly that population state — so the whole run is
        a pure function of ``(seed, steady_lag)`` and replays
        bit-identically on any backend.
        """
        config = self.config
        population_size = config.population_size
        per_generation = config.offspring_per_generation
        total = config.total_evaluations
        lag = config.steady_lag or 1
        stream = self.stream if self.stream is not None else _InlineStream(self.evaluator)

        pending: dict[int, Individual] = {}
        chunk: list[Individual] = []

        def submit(individual: Individual) -> None:
            if individual.evaluated:
                # zero-budget candidate pre-filled by the surrogate
                # allocator: it never reaches the backend and is ready
                # to commit at its tick
                pending[individual.model_id] = individual
            else:
                stream.submit(individual)

        if resume is None:
            init_rng = self.rng_stream.generator("init-population")
            initial = [
                self._new_individual(
                    random_genome(
                        init_rng,
                        n_phases=config.n_phases,
                        nodes_per_phase=config.nodes_per_phase,
                        density=config.initial_density,
                    ),
                    generation=0,
                )
                for _ in range(population_size)
            ]
            population = Population([])
            archive = Population([])
            generation_stats: list[GenerationStats] = []
            committed = 0
            for individual in initial:
                self._notify_candidate(individual, [], 0)
                submit(individual)
            next_submit = population_size
        else:
            archive = resume.archive
            generation_stats = list(resume.generation_stats)
            committed = len(archive.members)
            if resume.next_model_id != committed:
                raise ValueError(
                    f"steady resume requires contiguous ticks: archive has "
                    f"{committed} members but next_model_id is {resume.next_model_id}"
                )
            self._next_model_id = resume.next_model_id
            # Replay the one-in/one-out commits to re-derive the population
            # states the in-flight window was bred from: offspring g needs
            # the snapshot after commit g - lag, which for the backlog
            # g = committed..committed+lag-1 lies in the last `lag` commits.
            history: dict[int, list[Individual]] = {}
            members: list[Individual] = []
            for tick, individual in enumerate(archive.members, start=1):
                members = steady_insert(members, individual, population_size)
                if tick > committed - lag:
                    history[tick] = list(members)
            population = Population(members)
            next_submit = committed
            while next_submit < total and max(1, next_submit - lag + 1) <= committed:
                pinned = max(1, next_submit - lag + 1)
                child = self._breed_steady(
                    next_submit, history[pinned], archive.members[:pinned]
                )
                submit(child)
                next_submit += 1

        while committed < total:
            if committed not in pending:
                # the next tick is in flight (commits land in submission
                # order, so anything not yet pending is on the backend)
                settled = stream.settled()
                if not settled.evaluated:
                    raise RuntimeError(
                        f"model {settled.model_id} was not evaluated by the stream"
                    )
                pending[settled.model_id] = settled
            while committed in pending:
                individual = pending.pop(committed)
                individual.logical_tick = committed
                archive.append(individual)
                population.members = steady_insert(
                    population.members, individual, population_size
                )
                stream.on_commit(individual)
                if self.on_individual is not None:
                    self.on_individual(individual)
                committed += 1
                chunk.append(individual)
                if committed == population_size or (
                    committed > population_size
                    and (committed - population_size) % per_generation == 0
                ):
                    generation = (
                        0
                        if committed == population_size
                        else (committed - population_size) // per_generation
                    )
                    generation_stats.append(
                        self._record_generation(generation, chunk, population)
                    )
                    chunk = []
                # Breed every candidate whose pinned state just became
                # current; pumping after *each* commit keeps the breeding
                # state exactly at commit g - lag.
                while next_submit < total and max(1, next_submit - lag + 1) <= committed:
                    child = self._breed_steady(
                        next_submit, population.members, archive.members
                    )
                    submit(child)
                    next_submit += 1
        stream.finish()

        return SearchResult(
            archive=archive,
            population=population,
            generations=generation_stats,
            config=config,
        )

    def run(self, *, resume: SearchState | None = None) -> SearchResult:
        """Execute the search (optionally continuing from ``resume``).

        With ``resume``, the initial population phase is skipped and
        evolution continues from ``resume.next_generation``; the result
        covers the whole run (resumed archive included).
        """
        config = self.config
        if config.evolution == "steady":
            return self._run_steady(resume)
        if resume is None:
            init_rng = self.rng_stream.generator("init-population")
            initial = [
                self._new_individual(
                    random_genome(
                        init_rng,
                        n_phases=config.n_phases,
                        nodes_per_phase=config.nodes_per_phase,
                        density=config.initial_density,
                    ),
                    generation=0,
                )
                for _ in range(config.population_size)
            ]
            for individual in initial:
                self._notify_candidate(individual, [], 0)
            self._evaluate_all(initial)
            population = Population(initial)
            archive = Population(list(initial))
            generation_stats = [self._record_generation(0, initial, population)]
            start_generation = 1
        else:
            population = resume.population
            archive = resume.archive
            generation_stats = list(resume.generation_stats)
            start_generation = resume.next_generation
            self._next_model_id = resume.next_model_id
            if len(population) != config.population_size:
                raise ValueError(
                    f"resume population has {len(population)} members, "
                    f"config expects {config.population_size}"
                )

        for generation in range(start_generation, config.generations):
            offspring = self._make_offspring(
                population, generation, n_committed=len(archive.members)
            )
            self._evaluate_all(offspring)
            archive.extend(offspring)

            combined = Population(population.members + offspring)
            survivors = environmental_selection(
                combined.objective_array(), config.population_size
            )
            population = combined.subset(survivors)
            generation_stats.append(
                self._record_generation(generation, offspring, population)
            )

        return SearchResult(
            archive=archive,
            population=population,
            generations=generation_stats,
            config=config,
        )
