"""Surrogate evaluation: architecture-conditioned synthetic learning curves.

Paper-scale experiments (100 networks × 25 epochs × 63k images) are far
beyond a single CPU core, so — mirroring how Rorabaugh et al. validated
the PENGUIN engine by simulation on MENNDL — the surrogate evaluator
replaces *only* the gradient-descent inner loop with a stochastic
learning-curve generator.  Everything the paper evaluates (the
prediction engine, Algorithm 1, NSGA-II selection, FIFO scheduling,
lineage records) runs unchanged on these curves.

The generator is conditioned on:

* **architecture** — genomes with more connections/skips get higher
  asymptotic accuracy but cost more FLOPs (computed from the *actually
  decoded* network, so the accuracy/FLOPs trade-off is real); and
* **beam intensity** — each intensity has a curve *regime* calibrated to
  reproduce the paper's three convergence behaviours (Fig. 8):
  low = slow, noisy curves that stabilize late; medium = fast clean
  curves that stabilize early; high = a bimodal mix of very fast
  learners and erratic curves whose predictions never settle.

Curves are deterministic per (root seed, model id, intensity).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.core.engine import PredictionEngine
from repro.core.fitting import RidgeFit, ridge_lstsq
from repro.core.plugin import run_training_loop
from repro.nas.decoder import DecoderConfig, decode_genome
from repro.nas.evaluation import (
    _engine_fingerprint,
    effective_budget,
    retry_salt,
    validate_rng_keying,
)
from repro.nas.genome import Genome, PhaseGenome, n_connection_bits
from repro.nas.population import Individual
from repro.nn.flops import network_flops
from repro.scheduler.costmodel import EpochCostModel
from repro.utils.rng import RngStream
from repro.utils.validation import ValidationError
from repro.xfel.intensity import BeamIntensity

__all__ = [
    "CurveRegime",
    "REGIMES",
    "LearningCurveModel",
    "SurrogateEvaluator",
    "sample_curve",
    "SurrogateConfig",
    "FitnessPredictor",
    "BudgetAllocator",
    "phase_depth",
    "genome_features",
    "genome_feature_names",
    "SKIP_PROBE",
    "SKIP_EXPLORE",
]


@dataclass(frozen=True)
class CurveRegime:
    """Distribution of learning-curve shapes for one beam intensity.

    A sampled curve is ``acc(e) = a - (a - s) * exp(-k * e)`` plus
    Gaussian measurement noise.  Three sub-populations:

    * with probability ``fail_probability`` the network is a flat
      non-learner near 50% (cf. Johnston et al.: a large share of NAS
      candidates fail to learn);
    * with probability ``erratic_probability`` the curve is *erratic*:
      it rises, peaks early, then declines toward a floor
      (overfitting-style collapse) under ``erratic_sigma`` noise.  The
      monotone parametric family cannot settle on such data, so the
      engine's successive extrapolations keep moving — the paper's
      never-terminated models;
    * otherwise the curve is "clean" (``clean_sigma``) and the engine
      terminates it once predictions stabilize.

    The per-intensity constants are calibrated against the engine's
    Table-1 configuration so the three intensities reproduce the
    paper's Fig. 8 convergence regimes (see
    ``benchmarks/test_fig8_convergence.py``).
    """

    asymptote_range: tuple[float, float]
    rate_range: tuple[float, float]
    start_range: tuple[float, float]
    clean_sigma: float
    erratic_probability: float
    erratic_sigma: float
    fail_probability: float


#: Per-intensity regimes calibrated against the paper's Fig. 8 (see
#: benchmarks/test_fig8_convergence.py for the reproduction check).
REGIMES: dict[BeamIntensity, CurveRegime] = {
    # Low intensity: noisy data make every learning curve noisy and slow;
    # ~2/3 of models stabilize late (mean e_t > 18), the rest never do.
    BeamIntensity.LOW: CurveRegime(
        asymptote_range=(88.0, 99.8),
        rate_range=(0.06, 0.16),
        start_range=(48.0, 58.0),
        clean_sigma=2.7,
        erratic_probability=0.0,
        erratic_sigma=3.0,
        fail_probability=0.06,
    ),
    # Medium intensity: mostly clean, mid-rate curves terminating around
    # half the budget; a quarter stay erratic.
    BeamIntensity.MEDIUM: CurveRegime(
        asymptote_range=(96.0, 100.0),
        rate_range=(0.24, 0.48),
        start_range=(52.0, 65.0),
        clean_sigma=1.15,
        erratic_probability=0.42,
        erratic_sigma=2.2,
        fail_probability=0.06,
    ),
    # High intensity: bimodal — very fast clean learners that terminate
    # early, against a large erratic share that trains the full budget
    # (the paper's "inverted bell").
    BeamIntensity.HIGH: CurveRegime(
        asymptote_range=(98.5, 100.0),
        rate_range=(0.25, 0.55),
        start_range=(55.0, 72.0),
        clean_sigma=0.6,
        erratic_probability=0.68,
        erratic_sigma=2.0,
        fail_probability=0.05,
    ),
}



def _capacity_score(genome: Genome) -> float:
    """Architecture capacity in [0, 1] from connectivity density."""
    max_connections = sum(n_connection_bits(n) for n in genome.nodes_per_phase)
    max_skips = genome.n_phases
    raw = (genome.n_connections + genome.n_skips) / max(max_connections + max_skips, 1)
    return float(np.clip(raw, 0.0, 1.0))


def sample_curve(
    genome: Genome,
    regime: CurveRegime,
    rng: np.random.Generator,
    n_epochs: int,
) -> np.ndarray:
    """Draw one noisy learning curve of length ``n_epochs`` (percent accuracy).

    The architecture's capacity score shifts the asymptote within the
    regime's range (denser genomes learn more) and nudges the learning
    rate, so selection pressure toward accuracy is real.
    """
    capacity = _capacity_score(genome)
    epochs = np.arange(1, n_epochs + 1, dtype=float)

    if rng.random() < regime.fail_probability * (1.5 - capacity):
        # non-learner: flat around chance with mild noise
        base = np.full(n_epochs, rng.uniform(48.0, 52.0))
        noise = rng.normal(0.0, 1.0, size=n_epochs)
        return np.clip(base + noise, 0.0, 100.0)

    lo_a, hi_a = regime.asymptote_range
    asymptote = lo_a + (hi_a - lo_a) * (0.35 * rng.random() + 0.65 * capacity)
    lo_k, hi_k = regime.rate_range
    rate = lo_k + (hi_k - lo_k) * (0.7 * rng.random() + 0.3 * capacity)
    start = rng.uniform(*regime.start_range)

    curve = asymptote - (asymptote - start) * np.exp(-rate * epochs)

    if rng.random() < regime.erratic_probability:
        # overfitting-style collapse: early peak, steady decline, floor
        peak_epoch = rng.uniform(1.0, 4.0)
        slope = rng.uniform(1.5, 2.5)
        floor = rng.uniform(55.0, 70.0)
        curve = np.maximum(curve - slope * np.maximum(epochs - peak_epoch, 0.0), floor)
        sigma = regime.erratic_sigma
    else:
        sigma = regime.clean_sigma
    curve = curve + rng.normal(0.0, sigma, size=n_epochs)
    return np.clip(curve, 0.0, 100.0)


class LearningCurveModel:
    """A :class:`~repro.core.plugin.TrainableModel` replaying a fixed curve."""

    def __init__(self, curve: np.ndarray) -> None:
        curve = np.asarray(curve, dtype=float)
        if curve.ndim != 1 or curve.size == 0:
            raise ValueError(f"curve must be non-empty 1-D, got shape {curve.shape}")
        self.curve = curve
        self.epoch = 0

    def train(self) -> None:
        if self.epoch >= len(self.curve):
            raise RuntimeError(f"curve exhausted after {len(self.curve)} epochs")
        self.epoch += 1

    def validate(self) -> float:
        if self.epoch == 0:
            raise RuntimeError("validate() before any train() call")
        return float(self.curve[self.epoch - 1])


class SurrogateEvaluator:
    """Paper-scale evaluator driving Algorithm 1 on synthetic curves.

    Parameters
    ----------
    intensity:
        Beam setting selecting the curve regime.
    engine:
        Prediction engine; ``None`` for the standalone-NAS baseline.
    max_epochs:
        Training budget per network (paper: 25).
    decoder_config:
        Used to decode genomes for *real* FLOP counting.
    cost_model:
        Maps FLOPs to simulated per-epoch seconds.
    rng_stream:
        Root stream; curves/costs derive per model id (or per canonical
        genome under ``rng_keying="genome"``).
    observers:
        Same per-epoch hook contract as the real evaluator.
    rng_keying:
        Stream-identity policy, as in
        :class:`~repro.nas.evaluation.TrainingEvaluator`: ``"model"``
        keeps historical byte-exact replay, ``"genome"`` makes curves a
        pure function of the canonical genome (cacheable).
    """

    def __init__(
        self,
        intensity: BeamIntensity,
        engine: PredictionEngine | None,
        *,
        max_epochs: int = 25,
        decoder_config: DecoderConfig | None = None,
        cost_model: EpochCostModel | None = None,
        rng_stream: RngStream | None = None,
        observers: list | None = None,
        regime: CurveRegime | None = None,
        rng_keying: str = "model",
    ) -> None:
        self.intensity = intensity
        self.engine = engine
        self.max_epochs = int(max_epochs)
        self.decoder_config = decoder_config or DecoderConfig()
        self.cost_model = cost_model or EpochCostModel()
        self.rng_stream = rng_stream or RngStream(0)
        self.observers = list(observers or [])
        self.regime = regime or REGIMES[intensity]
        self.rng_keying = validate_rng_keying(rng_keying)
        self._flops_cache: dict[str, int] = {}

    def flops_for(self, genome: Genome) -> int:
        """FLOP count of the decoded network, cached per genome key.

        Public because the surrogate budget allocator needs FLOPs
        *before* evaluation to run its dominance test.
        """
        # canonical keying shares one FLOP count (and one decode) across
        # an isomorphism class; relabeling preserves FLOPs, so the values
        # agree with legacy per-raw-genome counting either way
        canonical = self.rng_keying == "genome"
        key = genome.canonical_key() if canonical else genome.key()
        if key not in self._flops_cache:
            network = decode_genome(
                genome,
                self.decoder_config,
                rng=np.random.default_rng(0),
                canonical=canonical,
            )
            self._flops_cache[key] = network_flops(network)
        return self._flops_cache[key]

    def _stream_ident(self, individual: Individual):
        if self.rng_keying == "genome":
            return individual.genome.canonical_key()
        return individual.model_id

    def memo_key(self, individual: Individual) -> tuple | None:
        """Cache key for this evaluation, or ``None`` when not cacheable."""
        if self.rng_keying != "genome":
            return None
        budget = effective_budget(individual, self.max_epochs)
        if budget == 0:
            # a zero-budget skip is a prediction, not a measurement
            return None
        return (
            "surrogate",
            individual.genome.canonical_key(),
            self.intensity.label,
            self.max_epochs,
            _engine_fingerprint(self.engine),
            repr(self.regime),
            retry_salt(individual),
            budget,
        )

    def evaluate(self, individual: Individual) -> Individual:
        """Sample a curve, run Algorithm 1 on it, and fill the individual."""
        budget = effective_budget(individual, self.max_epochs)
        if budget == 0:
            if not individual.evaluated:
                raise ValueError(
                    "zero-budget individual must arrive pre-filled by the "
                    f"allocator, got model {individual.model_id}"
                )
            return individual
        salt = retry_salt(individual)
        ident = self._stream_ident(individual)
        curve_rng = self.rng_stream.generator(
            "curve", ident, self.intensity.label, *salt
        )
        cost_rng = self.rng_stream.generator(
            "cost", ident, self.intensity.label, *salt
        )
        # The curve is always sampled at the full budget so a reduced-budget
        # probe trains an exact prefix of what full training would have seen
        # (and the off-mode RNG stream is untouched).
        curve = sample_curve(individual.genome, self.regime, curve_rng, self.max_epochs)
        model = LearningCurveModel(curve)

        def on_epoch(epoch: int, fitness: float, prediction: float | None) -> None:
            context = {"curve": curve, "model": model}
            for observer in self.observers:
                observer(individual, epoch, fitness, prediction, context)

        result = run_training_loop(model, self.engine, budget, epoch_callback=on_epoch)

        flops = self.flops_for(individual.genome)
        individual.fitness = result.fitness
        individual.flops = flops
        individual.result = result
        individual.epoch_seconds = list(
            self.cost_model.sample_epoch_seconds(
                flops, cost_rng, size=result.epochs_trained
            )
        )
        return individual


# ---------------------------------------------------------------------------
# Cross-architecture fitness prediction (surrogate pre-ranking)
# ---------------------------------------------------------------------------
#
# Everything above simulates *one* model's training; everything below
# predicts fitness *across* models from the lineage commons, before any
# training happens, so the orchestrator can spend full epoch budgets only
# on predicted winners (PEng4NN / Baker et al.; see DESIGN §14).

#: ``skip_reason`` value for a candidate probed at the reduced budget.
SKIP_PROBE = "predicted_loser"
#: ``skip_reason`` value for a predicted loser granted full budget by the
#: exploration floor (so the predictor keeps seeing its own mistakes).
SKIP_EXPLORE = "exploration"


def phase_depth(phase: PhaseGenome) -> int:
    """Longest input→output path through the phase DAG, in nodes.

    Nodes without predecessors read the phase input, so every node starts
    a chain of length 1; an edge ``i -> j`` extends the chain.  This is
    the per-phase "effective depth" feature of the genome featurization.
    """
    matrix = phase.connection_matrix()
    depth = [1] * phase.n_nodes
    for j in range(1, phase.n_nodes):
        feeding = [depth[i] for i in range(j) if matrix[i, j]]
        if feeding:
            depth[j] = 1 + max(feeding)
    return max(depth)


def genome_feature_names(nodes_per_phase: Sequence[int]) -> list[str]:
    """Column names of :func:`genome_features` for ``nodes_per_phase``."""
    names = ["bias"]
    for p in range(len(nodes_per_phase)):
        names += [f"phase{p}_connections", f"phase{p}_skip", f"phase{p}_depth"]
    names += ["total_connections", "total_skips", "density", "log10_flops"]
    return names


def genome_features(genome: Genome, flops: float) -> tuple:
    """Deterministic feature row for the cross-architecture predictor.

    Purely structural statistics of the genome (per-phase connection
    counts, skip bits, and DAG depth, plus totals and connectivity
    density) and the decoded network's FLOP count on a log scale.  The
    decoder's per-phase operation and width schedule is fixed, so layer
    op/width/kernel statistics and parameter counts are functions of this
    structure — the FLOPs column is where they enter numerically.

    The same row must be computable offline from a lineage record alone
    (genome dict + stored FLOPs); keep this in sync with
    :func:`repro.analysis.queries.training_matrix`.
    """
    row: list[float] = [1.0]
    for phase in genome.phases:
        row += [float(phase.n_connections), float(phase.skip), float(phase_depth(phase))]
    row += [
        float(genome.n_connections),
        float(genome.n_skips),
        _capacity_score(genome),
        float(np.log10(1.0 + float(flops))),
    ]
    return tuple(row)


@dataclass(frozen=True)
class SurrogateConfig:
    """Settings for surrogate pre-ranking (``--surrogate rank``).

    Attributes
    ----------
    probe_epochs:
        Budget assigned to predicted losers (0 skips training entirely
        and records the prediction as the fitness; 1 trains a single
        probe epoch so the skip decision has a measured outcome).
    min_records:
        Committed full-budget records required before any scoring — the
        cold-start floor below which every candidate trains normally.
    explore_every:
        Every ``explore_every``-th predicted loser is granted the full
        budget anyway (``skip_reason="exploration"``), so the predictor
        keeps receiving ground truth in the region it is skipping and
        cannot collapse the search.
    band:
        Uncertainty band width in training-RMSE units; a candidate is
        only probed when even ``predicted + band * sigma`` is dominated
        by the current population.
    min_dominators:
        How many current members must dominate the optimistic estimate
        before the candidate counts as a predicted loser.
    ridge:
        Ridge regularization for the least-squares refit.
    sigma_floor:
        Lower bound on the uncertainty estimate (accuracy points).
    """

    probe_epochs: int = 1
    min_records: int = 8
    explore_every: int = 6
    band: float = 2.0
    min_dominators: int = 1
    ridge: float = 1e-3
    sigma_floor: float = 0.5

    def __post_init__(self) -> None:
        if self.probe_epochs < 0:
            raise ValidationError(f"probe_epochs must be >= 0, got {self.probe_epochs}")
        if self.min_records < 1:
            raise ValidationError(f"min_records must be >= 1, got {self.min_records}")
        if self.explore_every < 1:
            raise ValidationError(
                f"explore_every must be >= 1, got {self.explore_every}"
            )
        if self.band < 0.0:
            raise ValidationError(f"band must be >= 0, got {self.band}")
        if self.min_dominators < 1:
            raise ValidationError(
                f"min_dominators must be >= 1, got {self.min_dominators}"
            )
        if self.ridge < 0.0:
            raise ValidationError(f"ridge must be >= 0, got {self.ridge}")
        if self.sigma_floor < 0.0:
            raise ValidationError(f"sigma_floor must be >= 0, got {self.sigma_floor}")

    def to_dict(self) -> dict:
        return {
            "probe_epochs": self.probe_epochs,
            "min_records": self.min_records,
            "explore_every": self.explore_every,
            "band": self.band,
            "min_dominators": self.min_dominators,
            "ridge": self.ridge,
            "sigma_floor": self.sigma_floor,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SurrogateConfig":
        return cls(**payload)


class FitnessPredictor:
    """Online ridge model over lineage observations, prefix-addressable.

    Observations arrive tagged with the lineage commit count at which
    they became visible.  Predictions are made *as of* a commit count, so
    a candidate bred when ``c`` commits were visible is scored against
    exactly those observations — in live runs, on resume, and across
    backends alike.  Fits are closed-form (:func:`ridge_lstsq`) and
    cached per visible-prefix length.
    """

    def __init__(self, *, ridge: float = 1e-3, sigma_floor: float = 0.5) -> None:
        self.ridge = float(ridge)
        self.sigma_floor = float(sigma_floor)
        self._rows: list[tuple] = []
        self._targets: list[float] = []
        self._commit_counts: list[int] = []
        self._fits: dict[int, RidgeFit | None] = {}

    @property
    def n_observations(self) -> int:
        return len(self._rows)

    def observe(self, features: Sequence[float], fitness: float, commit_count: int) -> None:
        """Add one full-budget outcome, visible from ``commit_count`` on."""
        if self._commit_counts and commit_count < self._commit_counts[-1]:
            raise ValueError(
                f"observations must arrive in commit order, got {commit_count} "
                f"after {self._commit_counts[-1]}"
            )
        self._rows.append(tuple(float(f) for f in features))
        self._targets.append(float(fitness))
        self._commit_counts.append(int(commit_count))

    def visible_rows(self, n_committed: int) -> int:
        """Observations visible when ``n_committed`` commits had landed."""
        return bisect_right(self._commit_counts, n_committed)

    def _fit(self, n_rows: int) -> RidgeFit | None:
        if n_rows not in self._fits:
            self._fits[n_rows] = ridge_lstsq(
                self._rows[:n_rows], self._targets[:n_rows], ridge=self.ridge
            )
        return self._fits[n_rows]

    def predict(
        self, features: Sequence[float], n_committed: int | None = None
    ) -> tuple[float, float] | None:
        """Predicted ``(fitness, sigma)`` as of ``n_committed`` commits.

        ``None`` when no usable fit exists for that prefix (no visible
        observations, or a degenerate system).
        """
        n_rows = (
            len(self._rows) if n_committed is None else self.visible_rows(n_committed)
        )
        if n_rows == 0:
            return None
        fit = self._fit(n_rows)
        if fit is None:
            return None
        row = list(features)
        mean = float(fit.predict(row))
        # predictive scale, not the bare training residual: the leverage
        # term inflates sigma for candidates outside the training cloud,
        # where in-sample RMSE badly understates the true error — exactly
        # the candidates a skip decision must not be confident about
        sigma = max(
            float(fit.rmse) * float(np.sqrt(1.0 + fit.leverage(row))),
            self.sigma_floor,
        )
        return mean, sigma

    def fingerprint(self) -> tuple:
        """Stable digest of the full observation log (for resume tests)."""
        return (
            len(self._rows),
            tuple(self._commit_counts),
            tuple(self._targets),
            tuple(self._rows),
        )


class BudgetAllocator:
    """Scores bred candidates and assigns reduced budgets to losers.

    One instance lives in the orchestrating parent process (worker
    processes only ever see the resulting budget on their
    :class:`~repro.scheduler.procpool.EvalTask`).  The search calls
    :meth:`score` when a candidate is bred and the orchestrator calls
    :meth:`observe` as each evaluation commits; :meth:`restore` replays
    a resumed run's committed records so the state machine continues
    exactly where the interrupted run left off.

    The skip rule is dominance-aware on the real objectives: a candidate
    is a predicted loser only when its *optimistic* estimate
    ``(predicted + band * sigma, flops)`` is Pareto-dominated by at least
    ``min_dominators`` current members.  A probed candidate's realized
    fitness can only come in at or below the optimistic estimate, so a
    probed model can never join the archive's Pareto front — which is
    what keeps the surrogate-on front identical to the off-mode front.
    """

    def __init__(
        self,
        settings: SurrogateConfig,
        *,
        max_epochs: int,
        flops_fn: Callable[[Genome], int],
    ) -> None:
        self.settings = settings
        self.max_epochs = int(max_epochs)
        self.flops_fn = flops_fn
        self.predictor = FitnessPredictor(
            ridge=settings.ridge, sigma_floor=settings.sigma_floor
        )
        self.n_scored = 0
        self.n_losers = 0
        self.n_commits = 0

    # -- scoring (breed time) ---------------------------------------------

    def score(
        self, individual: Individual, members: Sequence[Individual], n_committed: int
    ) -> None:
        """Score one bred candidate against ``members``, assigning budget.

        ``n_committed`` is the number of lineage commits visible at this
        breed point (the steady-state pinned prefix, or the archive size
        in barrier mode); predictions use exactly that observation
        prefix, which is what makes them replayable.
        """
        flops = int(self.flops_fn(individual.genome))
        features = genome_features(individual.genome, flops)
        # below the feature count the ridge system interpolates: training
        # RMSE collapses to ~0 and the uncertainty band is meaningless,
        # so never score an underdetermined fit regardless of min_records
        needed = max(self.settings.min_records, len(features) + 2)
        if self.predictor.visible_rows(n_committed) < needed:
            return
        prediction = self.predictor.predict(features, n_committed)
        if prediction is None:
            return
        mean, sigma = prediction
        pool = [
            m
            for m in members
            if not m.quarantined and m.fitness is not None and m.flops is not None
        ]
        individual.predicted_fitness = mean
        individual.predicted_rank = 1 + sum(1 for m in pool if m.fitness > mean)
        self.n_scored += 1
        optimistic = mean + self.settings.band * sigma
        dominators = sum(
            1
            for m in pool
            if m.fitness >= optimistic
            and m.flops <= flops
            and (m.fitness > optimistic or m.flops < flops)
        )
        if dominators < self.settings.min_dominators:
            return
        self.n_losers += 1
        if self.n_losers % self.settings.explore_every == 0:
            individual.skip_reason = SKIP_EXPLORE
            return
        individual.skip_reason = SKIP_PROBE
        individual.budget_assigned = self.settings.probe_epochs
        if self.settings.probe_epochs == 0:
            # full skip: the prediction *is* the recorded outcome
            individual.fitness = mean
            individual.flops = flops

    # -- observation (commit time) ----------------------------------------

    @staticmethod
    def _trainable(
        quarantined: bool, budget_assigned: int | None, fitness, flops, trained: int
    ) -> bool:
        # only clean full-budget measurements are ground truth; probes and
        # zero-budget skips would teach the model its own predictions
        return (
            not quarantined
            and budget_assigned is None
            and fitness is not None
            and flops is not None
            and trained > 0
        )

    def observe(self, individual: Individual) -> None:
        """Fold one committed evaluation into the predictor's training set."""
        self.n_commits += 1
        result = individual.result
        if not self._trainable(
            individual.quarantined,
            individual.budget_assigned,
            individual.fitness,
            individual.flops,
            0 if result is None else result.epochs_trained,
        ):
            return
        self.predictor.observe(
            genome_features(individual.genome, individual.flops),
            individual.fitness,
            self.n_commits,
        )

    def restore(self, records: Iterable) -> None:
        """Replay a resumed run's committed records, in commit order.

        Predictions stored on the records are *replayed* (the counters
        advance from them), never recomputed; only full-budget outcomes
        re-enter the training set, exactly as :meth:`observe` would have
        done live.
        """
        for record in records:
            if record.predicted_fitness is not None:
                self.n_scored += 1
                if record.skip_reason is not None:
                    self.n_losers += 1
            self.n_commits += 1
            if not self._trainable(
                record.quarantined,
                record.budget_assigned,
                record.fitness,
                record.flops,
                record.epochs_trained,
            ):
                continue
            genome = Genome.from_dict(record.genome)
            self.predictor.observe(
                genome_features(genome, record.flops),
                record.fitness,
                self.n_commits,
            )
