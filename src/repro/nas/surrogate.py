"""Surrogate evaluation: architecture-conditioned synthetic learning curves.

Paper-scale experiments (100 networks × 25 epochs × 63k images) are far
beyond a single CPU core, so — mirroring how Rorabaugh et al. validated
the PENGUIN engine by simulation on MENNDL — the surrogate evaluator
replaces *only* the gradient-descent inner loop with a stochastic
learning-curve generator.  Everything the paper evaluates (the
prediction engine, Algorithm 1, NSGA-II selection, FIFO scheduling,
lineage records) runs unchanged on these curves.

The generator is conditioned on:

* **architecture** — genomes with more connections/skips get higher
  asymptotic accuracy but cost more FLOPs (computed from the *actually
  decoded* network, so the accuracy/FLOPs trade-off is real); and
* **beam intensity** — each intensity has a curve *regime* calibrated to
  reproduce the paper's three convergence behaviours (Fig. 8):
  low = slow, noisy curves that stabilize late; medium = fast clean
  curves that stabilize early; high = a bimodal mix of very fast
  learners and erratic curves whose predictions never settle.

Curves are deterministic per (root seed, model id, intensity).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.engine import PredictionEngine
from repro.core.plugin import run_training_loop
from repro.nas.decoder import DecoderConfig, decode_genome
from repro.nas.evaluation import _engine_fingerprint, retry_salt, validate_rng_keying
from repro.nas.genome import Genome, n_connection_bits
from repro.nas.population import Individual
from repro.nn.flops import network_flops
from repro.scheduler.costmodel import EpochCostModel
from repro.utils.rng import RngStream
from repro.xfel.intensity import BeamIntensity

__all__ = ["CurveRegime", "REGIMES", "LearningCurveModel", "SurrogateEvaluator", "sample_curve"]


@dataclass(frozen=True)
class CurveRegime:
    """Distribution of learning-curve shapes for one beam intensity.

    A sampled curve is ``acc(e) = a - (a - s) * exp(-k * e)`` plus
    Gaussian measurement noise.  Three sub-populations:

    * with probability ``fail_probability`` the network is a flat
      non-learner near 50% (cf. Johnston et al.: a large share of NAS
      candidates fail to learn);
    * with probability ``erratic_probability`` the curve is *erratic*:
      it rises, peaks early, then declines toward a floor
      (overfitting-style collapse) under ``erratic_sigma`` noise.  The
      monotone parametric family cannot settle on such data, so the
      engine's successive extrapolations keep moving — the paper's
      never-terminated models;
    * otherwise the curve is "clean" (``clean_sigma``) and the engine
      terminates it once predictions stabilize.

    The per-intensity constants are calibrated against the engine's
    Table-1 configuration so the three intensities reproduce the
    paper's Fig. 8 convergence regimes (see
    ``benchmarks/test_fig8_convergence.py``).
    """

    asymptote_range: tuple[float, float]
    rate_range: tuple[float, float]
    start_range: tuple[float, float]
    clean_sigma: float
    erratic_probability: float
    erratic_sigma: float
    fail_probability: float


#: Per-intensity regimes calibrated against the paper's Fig. 8 (see
#: benchmarks/test_fig8_convergence.py for the reproduction check).
REGIMES: dict[BeamIntensity, CurveRegime] = {
    # Low intensity: noisy data make every learning curve noisy and slow;
    # ~2/3 of models stabilize late (mean e_t > 18), the rest never do.
    BeamIntensity.LOW: CurveRegime(
        asymptote_range=(88.0, 99.8),
        rate_range=(0.06, 0.16),
        start_range=(48.0, 58.0),
        clean_sigma=2.7,
        erratic_probability=0.0,
        erratic_sigma=3.0,
        fail_probability=0.06,
    ),
    # Medium intensity: mostly clean, mid-rate curves terminating around
    # half the budget; a quarter stay erratic.
    BeamIntensity.MEDIUM: CurveRegime(
        asymptote_range=(96.0, 100.0),
        rate_range=(0.24, 0.48),
        start_range=(52.0, 65.0),
        clean_sigma=1.15,
        erratic_probability=0.42,
        erratic_sigma=2.2,
        fail_probability=0.06,
    ),
    # High intensity: bimodal — very fast clean learners that terminate
    # early, against a large erratic share that trains the full budget
    # (the paper's "inverted bell").
    BeamIntensity.HIGH: CurveRegime(
        asymptote_range=(98.5, 100.0),
        rate_range=(0.25, 0.55),
        start_range=(55.0, 72.0),
        clean_sigma=0.6,
        erratic_probability=0.68,
        erratic_sigma=2.0,
        fail_probability=0.05,
    ),
}



def _capacity_score(genome: Genome) -> float:
    """Architecture capacity in [0, 1] from connectivity density."""
    max_connections = sum(n_connection_bits(n) for n in genome.nodes_per_phase)
    max_skips = genome.n_phases
    raw = (genome.n_connections + genome.n_skips) / max(max_connections + max_skips, 1)
    return float(np.clip(raw, 0.0, 1.0))


def sample_curve(
    genome: Genome,
    regime: CurveRegime,
    rng: np.random.Generator,
    n_epochs: int,
) -> np.ndarray:
    """Draw one noisy learning curve of length ``n_epochs`` (percent accuracy).

    The architecture's capacity score shifts the asymptote within the
    regime's range (denser genomes learn more) and nudges the learning
    rate, so selection pressure toward accuracy is real.
    """
    capacity = _capacity_score(genome)
    epochs = np.arange(1, n_epochs + 1, dtype=float)

    if rng.random() < regime.fail_probability * (1.5 - capacity):
        # non-learner: flat around chance with mild noise
        base = np.full(n_epochs, rng.uniform(48.0, 52.0))
        noise = rng.normal(0.0, 1.0, size=n_epochs)
        return np.clip(base + noise, 0.0, 100.0)

    lo_a, hi_a = regime.asymptote_range
    asymptote = lo_a + (hi_a - lo_a) * (0.35 * rng.random() + 0.65 * capacity)
    lo_k, hi_k = regime.rate_range
    rate = lo_k + (hi_k - lo_k) * (0.7 * rng.random() + 0.3 * capacity)
    start = rng.uniform(*regime.start_range)

    curve = asymptote - (asymptote - start) * np.exp(-rate * epochs)

    if rng.random() < regime.erratic_probability:
        # overfitting-style collapse: early peak, steady decline, floor
        peak_epoch = rng.uniform(1.0, 4.0)
        slope = rng.uniform(1.5, 2.5)
        floor = rng.uniform(55.0, 70.0)
        curve = np.maximum(curve - slope * np.maximum(epochs - peak_epoch, 0.0), floor)
        sigma = regime.erratic_sigma
    else:
        sigma = regime.clean_sigma
    curve = curve + rng.normal(0.0, sigma, size=n_epochs)
    return np.clip(curve, 0.0, 100.0)


class LearningCurveModel:
    """A :class:`~repro.core.plugin.TrainableModel` replaying a fixed curve."""

    def __init__(self, curve: np.ndarray) -> None:
        curve = np.asarray(curve, dtype=float)
        if curve.ndim != 1 or curve.size == 0:
            raise ValueError(f"curve must be non-empty 1-D, got shape {curve.shape}")
        self.curve = curve
        self.epoch = 0

    def train(self) -> None:
        if self.epoch >= len(self.curve):
            raise RuntimeError(f"curve exhausted after {len(self.curve)} epochs")
        self.epoch += 1

    def validate(self) -> float:
        if self.epoch == 0:
            raise RuntimeError("validate() before any train() call")
        return float(self.curve[self.epoch - 1])


class SurrogateEvaluator:
    """Paper-scale evaluator driving Algorithm 1 on synthetic curves.

    Parameters
    ----------
    intensity:
        Beam setting selecting the curve regime.
    engine:
        Prediction engine; ``None`` for the standalone-NAS baseline.
    max_epochs:
        Training budget per network (paper: 25).
    decoder_config:
        Used to decode genomes for *real* FLOP counting.
    cost_model:
        Maps FLOPs to simulated per-epoch seconds.
    rng_stream:
        Root stream; curves/costs derive per model id (or per canonical
        genome under ``rng_keying="genome"``).
    observers:
        Same per-epoch hook contract as the real evaluator.
    rng_keying:
        Stream-identity policy, as in
        :class:`~repro.nas.evaluation.TrainingEvaluator`: ``"model"``
        keeps historical byte-exact replay, ``"genome"`` makes curves a
        pure function of the canonical genome (cacheable).
    """

    def __init__(
        self,
        intensity: BeamIntensity,
        engine: PredictionEngine | None,
        *,
        max_epochs: int = 25,
        decoder_config: DecoderConfig | None = None,
        cost_model: EpochCostModel | None = None,
        rng_stream: RngStream | None = None,
        observers: list | None = None,
        regime: CurveRegime | None = None,
        rng_keying: str = "model",
    ) -> None:
        self.intensity = intensity
        self.engine = engine
        self.max_epochs = int(max_epochs)
        self.decoder_config = decoder_config or DecoderConfig()
        self.cost_model = cost_model or EpochCostModel()
        self.rng_stream = rng_stream or RngStream(0)
        self.observers = list(observers or [])
        self.regime = regime or REGIMES[intensity]
        self.rng_keying = validate_rng_keying(rng_keying)
        self._flops_cache: dict[str, int] = {}

    def _flops_for(self, genome: Genome) -> int:
        # canonical keying shares one FLOP count (and one decode) across
        # an isomorphism class; relabeling preserves FLOPs, so the values
        # agree with legacy per-raw-genome counting either way
        canonical = self.rng_keying == "genome"
        key = genome.canonical_key() if canonical else genome.key()
        if key not in self._flops_cache:
            network = decode_genome(
                genome,
                self.decoder_config,
                rng=np.random.default_rng(0),
                canonical=canonical,
            )
            self._flops_cache[key] = network_flops(network)
        return self._flops_cache[key]

    def _stream_ident(self, individual: Individual):
        if self.rng_keying == "genome":
            return individual.genome.canonical_key()
        return individual.model_id

    def memo_key(self, individual: Individual) -> tuple | None:
        """Cache key for this evaluation, or ``None`` when not cacheable."""
        if self.rng_keying != "genome":
            return None
        return (
            "surrogate",
            individual.genome.canonical_key(),
            self.intensity.label,
            self.max_epochs,
            _engine_fingerprint(self.engine),
            repr(self.regime),
            retry_salt(individual),
        )

    def evaluate(self, individual: Individual) -> Individual:
        """Sample a curve, run Algorithm 1 on it, and fill the individual."""
        salt = retry_salt(individual)
        ident = self._stream_ident(individual)
        curve_rng = self.rng_stream.generator(
            "curve", ident, self.intensity.label, *salt
        )
        cost_rng = self.rng_stream.generator(
            "cost", ident, self.intensity.label, *salt
        )
        curve = sample_curve(individual.genome, self.regime, curve_rng, self.max_epochs)
        model = LearningCurveModel(curve)

        def on_epoch(epoch: int, fitness: float, prediction: float | None) -> None:
            context = {"curve": curve, "model": model}
            for observer in self.observers:
                observer(individual, epoch, fitness, prediction, context)

        result = run_training_loop(
            model, self.engine, self.max_epochs, epoch_callback=on_epoch
        )

        flops = self._flops_for(individual.genome)
        individual.fitness = result.fitness
        individual.flops = flops
        individual.result = result
        individual.epoch_seconds = list(
            self.cost_model.sample_epoch_seconds(
                flops, cost_rng, size=result.epochs_trained
            )
        )
        return individual
