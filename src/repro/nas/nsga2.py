"""NSGA-II machinery: non-dominated sorting, crowding, selection.

All routines operate on plain objective arrays shaped
``(n_individuals, n_objectives)`` under the *minimization* convention
(the search negates accuracy before calling in here), keeping this
module reusable and easy to property-test.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "dominates",
    "fast_non_dominated_sort",
    "crowding_distance",
    "crowded_compare",
    "environmental_selection",
    "steady_eviction",
    "binary_tournament",
    "pareto_front_mask",
]


def _as_objectives(objectives) -> np.ndarray:
    arr = np.asarray(objectives, dtype=float)
    if arr.ndim != 2:
        raise ValueError(f"objectives must be (n, m), got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise ValueError("objectives must be finite")
    return arr


def dominates(a, b) -> bool:
    """Pareto dominance for minimization: a <= b everywhere, < somewhere."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return bool(np.all(a <= b) and np.any(a < b))


def fast_non_dominated_sort(objectives) -> list[np.ndarray]:
    """Deb's fast non-dominated sort.

    Returns fronts as index arrays; front 0 is the Pareto-optimal set.
    Dominance counting is fully vectorized (pairwise comparisons in one
    broadcasted pass) — O(m·n²) memory-light boolean work instead of a
    Python triple loop.
    """
    arr = _as_objectives(objectives)
    n = arr.shape[0]
    if n == 0:
        return []
    # dom[i, j] = i dominates j
    less_equal = (arr[:, None, :] <= arr[None, :, :]).all(axis=2)
    strictly_less = (arr[:, None, :] < arr[None, :, :]).any(axis=2)
    dom = less_equal & strictly_less

    dominated_count = dom.sum(axis=0)  # how many dominate each j
    fronts: list[np.ndarray] = []
    remaining = np.ones(n, dtype=bool)
    counts = dominated_count.copy()
    while remaining.any():
        current = remaining & (counts == 0)
        if not current.any():
            raise RuntimeError("non-dominated sort failed to make progress")
        fronts.append(np.flatnonzero(current))
        remaining &= ~current
        # removing the current front decrements dominated counts
        counts = counts - dom[current].sum(axis=0)
    return fronts


def crowding_distance(objectives) -> np.ndarray:
    """Crowding distance of each individual *within the given set*.

    Boundary points per objective get infinite distance; interior points
    accumulate normalized neighbour gaps.  Constant objectives
    contribute nothing.
    """
    arr = _as_objectives(objectives)
    n, m = arr.shape
    distance = np.zeros(n)
    if n <= 2:
        return np.full(n, np.inf)
    for k in range(m):
        order = np.argsort(arr[:, k], kind="stable")
        values = arr[order, k]
        span = values[-1] - values[0]
        if span > 0:
            # Every point *tied* with a boundary value is a boundary
            # point; marking only order[0]/order[-1] would hand inf to
            # whichever duplicate the stable sort happened to place
            # first/last, making selection depend on input order.  A
            # constant objective (span == 0) stays degenerate and
            # contributes nothing, exactly as before.
            distance[order[values == values[0]]] = np.inf
            distance[order[values == values[-1]]] = np.inf
            distance[order[1:-1]] += (values[2:] - values[:-2]) / span
    return distance


def crowded_compare(rank_a: int, dist_a: float, rank_b: int, dist_b: float) -> bool:
    """NSGA-II's partial order: True when a beats b."""
    if rank_a != rank_b:
        return rank_a < rank_b
    return dist_a > dist_b


def environmental_selection(objectives, k: int) -> np.ndarray:
    """Select ``k`` survivor indices by rank, then crowding within the cut front."""
    arr = _as_objectives(objectives)
    if not 0 <= k <= arr.shape[0]:
        raise ValueError(f"k must be in [0, {arr.shape[0]}], got {k}")
    survivors: list[int] = []
    for front in fast_non_dominated_sort(arr):
        if len(survivors) + len(front) <= k:
            survivors.extend(front.tolist())
            if len(survivors) == k:
                break
        else:
            need = k - len(survivors)
            dist = crowding_distance(arr[front])
            # most-crowded-last: take the `need` largest distances
            keep = front[np.argsort(-dist, kind="stable")[:need]]
            survivors.extend(keep.tolist())
            break
    return np.asarray(survivors, dtype=int)


def steady_eviction(objectives) -> int:
    """Index of the single member to drop under one-in/one-out selection.

    The steady-state loop adds one settled offspring to the population
    and evicts exactly one member.  The victim is chosen with the same
    rule environmental selection applies at its cut front: worst rank
    first, least crowded within it — so evicting one from ``n`` members
    keeps precisely the ``n - 1`` survivors
    ``environmental_selection(objectives, n - 1)`` would keep.
    """
    arr = _as_objectives(objectives)
    if arr.shape[0] < 2:
        raise ValueError("steady eviction needs at least two members")
    last_front = fast_non_dominated_sort(arr)[-1]
    dist = crowding_distance(arr[last_front])
    # mirror environmental_selection's most-crowded-first stable ordering
    return int(last_front[np.argsort(-dist, kind="stable")[-1]])


def binary_tournament(
    objectives, rng: np.random.Generator, *, n_winners: int
) -> np.ndarray:
    """Binary tournament selection with the crowded-comparison operator.

    Ranks and crowding are computed once over the whole pool; each
    winner comes from an independent random pairing.
    """
    arr = _as_objectives(objectives)
    n = arr.shape[0]
    if n == 0:
        raise ValueError("cannot run a tournament on an empty pool")
    fronts = fast_non_dominated_sort(arr)
    ranks = np.empty(n, dtype=int)
    distances = np.empty(n)
    for rank, front in enumerate(fronts):
        ranks[front] = rank
        distances[front] = crowding_distance(arr[front])

    winners = np.empty(n_winners, dtype=int)
    for t in range(n_winners):
        i, j = rng.integers(0, n, size=2)
        winners[t] = i if crowded_compare(ranks[i], distances[i], ranks[j], distances[j]) else j
    return winners


def pareto_front_mask(objectives) -> np.ndarray:
    """Boolean mask of Pareto-optimal individuals (minimization)."""
    arr = _as_objectives(objectives)
    mask = np.zeros(arr.shape[0], dtype=bool)
    if arr.shape[0]:
        mask[fast_non_dominated_sort(arr)[0]] = True
    return mask
