"""Genome → network decoder.

Materializes an NSGA-Net genome as a runnable
:class:`~repro.nn.network.Network`:

* each :class:`~repro.nas.genome.PhaseGenome` becomes a
  :class:`PhaseBlock` — a composite layer executing the phase's node DAG
  (every node is a conv→batch-norm→ReLU block on a shared channel
  width);
* phases are separated by 2×2 max pooling (NSGA-Net's spatial
  reduction);
* a global-average-pool + dense head produces class logits.

:class:`PhaseBlock` is registered with the layer serialization registry,
so decoded networks checkpoint/restore like any hand-built model.
"""

from __future__ import annotations

import numpy as np

from repro.nas.genome import Genome
from repro.nn.dtype import dtype_label, resolve_dtype
from repro.nn.layers import LAYER_TYPES, BatchNorm2D, Conv2D, Dense, GlobalAvgPool2D, MaxPool2D, ReLU
from repro.nn.layers.base import Layer, Parameter
from repro.nn.network import Network
from repro.utils.rng import fallback_rng

__all__ = ["PhaseBlock", "DecoderConfig", "decode_genome"]


class PhaseBlock(Layer):
    """One NSGA-Net phase: a DAG of conv-bn-relu nodes on shared width.

    Routing (per NSGA-Net's macro encoding):

    * a 1×1 conv adapter maps the incoming channel width to the phase
      width;
    * node ``j``'s input is the sum of its predecessors' outputs, or the
      adapted phase input when it has no predecessors;
    * the phase output is the sum of all *sink* nodes' outputs (nodes
      nobody consumes), plus the adapted input when the genome's skip
      bit is set.

    Parameters
    ----------
    n_nodes, bits:
        The phase genome (see :class:`~repro.nas.genome.PhaseGenome`).
    in_channels, out_channels:
        Incoming width and the phase's node width.
    rng:
        Weight-initialization generator.
    """

    def __init__(
        self,
        n_nodes: int,
        bits: tuple,
        in_channels: int,
        out_channels: int,
        *,
        rng: np.random.Generator | None = None,
        dtype=None,
    ) -> None:
        super().__init__()
        from repro.nas.genome import PhaseGenome  # local to avoid cycle at import

        rng = rng if rng is not None else fallback_rng()
        self.genome = PhaseGenome(n_nodes, tuple(bits))
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.dtype = resolve_dtype(dtype)

        self.adapter = Conv2D(
            in_channels, out_channels, kernel_size=1, padding=0, rng=rng, dtype=self.dtype
        )
        self.nodes: list[list[Layer]] = []
        for _ in range(n_nodes):
            self.nodes.append(
                [
                    Conv2D(out_channels, out_channels, kernel_size=3, rng=rng, dtype=self.dtype),
                    BatchNorm2D(out_channels, dtype=self.dtype),
                    ReLU(),
                ]
            )

        matrix = self.genome.connection_matrix()
        self._preds = [list(np.flatnonzero(matrix[:, j])) for j in range(n_nodes)]
        has_succ = matrix.any(axis=1)
        self._sinks = [j for j in range(n_nodes) if not has_succ[j]]

    # -- sub-layer plumbing ----------------------------------------------------

    def _sublayers(self):
        yield "adapter", self.adapter
        for idx, node in enumerate(self.nodes):
            for part_name, part in zip(("conv", "bn", "relu"), node):
                yield f"node{idx}.{part_name}", part

    def parameters(self):
        for prefix, layer in self._sublayers():
            for name, param in layer.parameters():
                yield f"{prefix}.{name}", param

    def n_parameters(self) -> int:
        return sum(layer.n_parameters() for _, layer in self._sublayers())

    def zero_grad(self) -> None:
        for _, layer in self._sublayers():
            layer.zero_grad()

    def state(self) -> dict[str, np.ndarray]:
        collected = {}
        for prefix, layer in self._sublayers():
            for key, value in layer.state().items():
                collected[f"{prefix}.{key}"] = value
        return collected

    def load_state(self, state: dict[str, np.ndarray]) -> None:
        remaining = dict(state)
        for prefix, layer in self._sublayers():
            expected = layer.state()
            sub = {}
            for key in expected:
                full = f"{prefix}.{key}"
                if full not in remaining:
                    raise KeyError(f"phase state missing {full!r}")
                sub[key] = remaining.pop(full)
            if sub:
                layer.load_state(sub)
        if remaining:
            raise KeyError(f"phase state has unused entries: {sorted(remaining)}")

    def bind_arena(self, arena, owner: str = "") -> None:
        """Propagate the arena to every sublayer with a dotted owner path."""
        super().bind_arena(arena, owner)
        for prefix, layer in self._sublayers():
            layer.bind_arena(arena, f"{self._arena_owner}.{prefix}")

    def unbind_arena(self) -> None:
        super().unbind_arena()
        for _, layer in self._sublayers():
            layer.unbind_arena()

    # -- computation -------------------------------------------------------------

    def _run_node(self, idx: int, x: np.ndarray, training: bool) -> np.ndarray:
        for part in self.nodes[idx]:
            x = part.forward(x, training=training)
        return x

    def _backprop_node(self, idx: int, grad: np.ndarray) -> np.ndarray:
        for part in reversed(self.nodes[idx]):
            grad = part.backward(grad)
        return grad

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if self._arena is not None:
            return self._forward_arena(x, training)
        adapted = self.adapter.forward(x, training=training)
        outputs: list[np.ndarray] = []
        n_input_consumers = 0
        for j in range(self.genome.n_nodes):
            preds = self._preds[j]
            if preds:
                node_in = outputs[preds[0]]
                for p in preds[1:]:
                    node_in = node_in + outputs[p]
            else:
                node_in = adapted
                n_input_consumers += 1
            outputs.append(self._run_node(j, node_in, training=training))

        result = outputs[self._sinks[0]]
        for j in self._sinks[1:]:
            result = result + outputs[j]
        if self.genome.skip:
            result = result + adapted
        self._training_mode = training
        return result

    def _forward_arena(self, x: np.ndarray, training: bool) -> np.ndarray:
        """The DAG traversal with every elementwise sum in pinned scratch.

        Node outputs live in each node's own arena buffers (distinct
        owner paths), so they stay valid for the whole phase pass; the
        sums replicate the legacy left-to-right order bit-for-bit.
        """
        adapted = self.adapter.forward(x, training=training)
        outputs: list[np.ndarray] = []
        for j in range(self.genome.n_nodes):
            preds = self._preds[j]
            if not preds:
                node_in = adapted
            elif len(preds) == 1:
                node_in = outputs[preds[0]]
            else:
                node_in = self._buf(f"nodein{j}", adapted.shape, adapted.dtype)
                np.add(outputs[preds[0]], outputs[preds[1]], out=node_in)
                for p in preds[2:]:
                    node_in += outputs[p]
            outputs.append(self._run_node(j, node_in, training=training))

        terms = [outputs[j] for j in self._sinks]
        if self.genome.skip:
            terms.append(adapted)
        if len(terms) == 1:
            result = terms[0]
        else:
            result = self._buf("result", terms[0].shape, terms[0].dtype)
            np.add(terms[0], terms[1], out=result)
            for term in terms[2:]:
                result += term
        self._training_mode = training
        return result

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if not getattr(self, "_training_mode", False):
            raise RuntimeError("backward called before a training-mode forward")
        if self._arena is not None:
            return self._backward_arena(grad_out)
        n = self.genome.n_nodes
        node_grads: list = [None] * n
        for j in self._sinks:
            node_grads[j] = grad_out.copy()  # a4nn: noqa(PERF003) -- byte-exact legacy path (float64 replay); the arena path pins these
        adapted_grad = grad_out.copy() if self.genome.skip else None

        for j in reversed(range(n)):
            if node_grads[j] is None:
                # unreachable by construction: every node is a sink or
                # has successors that already deposited a gradient
                continue
            grad_in = self._backprop_node(j, node_grads[j])
            preds = self._preds[j]
            if preds:
                for p in preds:
                    if node_grads[p] is None:
                        node_grads[p] = grad_in.copy()  # a4nn: noqa(PERF003) -- byte-exact legacy path (float64 replay)
                    else:
                        node_grads[p] += grad_in
            else:
                if adapted_grad is None:
                    adapted_grad = grad_in.copy()  # a4nn: noqa(PERF003) -- byte-exact legacy path (float64 replay)
                else:
                    adapted_grad += grad_in
        return self.adapter.backward(adapted_grad)

    def _backward_arena(self, grad_out: np.ndarray) -> np.ndarray:
        """Reverse DAG traversal with per-node gradient accumulators pinned.

        Each node's running gradient is copied into its own ``ng{j}``
        buffer the moment it first arrives (mirroring the legacy
        ``.copy()``), so later in-place ``+=`` accumulation can never
        alias an upstream layer's scratch.
        """
        n = self.genome.n_nodes
        dt = grad_out.dtype
        node_grads: list = [None] * n
        for j in self._sinks:
            buf = self._buf(f"ng{j}", grad_out.shape, dt)
            np.copyto(buf, grad_out)
            node_grads[j] = buf
        adapted_grad = None
        if self.genome.skip:
            adapted_grad = self._buf("adapted_grad", grad_out.shape, dt)
            np.copyto(adapted_grad, grad_out)

        for j in reversed(range(n)):
            if node_grads[j] is None:
                continue
            grad_in = self._backprop_node(j, node_grads[j])
            preds = self._preds[j]
            if preds:
                for p in preds:
                    if node_grads[p] is None:
                        buf = self._buf(f"ng{p}", grad_in.shape, dt)
                        np.copyto(buf, grad_in)
                        node_grads[p] = buf
                    else:
                        node_grads[p] += grad_in
            else:
                if adapted_grad is None:
                    adapted_grad = self._buf("adapted_grad", grad_in.shape, dt)
                    np.copyto(adapted_grad, grad_in)
                else:
                    adapted_grad += grad_in
        return self.adapter.backward(adapted_grad)

    # -- shape & cost ---------------------------------------------------------------

    def output_shape(self, input_shape: tuple) -> tuple:
        c, h, w = input_shape
        if c != self.in_channels:
            raise ValueError(
                f"PhaseBlock expects {self.in_channels} channels, got {input_shape}"
            )
        return (self.out_channels, h, w)

    def flops(self, input_shape: tuple) -> int:
        _, h, w = input_shape
        total = self.adapter.flops(input_shape)
        node_shape = (self.out_channels, h, w)
        per_node = sum(part.flops(node_shape) for part in self.nodes[0])
        total += per_node * self.genome.n_nodes
        # elementwise sums for multi-predecessor nodes, sinks, and skip
        adds = sum(max(len(p) - 1, 0) for p in self._preds)
        adds += max(len(self._sinks) - 1, 0) + (1 if self.genome.skip else 0)
        total += adds * int(np.prod(node_shape))
        return total

    def get_config(self) -> dict:
        return {
            "n_nodes": self.genome.n_nodes,
            "bits": list(self.genome.bits),
            "in_channels": self.in_channels,
            "out_channels": self.out_channels,
            "dtype": dtype_label(self.dtype),
        }


# Register for checkpoint round-trips.
LAYER_TYPES["PhaseBlock"] = PhaseBlock


class DecoderConfig:
    """Decoder knobs: per-phase channel widths and the input geometry.

    Parameters
    ----------
    input_shape:
        Per-sample NCHW-without-N shape, e.g. ``(1, 32, 32)``.
    n_classes:
        Output logits.
    channels:
        Channel width per phase; length must equal the genome's phase
        count.  Widths double per phase by default, as in NSGA-Net.
    dtype:
        Compute dtype for every decoded layer (``None`` keeps the
        framework default, float64 — see :mod:`repro.nn.dtype`).
    """

    def __init__(
        self,
        input_shape: tuple = (1, 32, 32),
        n_classes: int = 2,
        channels: tuple = (8, 16, 32),
        dtype=None,
    ) -> None:
        if len(input_shape) != 3:
            raise ValueError(f"input_shape must be (C, H, W), got {input_shape}")
        if n_classes < 2:
            raise ValueError(f"n_classes must be >= 2, got {n_classes}")
        if any(c <= 0 for c in channels):
            raise ValueError(f"channels must be positive, got {channels}")
        self.input_shape = tuple(input_shape)
        self.n_classes = int(n_classes)
        self.channels = tuple(int(c) for c in channels)
        self.dtype = resolve_dtype(dtype)


def decode_genome(
    genome: Genome,
    config: DecoderConfig | None = None,
    *,
    rng: np.random.Generator | None = None,
    name: str | None = None,
    canonical: bool = False,
) -> Network:
    """Build the runnable network a genome encodes.

    Pooling between phases halves the spatial extent; the decoder
    validates that the input is large enough for the phase count.

    With ``canonical=True`` the genome is connectivity-normalized first
    (:meth:`~repro.nas.genome.Genome.canonical`), so every member of an
    isomorphism class materializes as the *same* network — the property
    the evaluation cache relies on.
    """
    config = config or DecoderConfig()
    rng = rng if rng is not None else fallback_rng()
    if canonical:
        genome = genome.canonical()
    if genome.n_phases != len(config.channels):
        raise ValueError(
            f"genome has {genome.n_phases} phases but decoder config provides "
            f"{len(config.channels)} channel widths"
        )
    c, h, w = config.input_shape
    min_extent = 2 ** (genome.n_phases - 1)
    if min(h, w) < min_extent * 2:
        raise ValueError(
            f"input {h}x{w} too small for {genome.n_phases} phases "
            f"(needs >= {min_extent * 2})"
        )

    layers: list = []
    in_channels = c
    for idx, (phase, width) in enumerate(zip(genome.phases, config.channels)):
        layers.append(
            PhaseBlock(
                phase.n_nodes, phase.bits, in_channels, width, rng=rng, dtype=config.dtype
            )
        )
        in_channels = width
        if idx < genome.n_phases - 1:
            layers.append(MaxPool2D(2))
    layers.append(GlobalAvgPool2D())
    layers.append(Dense(in_channels, config.n_classes, rng=rng, dtype=config.dtype))

    return Network(
        layers,
        input_shape=config.input_shape,
        name=name or f"nsga-{genome.key()}",
    )
