"""Lineage tracking and the NN data commons (paper §2.3, §4.5).

Record trails — genome, architecture table, per-epoch accuracies and
times, predictions, engine parameters — are collected live by the
:class:`~repro.lineage.tracker.LineageTracker`, published to a durable
:class:`~repro.lineage.commons.DataCommons` (the Dataverse substitute),
and analyzed via :class:`~repro.lineage.provenance.ProvenanceGraph`.
"""

from repro.lineage.commons import DataCommons
from repro.lineage.dataverse import CitationMetadata, export_bundle, import_bundle
from repro.lineage.provenance import ProvenanceGraph
from repro.lineage.replay import ReplayReport, replay_run, verify_run
from repro.lineage.records import EpochRecord, ModelRecord, RunRecord
from repro.lineage.tracker import LineageTracker

__all__ = [
    "DataCommons",
    "CitationMetadata",
    "export_bundle",
    "import_bundle",
    "ProvenanceGraph",
    "ReplayReport",
    "replay_run",
    "verify_run",
    "EpochRecord",
    "ModelRecord",
    "RunRecord",
    "LineageTracker",
]
