"""The NN data commons: a durable, queryable store of record trails.

Stands in for the paper's Harvard Dataverse deposit: a directory of
JSON documents with a manifest, one run document per search, one model
document per architecture — "enabling reproducible and explainable
machine learning".  The layout is plain files so any tool (or the
paper's own Pandas snippet) can read it:

.. code-block:: text

    commons/
      manifest.json
      runs/<run_id>/run.json
      runs/<run_id>/models/model_00042.json
"""

from __future__ import annotations

from pathlib import Path

from repro.lineage.records import ModelRecord, RunRecord
from repro.lineage.tracker import LineageTracker
from repro.utils.io import atomic_write_json, read_json

__all__ = ["DataCommons"]


class DataCommons:
    """Filesystem-backed commons with publish and query operations."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._manifest_path = self.root / "manifest.json"

    # -- publishing -------------------------------------------------------------

    def publish_run(
        self,
        run: RunRecord,
        records: list[ModelRecord] | LineageTracker,
    ) -> Path:
        """Store one search run and all of its model record trails.

        Returns the run directory.  Re-publishing the same ``run_id``
        overwrites it (runs are immutable-by-convention, replayable by
        seed).
        """
        if isinstance(records, LineageTracker):
            records = records.all_records()
        run.n_models = len(records)
        run.total_epochs_trained = sum(r.epochs_trained for r in records)
        run.total_epochs_saved = sum(r.epochs_saved for r in records)
        run.total_epochs_skipped = sum(r.epochs_skipped for r in records)

        run_dir = self.root / "runs" / run.run_id
        atomic_write_json(run_dir / "run.json", run.to_dict())
        for record in records:
            atomic_write_json(
                run_dir / "models" / f"model_{record.model_id:05d}.json",
                record.to_dict(),
            )
        self._update_manifest(run)
        return run_dir

    def _update_manifest(self, run: RunRecord) -> None:
        manifest = {"runs": {}}
        if self._manifest_path.exists():
            manifest = read_json(self._manifest_path)
        manifest.setdefault("runs", {})[run.run_id] = {
            "intensity": run.intensity,
            "n_models": run.n_models,
            "total_epochs_trained": run.total_epochs_trained,
            "total_epochs_saved": run.total_epochs_saved,
            "total_epochs_skipped": run.total_epochs_skipped,
        }
        atomic_write_json(self._manifest_path, manifest)

    # -- reading -----------------------------------------------------------------

    def run_ids(self) -> list[str]:
        """All published run ids, sorted."""
        if not self._manifest_path.exists():
            return []
        return sorted(read_json(self._manifest_path).get("runs", {}))

    def load_run(self, run_id: str) -> RunRecord:
        """Load one run's metadata."""
        return RunRecord.from_dict(read_json(self.root / "runs" / run_id / "run.json"))

    def load_models(self, run_id: str) -> list[ModelRecord]:
        """Load every model record trail of a run, ordered by model id."""
        models_dir = self.root / "runs" / run_id / "models"
        if not models_dir.exists():
            raise FileNotFoundError(f"run {run_id!r} has no models directory")
        return [
            ModelRecord.from_dict(read_json(path))
            for path in sorted(models_dir.glob("model_*.json"))
        ]

    def iter_all_models(self):
        """Yield ``(run_id, ModelRecord)`` over the whole commons."""
        for run_id in self.run_ids():
            for record in self.load_models(run_id):
                yield run_id, record

    def size_bytes(self) -> int:
        """Total on-disk footprint of the commons."""
        return sum(p.stat().st_size for p in self.root.rglob("*") if p.is_file())
