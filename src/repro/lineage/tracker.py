"""Lineage tracker: builds record trails as the search runs.

Hooks into the evaluator's per-epoch observer interface and the search's
per-individual callback, accumulating :class:`~repro.lineage.records.
ModelRecord` objects, and optionally checkpointing model state every
epoch (paper §2.2.2: "the workflow orchestrator writes the partially
trained NN's state to memory, such that each model can be loaded and
re-evaluated from any point in the training phase").
"""

from __future__ import annotations

from pathlib import Path

from repro.lineage.records import EpochRecord, ModelRecord
from repro.nas.population import Individual
from repro.nn.flops import layer_flops_table
from repro.nn.serialization import save_checkpoint
from repro.utils.logging import get_logger

__all__ = ["LineageTracker"]

_LOG = get_logger("lineage.tracker")


class LineageTracker:
    """Collects the evolution of NN architectures and their metadata.

    Parameters
    ----------
    engine_parameters:
        Snapshot of the prediction-engine configuration (Table 1), or
        ``None`` for standalone-NAS runs.
    checkpoint_dir:
        When given (real mode), every epoch's model state is saved under
        ``<dir>/model_<id>/epoch_<e>``.
    training_parameters:
        Shared training hyper-parameters recorded on every model
        (learning rate, batch size, criterion, fitness measurement).
    """

    def __init__(
        self,
        engine_parameters: dict | None = None,
        *,
        checkpoint_dir: str | Path | None = None,
        training_parameters: dict | None = None,
    ) -> None:
        self.engine_parameters = engine_parameters
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None
        self.training_parameters = dict(training_parameters or {})
        self.records: dict[int, ModelRecord] = {}

    # -- evaluator observer (per-epoch) ---------------------------------------

    def observe_epoch(
        self,
        individual: Individual,
        epoch: int,
        fitness: float,
        prediction: float | None,
        context: dict,
    ) -> None:
        """EpochObserver hook: record one epoch, checkpoint if configured."""
        record = self._record_for(individual)
        epoch_record = EpochRecord(
            epoch=epoch,
            validation_accuracy=float(fitness),
            prediction=None if prediction is None else float(prediction),
        )
        stats = context.get("epoch_stats")
        if stats is not None:
            epoch_record.train_accuracy = stats.train_accuracy
            epoch_record.train_loss = stats.train_loss
            epoch_record.epoch_seconds = stats.wall_seconds

        network = context.get("network")
        if network is not None and self.checkpoint_dir is not None:
            target = self.checkpoint_dir / f"model_{individual.model_id}"
            epoch_record.checkpoint = save_checkpoint(
                network, target, tag=f"epoch_{epoch}"
            )
        record.epochs.append(epoch_record.to_dict())

    # -- search callback (per-individual, after evaluation) --------------------

    def observe_individual(self, individual: Individual) -> None:
        """Finalize a model's record once its evaluation completed."""
        record = self._record_for(individual)
        record.fitness = individual.fitness
        record.flops = individual.flops
        record.quarantined = bool(individual.quarantined) or record.quarantined
        record.cache_hit = bool(individual.cache_hit)
        record.cache_source = individual.cache_source
        record.logical_tick = individual.logical_tick
        record.arena_enabled = bool(individual.arena_enabled)
        record.arena_peak_bytes = int(individual.arena_peak_bytes)
        record.predicted_fitness = individual.predicted_fitness
        record.predicted_rank = individual.predicted_rank
        record.budget_assigned = individual.budget_assigned
        record.skip_reason = individual.skip_reason
        if individual.fault_events and not record.fault_events:
            # fault events normally arrive through observe_fault_event;
            # pick them up from the individual when the policy wasn't
            # wired to this tracker directly
            record.fault_events = [dict(e) for e in individual.fault_events]
        result = individual.result
        if result is not None:
            record.measured_fitness = result.measured_fitness
            record.terminated_early = result.terminated_early
            record.epochs_trained = result.epochs_trained
            record.max_epochs = result._max_epochs
            record.fitness_history = list(result.fitness_history)
            record.prediction_history = list(result.prediction_history)
            record.engine_overhead_seconds = result.engine_overhead_seconds
        # fill epoch wall times from the individual when the evaluator
        # supplied them out-of-band (surrogate cost model)
        if individual.epoch_seconds and record.epochs:
            for entry, seconds in zip(record.epochs, individual.epoch_seconds):
                if entry.get("epoch_seconds") is None:
                    entry["epoch_seconds"] = float(seconds)
        _LOG.debug("recorded model %d (gen %d)", individual.model_id, individual.generation)

    def observe_fault(self, individual: Individual, fault) -> None:
        """Record a sanitizer :class:`~repro.tooling.sanitizer.NumericalFault`.

        The fault snapshot replaces the epochs the model never trained:
        the record keeps whatever history was measured *before* the
        fault, and the poisoned value itself never enters
        ``fitness_history`` (it would corrupt the engine's curve fit).
        """
        record = self._record_for(individual)
        record.fault = fault.to_dict() if hasattr(fault, "to_dict") else dict(fault)
        _LOG.warning(
            "model %d training aborted by sanitizer: %s",
            individual.model_id,
            record.fault.get("message"),
        )

    def observe_fault_event(self, individual: Individual, event: dict) -> None:
        """Record one fault-policy decision (retry or quarantine).

        Wired into :class:`~repro.scheduler.faults.FaultTolerantEvaluator`
        so the data commons keeps the full trail: which attempts failed,
        how (crash/timeout/numerical), what backoff was applied, and
        whether the candidate was ultimately quarantined.
        """
        record = self._record_for(individual)
        record.fault_events.append(dict(event))
        if event.get("action") == "quarantine":
            record.quarantined = True
        _LOG.info(
            "model %d attempt %s: %s fault -> %s",
            individual.model_id,
            event.get("attempt"),
            event.get("kind"),
            event.get("action"),
        )

    def attach_architecture(self, individual: Individual, network) -> None:
        """Record the decoded layer table for a model (types, shapes, FLOPs)."""
        record = self._record_for(individual)
        record.architecture = [
            {
                "index": row["index"],
                "layer": row["layer"],
                "config": row["config"],
                "output_shape": list(row["output_shape"]),
                "params": row["params"],
                "flops": row["flops"],
            }
            for row in layer_flops_table(network)
        ]

    # -- access -----------------------------------------------------------------

    def _record_for(self, individual: Individual) -> ModelRecord:
        record = self.records.get(individual.model_id)
        if record is None:
            record = ModelRecord(
                model_id=individual.model_id,
                generation=individual.generation,
                genome=individual.genome.to_dict(),
                engine_parameters=self.engine_parameters,
                training_parameters=dict(self.training_parameters),
            )
            self.records[individual.model_id] = record
        return record

    def all_records(self) -> list[ModelRecord]:
        """Records ordered by model id."""
        return [self.records[k] for k in sorted(self.records)]
