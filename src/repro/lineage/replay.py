"""Run replay and verification — reproducible ML made operational.

The paper's lineage tracker exists "to reproduce the search for
near-optimal NNs".  This module closes that loop: given a published run
whose :class:`~repro.lineage.records.RunRecord` carries its full
workflow configuration, :func:`replay_run` re-executes the search from
the recorded seed and :func:`verify_run` diffs the fresh record trails
against the published ones, reporting any divergence field by field.

Surrogate-mode runs replay bit-exactly (all randomness is derived from
the seed).  Real-mode runs replay the same genomes, fitness values and
epoch counts, but measured wall-clock fields differ; those are excluded
from verification.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lineage.commons import DataCommons
from repro.lineage.records import ModelRecord

__all__ = ["ReplayReport", "replay_run", "verify_run"]

#: Record fields whose values are wall-clock measurements (never stable).
_MEASURED_FIELDS = ("engine_overhead_seconds",)

#: Fields compared per model during verification.
_VERIFIED_FIELDS = (
    "model_id",
    "generation",
    "genome",
    "fitness",
    "measured_fitness",
    "flops",
    "terminated_early",
    "epochs_trained",
    "max_epochs",
    "fitness_history",
    "prediction_history",
    "quarantined",
    "cache_hit",
    "logical_tick",
    "predicted_fitness",
    "predicted_rank",
    "budget_assigned",
    "skip_reason",
)


@dataclass
class ReplayReport:
    """Outcome of verifying a run against its replay.

    Attributes
    ----------
    run_id:
        The verified run.
    n_models:
        Models compared.
    matches:
        True when every verified field of every model agrees.
    mismatches:
        ``(model_id, field, published, replayed)`` tuples, truncated to
        the first 20.
    mode:
        The run's evaluation mode (real-mode epoch timings are expected
        to differ and are not compared).
    """

    run_id: str
    n_models: int
    matches: bool
    mismatches: list = field(default_factory=list)
    mode: str = "surrogate"

    def summary(self) -> str:
        verdict = "REPRODUCED" if self.matches else "DIVERGED"
        lines = [f"run {self.run_id}: {verdict} ({self.n_models} models compared)"]
        for model_id, fname, published, replayed in self.mismatches[:5]:
            lines.append(
                f"  model {model_id}.{fname}: published {published!r} != replayed {replayed!r}"
            )
        if len(self.mismatches) > 5:
            lines.append(f"  ... and {len(self.mismatches) - 5} more mismatches")
        return "\n".join(lines)


def replay_run(commons: DataCommons, run_id: str):
    """Re-execute a published run from its recorded configuration.

    Returns the fresh :class:`~repro.workflow.orchestrator.
    WorkflowResult` (not published anywhere).
    """
    # imported here: lineage is a lower layer than workflow
    from repro.workflow.driver import run_workflow
    from repro.workflow.interfaces import WorkflowConfig

    run = commons.load_run(run_id)
    if run.workflow_config is None:
        raise ValueError(
            f"run {run_id!r} predates config capture and cannot be replayed"
        )
    config = WorkflowConfig.from_dict(run.workflow_config)
    return run_workflow(config)


def _compare_models(
    published: list[ModelRecord], replayed: list[ModelRecord]
) -> list[tuple]:
    mismatches: list[tuple] = []
    by_id = {r.model_id: r for r in replayed}
    for original in published:
        fresh = by_id.get(original.model_id)
        if fresh is None:
            mismatches.append((original.model_id, "<presence>", "present", "missing"))
            continue
        for fname in _VERIFIED_FIELDS:
            a = getattr(original, fname)
            b = getattr(fresh, fname)
            if a != b:
                mismatches.append((original.model_id, fname, a, b))
    extra = set(by_id) - {r.model_id for r in published}
    for model_id in sorted(extra):
        mismatches.append((model_id, "<presence>", "missing", "present"))
    return mismatches[:20]


def verify_run(commons: DataCommons, run_id: str) -> ReplayReport:
    """Replay a run and diff its record trails against the published ones."""
    run = commons.load_run(run_id)
    published = commons.load_models(run_id)
    result = replay_run(commons, run_id)
    replayed = result.tracker.all_records()
    mismatches = _compare_models(published, replayed)
    mode = (run.workflow_config or {}).get("mode", "surrogate")
    return ReplayReport(
        run_id=run_id,
        n_models=len(published),
        matches=not mismatches,
        mismatches=mismatches,
        mode=mode,
    )
