"""Provenance graph of a search: who descended from whom, and how.

Captures "the arc of an NN architecture's optimization" (§2.3) as a
directed graph: nodes are evaluated models with their metrics; edges go
from parents to the offspring produced from them by crossover+mutation.
Built on :mod:`networkx` so users get its analysis/IO ecosystem.
"""

from __future__ import annotations

import networkx as nx

from repro.lineage.records import ModelRecord
from repro.nas.genome import Genome

__all__ = ["ProvenanceGraph"]


class ProvenanceGraph:
    """A DAG of architecture lineage across generations."""

    def __init__(self) -> None:
        self.graph = nx.DiGraph()

    def add_model(self, record: ModelRecord) -> None:
        """Register a model node with its headline metrics."""
        self.graph.add_node(
            record.model_id,
            generation=record.generation,
            fitness=record.fitness,
            flops=record.flops,
            terminated_early=record.terminated_early,
            epochs_trained=record.epochs_trained,
            genome_key=Genome.from_dict(record.genome).key(),
        )

    def add_parentage(self, child_id: int, parent_ids: list[int]) -> None:
        """Record that ``child_id`` was bred from ``parent_ids``."""
        for parent in parent_ids:
            if parent not in self.graph:
                raise KeyError(f"unknown parent model {parent}")
        if child_id not in self.graph:
            raise KeyError(f"unknown child model {child_id}")
        for parent in parent_ids:
            self.graph.add_edge(parent, child_id)

    @classmethod
    def from_records(cls, records: list[ModelRecord]) -> "ProvenanceGraph":
        """Build a node-only graph from record trails (no parent info)."""
        pg = cls()
        for record in records:
            pg.add_model(record)
        return pg

    # -- queries -------------------------------------------------------------

    def generations(self) -> dict[int, list[int]]:
        """Model ids grouped by generation."""
        grouped: dict[int, list[int]] = {}
        for node, data in self.graph.nodes(data=True):
            grouped.setdefault(data["generation"], []).append(node)
        return {g: sorted(ids) for g, ids in sorted(grouped.items())}

    def ancestors(self, model_id: int) -> set:
        """All transitive parents of a model."""
        return nx.ancestors(self.graph, model_id)

    def descendants(self, model_id: int) -> set:
        """All transitive offspring of a model."""
        return nx.descendants(self.graph, model_id)

    def fittest_lineage(self) -> list[int]:
        """Ancestor chain (oldest first) of the highest-fitness model."""
        best = max(
            (n for n, d in self.graph.nodes(data=True) if d.get("fitness") is not None),
            key=lambda n: self.graph.nodes[n]["fitness"],
        )
        chain = sorted(
            self.ancestors(best),
            key=lambda n: (self.graph.nodes[n]["generation"], n),
        )
        return chain + [best]
