"""Dataverse-style export bundles for the data commons.

The paper deposits its 54 GB of record trails in Harvard Dataverse with
"complete metadata to leverage the repository's built-in capabilities".
This module packages a local commons the same way: a single zip bundle
containing the record trails plus a citation-metadata document in the
(simplified) Dataverse citation block layout, so a deposit is one upload.
"""

from __future__ import annotations

import zipfile
from dataclasses import dataclass
from pathlib import Path

from repro.lineage.commons import DataCommons
from repro.utils.io import JsonEncoder, read_json

import json

__all__ = ["CitationMetadata", "export_bundle", "import_bundle"]

_METADATA_NAME = "dataverse_citation.json"


@dataclass(frozen=True)
class CitationMetadata:
    """Simplified Dataverse citation block."""

    title: str
    authors: tuple = ()
    description: str = ""
    keywords: tuple = ("neural architecture search", "protein diffraction", "A4NN")
    license: str = "CC0 1.0"

    def to_dict(self) -> dict:
        return {
            "datasetVersion": {
                "license": self.license,
                "metadataBlocks": {
                    "citation": {
                        "fields": [
                            {"typeName": "title", "value": self.title},
                            {
                                "typeName": "author",
                                "value": [
                                    {"authorName": {"value": name}} for name in self.authors
                                ],
                            },
                            {
                                "typeName": "dsDescription",
                                "value": [{"dsDescriptionValue": {"value": self.description}}],
                            },
                            {"typeName": "keyword", "value": list(self.keywords)},
                        ]
                    }
                },
            }
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CitationMetadata":
        fields = {
            f["typeName"]: f["value"]
            for f in payload["datasetVersion"]["metadataBlocks"]["citation"]["fields"]
        }
        return cls(
            title=fields.get("title", ""),
            authors=tuple(
                a["authorName"]["value"] for a in fields.get("author", [])
            ),
            description=(
                fields.get("dsDescription", [{}])[0]
                .get("dsDescriptionValue", {})
                .get("value", "")
            ),
            keywords=tuple(fields.get("keyword", [])),
            license=payload["datasetVersion"].get("license", "CC0 1.0"),
        )


def export_bundle(
    commons: DataCommons,
    path: str | Path,
    metadata: CitationMetadata,
    *,
    run_ids: list[str] | None = None,
) -> Path:
    """Write a zip bundle with citation metadata and the selected runs.

    ``run_ids`` defaults to every published run.  Returns the bundle
    path.
    """
    selected = run_ids if run_ids is not None else commons.run_ids()
    missing = [r for r in selected if r not in commons.run_ids()]
    if missing:
        raise KeyError(f"runs not in commons: {missing}")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with zipfile.ZipFile(path, "w", compression=zipfile.ZIP_DEFLATED) as bundle:
        bundle.writestr(
            _METADATA_NAME,
            json.dumps(metadata.to_dict(), indent=2, sort_keys=True, cls=JsonEncoder),
        )
        manifest = {"runs": selected}
        bundle.writestr("bundle_manifest.json", json.dumps(manifest, indent=2))
        for run_id in selected:
            run_dir = commons.root / "runs" / run_id
            for file_path in sorted(run_dir.rglob("*")):
                if file_path.is_file():
                    bundle.write(
                        file_path, arcname=f"runs/{run_id}/{file_path.relative_to(run_dir)}"
                    )
    return path


def import_bundle(path: str | Path, target: str | Path) -> tuple[DataCommons, CitationMetadata]:
    """Unpack a bundle into a fresh commons directory.

    Returns the reconstructed commons and its citation metadata.
    Rejects bundle members that would escape the target directory.
    """
    target = Path(target)
    target.mkdir(parents=True, exist_ok=True)
    with zipfile.ZipFile(path) as bundle:
        names = bundle.namelist()
        if _METADATA_NAME not in names:
            raise ValueError(f"not an A4NN bundle: missing {_METADATA_NAME}")
        for name in names:
            resolved = (target / name).resolve()
            if not str(resolved).startswith(str(target.resolve())):
                raise ValueError(f"bundle member escapes target directory: {name!r}")
        bundle.extractall(target)
        metadata = CitationMetadata.from_dict(
            json.loads(bundle.read(_METADATA_NAME))
        )

    commons = DataCommons(target)
    # rebuild the commons manifest from the imported runs
    manifest = read_json(target / "bundle_manifest.json")
    for run_id in manifest.get("runs", []):
        run = commons.load_run(run_id)
        commons._update_manifest(run)
    return commons, metadata
