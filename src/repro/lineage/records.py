"""Record schemas for the NN data commons.

The paper's commons (§2.3, §4.5) stores, per neural architecture:
epoch times, training accuracies, validation accuracies, FLOPS,
predictions, prediction-engine parameters, genomes, and architecture
information — plus per-epoch model checkpoints.  These dataclasses are
that schema; they serialize to plain JSON-able dicts.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

__all__ = ["EpochRecord", "ModelRecord", "RunRecord"]


@dataclass
class EpochRecord:
    """One training epoch of one model."""

    epoch: int
    validation_accuracy: float
    train_accuracy: float | None = None
    train_loss: float | None = None
    epoch_seconds: float | None = None
    prediction: float | None = None
    checkpoint: dict | None = None

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "EpochRecord":
        return cls(**payload)


@dataclass
class ModelRecord:
    """The full record trail of one neural architecture.

    Attributes mirror the paper's commons fields; ``architecture`` holds
    the decoded layer table (types, configs, shapes, per-layer FLOPs)
    and ``engine_parameters`` the Table-1 snapshot active during
    training.
    """

    model_id: int
    generation: int
    genome: dict
    flops: int | None = None
    fitness: float | None = None
    measured_fitness: float | None = None
    terminated_early: bool = False
    epochs_trained: int = 0
    max_epochs: int = 0
    fitness_history: list = field(default_factory=list)
    prediction_history: list = field(default_factory=list)
    epochs: list = field(default_factory=list)  # list[EpochRecord dicts]
    architecture: list = field(default_factory=list)
    engine_parameters: dict | None = None
    engine_overhead_seconds: float = 0.0
    training_parameters: dict = field(default_factory=dict)
    # structured NumericalFault snapshot when the sanitizer aborted this
    # model's training; None for clean runs
    fault: dict | None = None
    # every fault/retry/quarantine decision the fault policy took for
    # this model (FaultEvent dicts, in order); empty for clean runs
    fault_events: list = field(default_factory=list)
    # whether the fault policy quarantined this model (fitness/flops are
    # then the policy's penalized objectives, not measurements)
    quarantined: bool = False
    # whether this model's outcome was reused from the evaluation cache
    # (same canonical genome already evaluated); cache_source is the
    # model id whose evaluation was copied
    cache_hit: bool = False
    cache_source: int | None = None
    # steady-state logical-clock position: the commit index at which
    # this model's result entered the population (equal to model_id by
    # construction); None for barrier-mode and historical records
    logical_tick: int | None = None
    # whether training ran on the buffer-arena kernel fast path, and the
    # arena's peak scratch footprint for the evaluation (0 = disabled)
    arena_enabled: bool = False
    arena_peak_bytes: int = 0
    # surrogate pre-ranking audit trail: the cross-architecture
    # prediction made when this model was bred, its rank against the
    # breeding population, the (possibly reduced) epoch budget the
    # allocator assigned, and why; all None/absent when the surrogate is
    # off or had not yet reached its cold-start floor
    predicted_fitness: float | None = None
    predicted_rank: int | None = None
    budget_assigned: int | None = None
    skip_reason: str | None = None

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "ModelRecord":
        return cls(**payload)

    @property
    def epochs_saved(self) -> int:
        """Epochs the *engine* saved by terminating inside the budget.

        ``max_epochs`` stores the effective budget the training loop ran
        under (the surrogate-reduced budget when one was assigned), so
        this never includes surrogate-skipped epochs — those are
        :attr:`epochs_skipped`.
        """
        return self.max_epochs - self.epochs_trained

    @property
    def epochs_skipped(self) -> int:
        """Epochs the *surrogate* skipped by reducing this model's budget.

        The gap between the run's full training budget (from
        ``training_parameters``) and the assigned budget; 0 for
        full-budget and quarantined models.
        """
        if self.budget_assigned is None or self.quarantined:
            return 0
        full = int(self.training_parameters.get("max_epochs", self.max_epochs))
        return max(full - min(int(self.budget_assigned), full), 0)

    def total_epoch_seconds(self) -> float:
        """Wall time across recorded epochs (0 for missing timings)."""
        return sum(
            e["epoch_seconds"] or 0.0 if isinstance(e, dict) else (e.epoch_seconds or 0.0)
            for e in self.epochs
        )


@dataclass
class RunRecord:
    """Metadata of one search run (the commons' top-level entry).

    ``workflow_config`` stores the complete
    :class:`~repro.workflow.interfaces.WorkflowConfig` document, making
    the run *replayable*: :func:`repro.lineage.replay.replay_run`
    re-executes it from the seed and verifies the record trails match.
    """

    run_id: str
    intensity: str
    nas_parameters: dict
    engine_parameters: dict | None
    n_models: int = 0
    total_epochs_trained: int = 0
    total_epochs_saved: int = 0
    total_epochs_skipped: int = 0
    notes: str = ""
    workflow_config: dict | None = None
    generation_stats: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "RunRecord":
        return cls(**payload)
