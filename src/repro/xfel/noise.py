"""Photon-counting noise and image preprocessing.

The XFEL detector counts photons; at fixed geometry the expected count
per image scales with the beam fluence, so lower beam intensity means a
smaller photon budget and a noisier pattern (the paper's noise proxy).
We allocate each image's photon budget across pixels proportionally to
the noise-free intensity and draw Poisson counts, then log-compress and
standardize — diffraction intensities span orders of magnitude, and the
central speckle would otherwise dominate the dynamic range.
"""

from __future__ import annotations

import numpy as np

from repro.xfel.intensity import BeamIntensity

__all__ = ["apply_photon_noise", "normalize_patterns", "snr_estimate"]


def apply_photon_noise(
    patterns: np.ndarray,
    intensity: BeamIntensity,
    rng: np.random.Generator,
) -> np.ndarray:
    """Convert noise-free intensities to Poisson photon-count images.

    Parameters
    ----------
    patterns:
        Noise-free intensities, ``(n, h, w)`` or ``(h, w)``; non-negative.
    intensity:
        Beam setting; fixes the expected photons per image.
    rng:
        Noise generator.

    Returns
    -------
    Integer photon counts with the same shape, as float64.
    """
    patterns = np.asarray(patterns, dtype=float)
    squeeze = patterns.ndim == 2
    if squeeze:
        patterns = patterns[None]
    if patterns.ndim != 3:
        raise ValueError(f"patterns must be (n, h, w) or (h, w), got {patterns.shape}")
    if np.any(patterns < 0):
        raise ValueError("intensities must be non-negative")

    totals = patterns.sum(axis=(1, 2), keepdims=True)
    if np.any(totals == 0):
        raise ValueError("each pattern must have positive total intensity")
    expected = patterns / totals * intensity.photon_budget
    counts = rng.poisson(expected).astype(np.float64)
    return counts[0] if squeeze else counts


def normalize_patterns(counts: np.ndarray) -> np.ndarray:
    """Log-compress and per-image standardize photon-count images.

    ``log1p`` keeps zero-count pixels at zero while compressing the
    central speckle; per-image zero-mean/unit-variance standardization
    removes the overall photon-budget scale so the classifier sees
    pattern *shape*, not brightness.
    """
    counts = np.asarray(counts, dtype=float)
    squeeze = counts.ndim == 2
    if squeeze:
        counts = counts[None]
    logged = np.log1p(counts)
    mean = logged.mean(axis=(1, 2), keepdims=True)
    std = logged.std(axis=(1, 2), keepdims=True)
    normalized = (logged - mean) / np.maximum(std, 1e-8)
    return normalized[0] if squeeze else normalized


def snr_estimate(noise_free: np.ndarray, noisy: np.ndarray) -> float:
    """Crude SNR in dB between a noise-free pattern and its noisy render.

    Both inputs are rescaled to unit total so the photon-budget scale
    cancels; used in tests to confirm that higher beam intensity yields
    higher SNR.
    """
    clean = np.asarray(noise_free, float)
    noisy = np.asarray(noisy, float)
    clean = clean / clean.sum()
    noisy = noisy / max(noisy.sum(), 1e-300)
    noise_power = float(np.mean((clean - noisy) ** 2))
    signal_power = float(np.mean(clean**2))
    return 10.0 * np.log10(signal_power / max(noise_power, 1e-300))
