"""End-to-end dataset generation with train/test splitting and caching.

Mirrors the paper's data pipeline: simulate diffraction patterns for the
two conformations at a chosen beam intensity, balance the classes, and
produce an 80/20 train/test split (paper: 63,508 / 15,876 images at full
scale; the image count and detector size here are configurable so CPU
training stays tractable — see DESIGN.md substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.nn.dtype import dtype_label, resolve_dtype
from repro.utils.io import atomic_write_npz, read_npz
from repro.utils.rng import derive_rng
from repro.xfel.diffraction import Detector, diffraction_batch
from repro.xfel.intensity import BeamIntensity
from repro.xfel.noise import apply_photon_noise, normalize_patterns
from repro.xfel.orientation import concentrated_rotations
from repro.xfel.protein import make_conformations

__all__ = [
    "DatasetConfig",
    "DiffractionDataset",
    "generate_dataset",
    "generate_dataset_from_proteins",
    "load_or_generate",
]


@dataclass(frozen=True)
class DatasetConfig:
    """Knobs for dataset generation.

    Attributes
    ----------
    intensity:
        Beam setting (low / medium / high).
    images_per_class:
        Total shots per conformation before splitting.
    image_size:
        Detector side length in pixels.
    train_fraction:
        Train share of the split (paper: 0.8).
    seed:
        Root seed; orientations and noise derive from it.
    n_atoms, q_max:
        Protein/detector physics knobs (see the xfel submodules).
    orientation_spread:
        Fraction of full SO(3) orientation variability; 1.0 is the
        paper's fully random orientations, smaller values compensate for
        reduced dataset sizes (see
        :func:`repro.xfel.orientation.concentrated_rotations`).
    dtype:
        Storage dtype of the generated images (``"float32"`` or
        ``"float64"``).  The physics simulation always runs in float64 —
        identical RNG draws either way — and the images are cast once at
        the end, so a float32 dataset is the float64 one rounded, not a
        different sample.
    """

    intensity: BeamIntensity = BeamIntensity.HIGH
    images_per_class: int = 300
    image_size: int = 32
    train_fraction: float = 0.8
    seed: int = 2023
    n_atoms: int = 220
    q_max: float = 1.1
    orientation_spread: float = 0.3
    dtype: str = "float64"

    def __post_init__(self) -> None:
        if self.images_per_class < 2:
            raise ValueError(f"images_per_class must be >= 2, got {self.images_per_class}")
        if not 0.0 < self.train_fraction < 1.0:
            raise ValueError(f"train_fraction must be in (0, 1), got {self.train_fraction}")
        # normalize the label eagerly so equal configs hash/compare equal
        object.__setattr__(self, "dtype", dtype_label(self.dtype))

    def cache_key(self) -> str:
        """Filename-safe identifier for on-disk caching.

        The dtype suffix appears only for non-default dtypes so cache
        archives written before the dtype policy existed remain valid.
        """
        key = (
            f"xfel_{self.intensity.label}_n{self.images_per_class}"
            f"_s{self.image_size}_a{self.n_atoms}_q{self.q_max}"
            f"_t{self.train_fraction}_o{self.orientation_spread}_seed{self.seed}"
        )
        if self.dtype != "float64":
            key += f"_d{self.dtype}"
        return key


@dataclass
class DiffractionDataset:
    """A generated, split, normalized dataset ready for training.

    Images are NCHW floats with one channel, in the generating config's
    dtype (float64 unless a narrower compute dtype was requested);
    labels are 0 for conformation A, 1 for conformation B.
    """

    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    intensity: BeamIntensity
    image_size: int
    seed: int

    n_classes_: int = 2

    @property
    def n_classes(self) -> int:
        return self.n_classes_

    @property
    def input_shape(self) -> tuple:
        """Per-sample NCHW shape."""
        return (1, self.image_size, self.image_size)

    @property
    def dtype(self) -> np.dtype:
        """Image dtype (train and test splits always agree)."""
        return self.x_train.dtype

    def astype(self, dtype) -> "DiffractionDataset":
        """This dataset with images cast to ``dtype`` (self if already there).

        Labels stay int64; casting float64 -> float32 rounds the images
        but changes nothing about which samples were drawn.
        """
        target = resolve_dtype(dtype)
        if self.x_train.dtype == target and self.x_test.dtype == target:
            return self
        return DiffractionDataset(
            x_train=self.x_train.astype(target),
            y_train=self.y_train,
            x_test=self.x_test.astype(target),
            y_test=self.y_test,
            intensity=self.intensity,
            image_size=self.image_size,
            seed=self.seed,
            n_classes_=self.n_classes_,
        )

    def class_balance(self) -> dict:
        """Per-split class counts, for sanity checks."""
        return {
            "train": np.bincount(self.y_train, minlength=self.n_classes).tolist(),
            "test": np.bincount(self.y_test, minlength=self.n_classes).tolist(),
        }

    def save(self, path: str | Path) -> Path:
        """Persist to a compressed NPZ archive."""
        return atomic_write_npz(
            path,
            {
                "x_train": self.x_train,
                "y_train": self.y_train,
                "x_test": self.x_test,
                "y_test": self.y_test,
                "meta": np.array(
                    [
                        self.intensity.photons_per_um2,
                        self.image_size,
                        self.seed,
                        self.n_classes_,
                    ]
                ),
            },
        )

    @classmethod
    def load(cls, path: str | Path) -> "DiffractionDataset":
        """Load an archive written by :meth:`save`."""
        arrays = read_npz(path)
        meta = arrays["meta"]
        fluence, image_size, seed = meta[0], meta[1], meta[2]
        n_classes = int(meta[3]) if len(meta) > 3 else 2
        return cls(
            x_train=arrays["x_train"],
            y_train=arrays["y_train"].astype(np.int64),
            x_test=arrays["x_test"],
            y_test=arrays["y_test"].astype(np.int64),
            intensity=BeamIntensity(float(fluence)),
            image_size=int(image_size),
            seed=int(seed),
            n_classes_=n_classes,
        )


def generate_dataset(config: DatasetConfig) -> DiffractionDataset:
    """Simulate, noise, normalize, and split a two-conformation dataset."""
    conf_a, conf_b = make_conformations(n_atoms=config.n_atoms, seed=config.seed)
    return generate_dataset_from_proteins((conf_a, conf_b), config)


def generate_dataset_from_proteins(proteins, config: DatasetConfig) -> DiffractionDataset:
    """Simulate a dataset with one class per protein in ``proteins``.

    Generalizes :func:`generate_dataset` to multi-class problems (e.g.
    classifying protein *types*, the wider XPSI use case); class ``i``
    is ``proteins[i]``.  Protein names must be unique — they key the
    per-class orientation and noise streams.
    """
    proteins = tuple(proteins)
    if len(proteins) < 2:
        raise ValueError(f"need at least 2 proteins, got {len(proteins)}")
    names = [p.name for p in proteins]
    if len(set(names)) != len(names):
        raise ValueError(f"protein names must be unique, got {names}")
    detector = Detector(n_pixels=config.image_size, q_max=config.q_max)

    images = []
    labels = []
    for label, protein in enumerate(proteins):
        rot_rng = derive_rng(config.seed, "orientations", protein.name)
        noise_rng = derive_rng(config.seed, "noise", protein.name, config.intensity.label)
        rotations = concentrated_rotations(
            rot_rng, config.images_per_class, config.orientation_spread
        )
        clean = diffraction_batch(protein, rotations, detector)
        noisy = apply_photon_noise(clean, config.intensity, noise_rng)
        images.append(normalize_patterns(noisy))
        labels.append(np.full(config.images_per_class, label, dtype=np.int64))

    x = np.concatenate(images, axis=0)[:, None, :, :]  # NCHW, one channel
    y = np.concatenate(labels, axis=0)

    # stratified split: identical per-class proportions in both splits
    split_rng = derive_rng(config.seed, "split", config.intensity.label)
    train_idx, test_idx = [], []
    for label in range(len(proteins)):
        members = np.flatnonzero(y == label)
        members = split_rng.permutation(members)
        n_train = int(round(len(members) * config.train_fraction))
        train_idx.append(members[:n_train])
        test_idx.append(members[n_train:])
    train_idx = split_rng.permutation(np.concatenate(train_idx))
    test_idx = split_rng.permutation(np.concatenate(test_idx))

    # the physics above always ran in float64; cast once at the end so a
    # float32 dataset is the float64 one rounded, not a different sample
    x = x.astype(resolve_dtype(config.dtype), copy=False)

    return DiffractionDataset(
        x_train=x[train_idx],
        y_train=y[train_idx],
        x_test=x[test_idx],
        y_test=y[test_idx],
        intensity=config.intensity,
        image_size=config.image_size,
        seed=config.seed,
        n_classes_=len(proteins),
    )


def load_or_generate(config: DatasetConfig, cache_dir: str | Path | None = None) -> DiffractionDataset:
    """Generate a dataset, reusing an on-disk cache when available."""
    if cache_dir is None:
        return generate_dataset(config)
    cache_path = Path(cache_dir) / f"{config.cache_key()}.npz"
    if cache_path.exists():
        return DiffractionDataset.load(cache_path)
    dataset = generate_dataset(config)
    dataset.save(cache_path)
    return dataset
