"""Simulated XFEL protein-diffraction data (spsim + Xmipp substitute).

Generates two-class image datasets — two conformations of a synthetic
eEF2-like protein — at the paper's three beam intensities, with photon
noise that scales inversely with beam fluence.  See DESIGN.md §2 for the
substitution rationale.
"""

from repro.xfel.dataset import (
    DatasetConfig,
    DiffractionDataset,
    generate_dataset,
    generate_dataset_from_proteins,
    load_or_generate,
)
from repro.xfel.diffraction import Detector, diffraction_batch, diffraction_pattern
from repro.xfel.gallery import render_intensity_gallery, render_pattern
from repro.xfel.intensity import BeamIntensity
from repro.xfel.noise import apply_photon_noise, normalize_patterns, snr_estimate
from repro.xfel.orientation import (
    concentrated_rotations,
    quaternion_to_matrix,
    random_rotations,
    sample_orientation,
)
from repro.xfel.protein import Protein, make_conformations, make_protein, rotation_matrix

__all__ = [
    "DatasetConfig",
    "DiffractionDataset",
    "generate_dataset",
    "generate_dataset_from_proteins",
    "load_or_generate",
    "Detector",
    "diffraction_pattern",
    "diffraction_batch",
    "BeamIntensity",
    "apply_photon_noise",
    "normalize_patterns",
    "snr_estimate",
    "random_rotations",
    "sample_orientation",
    "concentrated_rotations",
    "quaternion_to_matrix",
    "Protein",
    "make_conformations",
    "make_protein",
    "rotation_matrix",
    "render_pattern",
    "render_intensity_gallery",
]
