"""Zero-copy shared-memory views of a diffraction dataset.

The process worker pool (:mod:`repro.scheduler.procpool`) cannot pickle
the XFEL dataset into every job — a paper-scale split is hundreds of
megabytes, and each of the N workers would hold its own copy.  Instead
the parent publishes each array once into POSIX shared memory
(:class:`SharedArena`) and ships workers only a tiny picklable
:class:`SharedDatasetSpec`; every worker then maps the same physical
pages (:func:`attach_dataset`) and reads them through read-only NumPy
views, so the marginal memory cost per worker is zero.

Lifecycle contract (see DESIGN "Execution backends"):

* the parent owns the blocks — it creates them before spawning workers
  and unlinks them exactly once, in :meth:`SharedArena.close` (wired
  into ``ProcessWorkerPool.close``);
* workers only *attach*; their views are marked non-writable so a buggy
  evaluator cannot corrupt the dataset under its siblings;
* attachers must be descendants of the owning parent: spawned children
  share the parent's resource-tracker process, which keeps exactly one
  registration per segment name, so worker attach/exit cycles neither
  unlink the block nor leak warnings.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.xfel.dataset import DiffractionDataset
from repro.xfel.intensity import BeamIntensity

__all__ = [
    "SharedArraySpec",
    "SharedDatasetSpec",
    "SharedArena",
    "share_dataset",
    "attach_dataset",
]


@dataclass(frozen=True)
class SharedArraySpec:
    """Everything needed to rebuild one array view from shared memory."""

    name: str
    shape: tuple
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape, dtype=np.int64)))


@dataclass(frozen=True)
class SharedDatasetSpec:
    """Picklable handle to a :class:`DiffractionDataset` living in shared memory.

    The array payload stays in the parent's shared blocks; this spec
    carries only names, shapes, dtypes, and the dataset's scalar
    metadata, so sending it to a spawned worker costs a few hundred
    bytes regardless of dataset size.
    """

    x_train: SharedArraySpec
    y_train: SharedArraySpec
    x_test: SharedArraySpec
    y_test: SharedArraySpec
    intensity_label: str
    image_size: int
    seed: int
    n_classes: int


class SharedArena:
    """Owner of a set of shared-memory blocks (parent side).

    Create blocks with :meth:`share`; call :meth:`close` exactly once
    when every worker has exited to release the segments.  ``close`` is
    idempotent and also runs from ``__del__`` as a safety net, but
    relying on the destructor leaks the blocks until interpreter exit —
    the worker pool calls it explicitly.
    """

    def __init__(self) -> None:
        self._blocks: list[shared_memory.SharedMemory] = []

    def __len__(self) -> int:
        return len(self._blocks)

    def share(self, array: np.ndarray) -> SharedArraySpec:
        """Copy ``array`` into a fresh shared block and return its spec."""
        array = np.ascontiguousarray(array)
        block = shared_memory.SharedMemory(create=True, size=max(array.nbytes, 1))
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=block.buf)
        view[...] = array
        self._blocks.append(block)
        return SharedArraySpec(
            name=block.name, shape=tuple(array.shape), dtype=array.dtype.str
        )

    def close(self) -> None:
        """Unmap and unlink every block (idempotent)."""
        blocks, self._blocks = self._blocks, []
        for block in blocks:
            try:
                block.close()
                block.unlink()
            except FileNotFoundError:  # already unlinked elsewhere
                pass

    def __del__(self) -> None:  # pragma: no cover - safety net
        self.close()


def share_dataset(dataset: DiffractionDataset) -> tuple[SharedDatasetSpec, SharedArena]:
    """Publish a dataset into shared memory; returns (spec, owning arena)."""
    arena = SharedArena()
    spec = SharedDatasetSpec(
        x_train=arena.share(dataset.x_train),
        y_train=arena.share(dataset.y_train),
        x_test=arena.share(dataset.x_test),
        y_test=arena.share(dataset.y_test),
        intensity_label=dataset.intensity.label,
        image_size=dataset.image_size,
        seed=dataset.seed,
        n_classes=dataset.n_classes,
    )
    return spec, arena


def _attach_array(spec: SharedArraySpec, handles: list) -> np.ndarray:
    # attaching re-registers the segment with the resource tracker on
    # Python < 3.13; workers spawned by the owning parent inherit the
    # parent's tracker process, whose registry is a per-name set, so the
    # re-register is a harmless no-op there.  (Attaching from an
    # *unrelated* process would hand the segment to that process's own
    # tracker, which unlinks it at exit — the pool never does that.)
    block = shared_memory.SharedMemory(name=spec.name)
    handles.append(block)
    view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=block.buf)
    view.flags.writeable = False
    return view


def attach_dataset(spec: SharedDatasetSpec) -> tuple[DiffractionDataset, list]:
    """Map a shared dataset read-only (worker side).

    Returns the dataset plus the list of live ``SharedMemory`` handles;
    the caller must keep the handles referenced for as long as the
    arrays are in use (the views borrow their buffers).
    """
    handles: list[shared_memory.SharedMemory] = []
    dataset = DiffractionDataset(
        x_train=_attach_array(spec.x_train, handles),
        y_train=_attach_array(spec.y_train, handles),
        x_test=_attach_array(spec.x_test, handles),
        y_test=_attach_array(spec.y_test, handles),
        intensity=BeamIntensity.from_label(spec.intensity_label),
        image_size=spec.image_size,
        seed=spec.seed,
        n_classes_=spec.n_classes,
    )
    return dataset, handles
