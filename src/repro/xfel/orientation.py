"""Beam-orientation sampling (Xmipp substitute).

In an XFEL experiment every shot catches the protein in a random,
unknown orientation; the simulation pipeline (Xmipp in the paper)
samples orientations explicitly.  We sample rotations uniformly from
SO(3) via unit quaternions (Shoemake's method), which avoids the pole
clustering that naive Euler-angle sampling produces.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "random_rotations",
    "quaternion_to_matrix",
    "sample_orientation",
    "concentrated_rotations",
]


def quaternion_to_matrix(q: np.ndarray) -> np.ndarray:
    """Convert unit quaternion(s) ``(..., 4)`` (w, x, y, z) to matrices ``(..., 3, 3)``."""
    q = np.asarray(q, dtype=float)
    if q.shape[-1] != 4:
        raise ValueError(f"quaternions must have last dim 4, got {q.shape}")
    norm = np.linalg.norm(q, axis=-1, keepdims=True)
    if np.any(norm == 0):
        raise ValueError("zero quaternion is not a rotation")
    w, x, y, z = np.moveaxis(q / norm, -1, 0)
    matrix = np.empty(q.shape[:-1] + (3, 3))
    matrix[..., 0, 0] = 1 - 2 * (y * y + z * z)
    matrix[..., 0, 1] = 2 * (x * y - w * z)
    matrix[..., 0, 2] = 2 * (x * z + w * y)
    matrix[..., 1, 0] = 2 * (x * y + w * z)
    matrix[..., 1, 1] = 1 - 2 * (x * x + z * z)
    matrix[..., 1, 2] = 2 * (y * z - w * x)
    matrix[..., 2, 0] = 2 * (x * z - w * y)
    matrix[..., 2, 1] = 2 * (y * z + w * x)
    matrix[..., 2, 2] = 1 - 2 * (x * x + y * y)
    return matrix


def random_rotations(rng: np.random.Generator, count: int) -> np.ndarray:
    """Sample ``count`` rotation matrices uniformly from SO(3).

    Uniform unit quaternions are obtained by normalizing 4-D standard
    normal draws.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    q = rng.normal(size=(count, 4))
    return quaternion_to_matrix(q)


def sample_orientation(rng: np.random.Generator) -> np.ndarray:
    """One uniformly random rotation matrix ``(3, 3)``."""
    return random_rotations(rng, 1)[0]


def concentrated_rotations(
    rng: np.random.Generator, count: int, spread: float
) -> np.ndarray:
    """Sample rotations concentrated near the identity.

    ``spread`` in ``(0, 1]`` scales random axis-angle rotations:
    uniformly random axes with angles drawn from ``spread * U(0, pi)``.
    ``spread = 1.0`` delegates to the uniform SO(3) sampler.

    The paper's full-scale dataset (63k images) covers all of SO(3); at
    the reduced dataset sizes this reproduction trains on, full SO(3)
    coverage would leave the orientation manifold under-sampled and the
    task unlearnable for *any* architecture, breaking the evaluation's
    premise.  Restricting the orientation spread keeps per-image
    orientation variability (every shot still differs) while matching
    the task difficulty to the data budget — see DESIGN.md §2.
    """
    if not 0.0 < spread <= 1.0:
        raise ValueError(f"spread must be in (0, 1], got {spread}")
    if spread == 1.0:
        return random_rotations(rng, count)
    axes = rng.normal(size=(count, 3))
    axes /= np.linalg.norm(axes, axis=1, keepdims=True)
    angles = spread * rng.uniform(0.0, np.pi, size=count)
    half = angles / 2.0
    quats = np.concatenate(
        [np.cos(half)[:, None], np.sin(half)[:, None] * axes], axis=1
    )
    return quaternion_to_matrix(quats)
