"""Far-field diffraction simulation (spsim substitute).

A single XFEL shot records the far-field scattering intensity of one
protein in one orientation.  In the kinematic (single-scattering)
approximation with a flat-Ewald-sphere detector, the complex structure
factor at detector scattering vector ``q = (qx, qy)`` is

.. math::  F(q) = \\sum_j f_j \\exp(i\\, q \\cdot r'_j)

where ``r'`` are the rotated atom positions and ``f_j`` atomic form
factors; the measured intensity is ``|F(q)|^2``.  The computation is one
complex matrix product per image (atoms × pixels), fully vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.xfel.protein import Protein

__all__ = ["Detector", "diffraction_pattern", "diffraction_batch"]


@dataclass(frozen=True)
class Detector:
    """Square detector geometry in reciprocal space.

    Attributes
    ----------
    n_pixels:
        Side length of the square image.
    q_max:
        Maximum scattering-vector magnitude along an axis (rad/unit
        length).  ``q_max * radius_of_gyration ~ 10`` puts several
        speckle fringes on the detector.
    """

    n_pixels: int = 32
    q_max: float = 1.1

    def __post_init__(self) -> None:
        if self.n_pixels < 4:
            raise ValueError(f"n_pixels must be >= 4, got {self.n_pixels}")
        if self.q_max <= 0:
            raise ValueError(f"q_max must be positive, got {self.q_max}")

    def q_grid(self) -> np.ndarray:
        """Scattering vectors for every pixel, shape ``(n_pixels**2, 2)``."""
        axis = np.linspace(-self.q_max, self.q_max, self.n_pixels)
        qx, qy = np.meshgrid(axis, axis, indexing="xy")
        return np.stack([qx.ravel(), qy.ravel()], axis=1)


def diffraction_pattern(
    protein: Protein,
    rotation: np.ndarray,
    detector: Detector,
) -> np.ndarray:
    """Noise-free intensity image ``(n_pixels, n_pixels)`` for one shot."""
    rotation = np.asarray(rotation, dtype=float)
    if rotation.shape != (3, 3):
        raise ValueError(f"rotation must be (3, 3), got {rotation.shape}")
    rotated_xy = (protein.coords @ rotation.T)[:, :2]  # project to detector plane
    q = detector.q_grid()  # (P, 2)
    phase = rotated_xy @ q.T  # (n_atoms, P)
    structure_factor = protein.form_factors @ np.exp(1j * phase)  # (P,)
    intensity = np.abs(structure_factor) ** 2
    return intensity.reshape(detector.n_pixels, detector.n_pixels)


def diffraction_batch(
    protein: Protein,
    rotations: np.ndarray,
    detector: Detector,
) -> np.ndarray:
    """Stack of noise-free intensity images, shape ``(n, n_pixels, n_pixels)``.

    Batched over shots with a single einsum per chunk; chunking bounds
    the ``(shots, atoms, pixels)`` intermediate's memory.
    """
    rotations = np.asarray(rotations, dtype=float)
    if rotations.ndim != 3 or rotations.shape[1:] != (3, 3):
        raise ValueError(f"rotations must be (n, 3, 3), got {rotations.shape}")
    q = detector.q_grid()  # (P, 2)
    n_shots = rotations.shape[0]
    out = np.empty((n_shots, detector.n_pixels, detector.n_pixels))
    # memory per chunk ~ chunk * atoms * pixels * 16 bytes
    chunk = max(1, int(2e7 / max(protein.n_atoms * q.shape[0], 1)))
    for start in range(0, n_shots, chunk):
        rot = rotations[start : start + chunk]
        rotated_xy = np.einsum("nij,aj->nai", rot, protein.coords)[..., :2]
        phase = rotated_xy @ q.T  # (chunk, atoms, P)
        factors = np.einsum("a,nap->np", protein.form_factors + 0j, np.exp(1j * phase))
        out[start : start + chunk] = (np.abs(factors) ** 2).reshape(
            -1, detector.n_pixels, detector.n_pixels
        )
    return out
