"""Terminal rendering of diffraction patterns (the paper's Fig. 5 view).

Matplotlib is unavailable offline, so the gallery renders photon-count
images as density plots using unicode shade blocks — enough to *see*
the speckle structure and the photon starvation at low beam intensity.
"""

from __future__ import annotations

import numpy as np

__all__ = ["render_pattern", "render_intensity_gallery"]

_SHADES = " .:-=+*#%@"


def render_pattern(image: np.ndarray, *, width: int = 48, log_scale: bool = True) -> str:
    """Render one 2-D pattern as shaded text, preserving aspect ratio.

    ``log_scale`` compresses the central speckle's dynamic range, as a
    detector colormap would.
    """
    image = np.asarray(image, dtype=float)
    if image.ndim != 2:
        raise ValueError(f"image must be 2-D, got shape {image.shape}")
    if width < 4:
        raise ValueError(f"width must be >= 4, got {width}")
    data = np.log1p(image) if log_scale else image

    # resample to (rows, width); terminal cells are ~2x taller than wide
    rows = max(2, width // 2)
    row_idx = np.linspace(0, data.shape[0] - 1, rows).astype(int)
    col_idx = np.linspace(0, data.shape[1] - 1, width).astype(int)
    resampled = data[np.ix_(row_idx, col_idx)]

    lo, hi = float(resampled.min()), float(resampled.max())
    span = hi - lo if hi > lo else 1.0
    levels = ((resampled - lo) / span * (len(_SHADES) - 1)).round().astype(int)
    return "\n".join("".join(_SHADES[v] for v in row) for row in levels)


def render_intensity_gallery(
    images: dict, *, width: int = 40, log_scale: bool = True
) -> str:
    """Render labelled patterns stacked vertically (e.g. low/medium/high)."""
    blocks = []
    for label, image in images.items():
        total = float(np.asarray(image).sum())
        blocks.append(f"--- {label} ({total:,.0f} photons) ---")
        blocks.append(render_pattern(image, width=width, log_scale=log_scale))
    return "\n".join(blocks)
