"""Beam intensity levels for the simulated XFEL experiment.

The paper evaluates three beam intensities — low (1e14), medium (1e15)
and high (1e16 photons/µm²/pulse).  Intensity is a proxy for
signal-to-noise: each diffraction pattern is a photon-counting
measurement, so the expected photon budget per image scales with the
beam intensity and the relative Poisson noise scales with its inverse
square root.
"""

from __future__ import annotations

from enum import Enum

__all__ = ["BeamIntensity"]


class BeamIntensity(Enum):
    """The paper's three beam settings, valued in photons/µm²/pulse."""

    LOW = 1e14
    MEDIUM = 1e15
    HIGH = 1e16

    @property
    def photons_per_um2(self) -> float:
        """Beam fluence in photons/µm²/pulse."""
        return float(self.value)

    @property
    def label(self) -> str:
        """Lower-case label used in records and reports."""
        return self.name.lower()

    @property
    def photon_budget(self) -> float:
        """Expected total detected photons per diffraction image.

        The detector geometry and protein cross-section are fixed across
        intensities, so the per-image photon budget is proportional to
        the beam fluence.  The constant maps the paper's fluences onto
        budgets (1e3 / 1e4 / 1e5 photons) that reproduce its three noise
        regimes on our reduced-size detector: low-intensity images are
        visibly photon-starved, high-intensity images nearly noiseless.
        """
        return self.photons_per_um2 / 1e11

    @classmethod
    def from_label(cls, label: str) -> "BeamIntensity":
        """Parse ``"low" | "medium" | "high"`` (case-insensitive)."""
        try:
            return cls[label.upper()]
        except KeyError:
            raise ValueError(
                f"unknown beam intensity {label!r}; expected one of "
                f"{[m.label for m in cls]}"
            ) from None

    def __str__(self) -> str:
        return self.label
