"""Synthetic protein conformations (substitute for PDB 1n0u / 1n0v).

The paper classifies two conformations of the eEF2 elongation factor.
Real atomic coordinates are not available offline, so we synthesize a
protein-like atom cloud with the structural property that matters to the
experiment: *the two classes are the same molecule in two conformations*
— identical composition, with one structural domain rigidly rotated
about a hinge, as happens in real eEF2 domain motion.  Diffraction
patterns of the two conformations therefore differ in a systematic but
subtle way that a classifier must learn, and the difficulty of telling
them apart is controlled by photon noise (beam intensity), exactly as in
the paper's evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import derive_rng

__all__ = ["Protein", "make_protein", "make_conformations", "rotation_matrix"]


@dataclass(frozen=True)
class Protein:
    """A rigid atom model.

    Attributes
    ----------
    name:
        Identifier recorded in dataset metadata (e.g. ``"conf_a"``).
    coords:
        Atom positions, shape ``(n_atoms, 3)``, in ångström-like units
        centred on the origin.
    form_factors:
        Per-atom scattering strength (effective electron counts),
        shape ``(n_atoms,)``.
    """

    name: str
    coords: np.ndarray
    form_factors: np.ndarray

    def __post_init__(self) -> None:
        coords = np.asarray(self.coords, dtype=float)
        factors = np.asarray(self.form_factors, dtype=float)
        if coords.ndim != 2 or coords.shape[1] != 3:
            raise ValueError(f"coords must be (n_atoms, 3), got {coords.shape}")
        if factors.shape != (coords.shape[0],):
            raise ValueError(
                f"form_factors must be (n_atoms,), got {factors.shape} for "
                f"{coords.shape[0]} atoms"
            )
        object.__setattr__(self, "coords", coords)
        object.__setattr__(self, "form_factors", factors)

    @property
    def n_atoms(self) -> int:
        return self.coords.shape[0]

    def centered(self) -> "Protein":
        """Return a copy with the centre of mass at the origin."""
        com = np.average(self.coords, axis=0, weights=self.form_factors)
        return Protein(self.name, self.coords - com, self.form_factors)

    def radius_of_gyration(self) -> float:
        """Mass-weighted RMS distance from the centre of mass."""
        centered = self.centered()
        sq = np.sum(centered.coords**2, axis=1)
        return float(np.sqrt(np.average(sq, weights=self.form_factors)))


def rotation_matrix(axis: np.ndarray, angle: float) -> np.ndarray:
    """Rodrigues rotation matrix about ``axis`` by ``angle`` radians."""
    axis = np.asarray(axis, dtype=float)
    norm = np.linalg.norm(axis)
    if norm == 0:
        raise ValueError("rotation axis must be non-zero")
    x, y, z = axis / norm
    c, s = np.cos(angle), np.sin(angle)
    cross = np.array([[0.0, -z, y], [z, 0.0, -x], [-y, x, 0.0]])
    outer = np.outer([x, y, z], [x, y, z])
    return c * np.eye(3) + s * cross + (1.0 - c) * outer


def _random_globule(rng: np.random.Generator, n_atoms: int, radius: float) -> np.ndarray:
    """Sample a compact, blob-like atom cloud.

    A random walk with a centering pull produces spatially correlated
    positions (secondary-structure-like clustering) rather than an
    uncorrelated Gaussian ball, giving diffraction patterns realistic
    speckle structure.
    """
    coords = np.empty((n_atoms, 3))
    position = np.zeros(3)
    step = radius / np.sqrt(n_atoms)
    for i in range(n_atoms):
        position = 0.97 * position + rng.normal(scale=step * 2.2, size=3)
        coords[i] = position
    # scale to the requested radius of gyration
    coords -= coords.mean(axis=0)
    rg = np.sqrt(np.mean(np.sum(coords**2, axis=1)))
    return coords * (radius / max(rg, 1e-12))


def make_protein(
    name: str,
    *,
    n_atoms: int = 220,
    radius: float = 10.0,
    seed: int = 0,
) -> Protein:
    """Build one synthetic globular protein (for multi-protein datasets).

    Distinct seeds give structurally unrelated molecules, so a dataset
    over several proteins exercises the XPSI use case of classifying
    protein *types* in addition to conformations.
    """
    if n_atoms < 10:
        raise ValueError(f"n_atoms must be >= 10, got {n_atoms}")
    rng = derive_rng(seed, "xfel", "protein", name)
    coords = _random_globule(rng, n_atoms, radius)
    form_factors = rng.choice(
        [6.0, 7.0, 8.0, 16.0], size=n_atoms, p=[0.62, 0.17, 0.18, 0.03]
    )
    return Protein(name, coords, form_factors).centered()


def make_conformations(
    *,
    n_atoms: int = 220,
    radius: float = 10.0,
    hinge_fraction: float = 0.45,
    hinge_angle_deg: float = 60.0,
    seed: int = 1108,
) -> tuple[Protein, Protein]:
    """Build the two synthetic eEF2-like conformations.

    Conformation A is a random globule; conformation B is A with the
    ``hinge_fraction`` of atoms farthest along the first principal axis
    rigidly rotated by ``hinge_angle_deg`` about a hinge through the
    domain boundary — a classic two-domain conformational change.

    Returns ``(conf_a, conf_b)``, both centred.
    """
    if not 0.0 < hinge_fraction < 1.0:
        raise ValueError(f"hinge_fraction must be in (0, 1), got {hinge_fraction}")
    if n_atoms < 10:
        raise ValueError(f"n_atoms must be >= 10, got {n_atoms}")

    rng = derive_rng(seed, "xfel", "protein")
    coords = _random_globule(rng, n_atoms, radius)
    # effective electron counts roughly in the C/N/O/S range
    form_factors = rng.choice([6.0, 7.0, 8.0, 16.0], size=n_atoms, p=[0.62, 0.17, 0.18, 0.03])

    conf_a = Protein("conf_a", coords, form_factors).centered()

    # split along the first principal axis
    centered = conf_a.coords
    _, _, vt = np.linalg.svd(centered - centered.mean(axis=0), full_matrices=False)
    principal = vt[0]
    projection = centered @ principal
    threshold = np.quantile(projection, 1.0 - hinge_fraction)
    moving = projection >= threshold

    hinge_point = centered[moving].mean(axis=0) - principal * 0.5 * radius
    hinge_axis = vt[1]  # rotate about the second principal axis
    rot = rotation_matrix(hinge_axis, np.deg2rad(hinge_angle_deg))

    coords_b = centered.copy()
    coords_b[moving] = (centered[moving] - hinge_point) @ rot.T + hinge_point
    conf_b = Protein("conf_b", coords_b, form_factors).centered()
    return conf_a, conf_b
