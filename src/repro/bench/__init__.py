"""Benchmark harness for the evaluation fast path (``a4nn bench``)."""

from repro.bench.harness import (
    BenchReport,
    bench_evalpath,
    bench_kernels,
    compare_reports,
    run_bench,
)

__all__ = [
    "BenchReport",
    "bench_evalpath",
    "bench_kernels",
    "compare_reports",
    "run_bench",
]
