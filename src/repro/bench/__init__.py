"""Benchmark harness for the evaluation fast path (``a4nn bench``)."""

from repro.bench.harness import (
    BenchReport,
    bench_evalpath,
    bench_kernels,
    bench_predictor,
    compare_reports,
    run_bench,
)
from repro.bench.checkbench import (
    CheckBenchReport,
    compare_checkbench,
    run_checkbench,
)
from repro.bench.scaling import (
    SCALING_GRID,
    SCALING_SCHEMA,
    ScalingReport,
    compare_scaling,
    run_scaling,
)

__all__ = [
    "BenchReport",
    "CheckBenchReport",
    "compare_checkbench",
    "run_checkbench",
    "bench_evalpath",
    "bench_kernels",
    "bench_predictor",
    "compare_reports",
    "run_bench",
    "SCALING_GRID",
    "SCALING_SCHEMA",
    "ScalingReport",
    "compare_scaling",
    "run_scaling",
]
