"""The ``a4nn bench`` harness: kernel microbenches + end-to-end search.

Two tiers, both fully seeded:

* **Kernel microbenches** — forward+backward of the hot layers (conv,
  dense, pool) and one full trainer epoch, per compute dtype, each run
  twice: on the historical allocate-per-call path and on the
  buffer-arena fast path (:mod:`repro.nn.arena`).  Every entry carries
  the approximate FLOPs per call and the achieved GFLOP/s, so the
  document doubles as a roofline-style before/after record.
* **End-to-end evaluation path** — the same seeded real-mode mini
  search run twice: once with the *baseline* settings (float64,
  model-keyed RNG, no cache, no arena — arithmetically identical to
  the pre-fast-path code) and once with the *fast path* (float32,
  genome-keyed RNG, evaluation cache, arena kernels).  The headline
  number is the wall-time ratio.

All timing goes through :class:`~repro.utils.timing.Stopwatch` (the
project's only sanctioned wall-clock seam).  Results serialize to the
``BENCH_evalpath.json`` document committed at the repo root, so
``make bench`` can diff a fresh run against the recorded one and
``make bench-kernels`` can smoke the kernel tier alone.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.engine import EngineConfig
from repro.nas.search import NSGANetConfig
from repro.nn.dtype import SUPPORTED_DTYPES, resolve_dtype
from repro.nn.layers import Conv2D, Dense, MaxPool2D
from repro.nn.optimizers import Adam
from repro.nn.trainer import Trainer
from repro.utils.logging import get_logger
from repro.utils.rng import RngStream
from repro.utils.timing import Stopwatch
from repro.workflow.interfaces import WorkflowConfig
from repro.xfel.dataset import DatasetConfig
from repro.xfel.intensity import BeamIntensity

__all__ = [
    "BenchReport",
    "bench_kernels",
    "bench_evalpath",
    "bench_predictor",
    "compare_reports",
    "run_bench",
]

_LOG = get_logger("bench")

#: Schema tag written into every bench document.
#: v2 added per-kernel alloc-vs-arena timings, FLOP rates, and the
#: ``arena`` flags on the end-to-end runs.  v3 added the ``predictor``
#: section: the same seeded search with surrogate pre-ranking off vs on
#: (epochs trained, skip precision/recall, front equality).
SCHEMA = "a4nn-bench/3"


def _timeit(fn, *, repeats: int, warmup: int = 1) -> dict:
    """Best/mean seconds over ``repeats`` calls (after ``warmup`` calls)."""
    for _ in range(warmup):
        fn()
    clock = Stopwatch()
    for _ in range(repeats):
        with clock:
            fn()
    return {
        "best_seconds": min(clock.laps),
        "mean_seconds": clock.mean_lap,
        "repeats": repeats,
    }


def _bind(layer_or_network, arena_dtype, use_arena: bool):
    if use_arena:
        from repro.nn.arena import BufferArena

        layer_or_network.bind_arena(BufferArena(arena_dtype))
    return layer_or_network


def _conv_bench(dtype, rng: np.random.Generator, repeats: int, use_arena: bool) -> dict:
    layer = Conv2D(8, 16, kernel_size=3, rng=rng, dtype=dtype)
    _bind(layer, dtype, use_arena)
    x = rng.standard_normal((16, 8, 16, 16)).astype(dtype)

    def step() -> None:
        out = layer.forward(x, training=True)
        layer.backward(out)

    timing = _timeit(step, repeats=repeats)
    # fwd+bwd costs ~3x the forward GEMM (one product, two adjoints)
    timing["flops_per_call"] = 3 * x.shape[0] * layer.flops(x.shape[1:])
    return timing


def _dense_bench(dtype, rng: np.random.Generator, repeats: int, use_arena: bool) -> dict:
    layer = Dense(256, 128, rng=rng, dtype=dtype)
    _bind(layer, dtype, use_arena)
    x = rng.standard_normal((64, 256)).astype(dtype)

    def step() -> None:
        out = layer.forward(x, training=True)
        layer.backward(out)

    timing = _timeit(step, repeats=repeats)
    timing["flops_per_call"] = 3 * x.shape[0] * layer.flops(x.shape[1:])
    return timing


def _pool_bench(dtype, rng: np.random.Generator, repeats: int, use_arena: bool) -> dict:
    layer = MaxPool2D(2)
    _bind(layer, dtype, use_arena)
    x = rng.standard_normal((16, 16, 16, 16)).astype(dtype)

    def step() -> None:
        out = layer.forward(x, training=True)
        layer.backward(out)

    timing = _timeit(step, repeats=repeats)
    # comparisons forward + one scatter backward: ~2x the forward count
    timing["flops_per_call"] = 2 * x.shape[0] * layer.flops(x.shape[1:])
    return timing


def _trainer_epoch_bench(
    dtype, rng: np.random.Generator, repeats: int, use_arena: bool
) -> dict:
    from repro.nas.decoder import DecoderConfig, decode_genome
    from repro.nas.genome import random_genome

    genome = random_genome(rng, n_phases=3, nodes_per_phase=2, density=0.5)
    network = decode_genome(
        genome,
        DecoderConfig(input_shape=(1, 16, 16), n_classes=2, dtype=dtype),
        rng=rng,
    )
    _bind(network, dtype, use_arena)
    n = 48
    x = rng.standard_normal((n, 1, 16, 16)).astype(dtype)
    y = (rng.random(n) < 0.5).astype(np.int64)
    trainer = Trainer(
        network,
        x,
        y,
        x[: n // 4],
        y[: n // 4],
        optimizer=Adam(network, 1e-3),
        batch_size=16,
        rng=rng,
    )
    timing = _timeit(trainer.train, repeats=repeats, warmup=1)
    timing["flops_per_call"] = 3 * n * network.flops()
    return timing


_KERNELS = {
    "conv2d_fwd_bwd": _conv_bench,
    "dense_fwd_bwd": _dense_bench,
    "maxpool_fwd_bwd": _pool_bench,
    "trainer_epoch": _trainer_epoch_bench,
}


def bench_kernels(*, seed: int = 0, repeats: int = 5) -> dict:
    """Per-dtype alloc-vs-arena kernel timings, plus dtype ratios.

    For each kernel and dtype the entry records the allocate-per-call
    timing (``alloc``), the buffer-arena timing (``arena``), the best
    time across both paths, the approximate FLOPs per call with the
    achieved GFLOP/s, and the arena-over-alloc speedup.  The
    ``float64_over_float32`` ratios compare best times; above 1 means
    float32 is that many times faster.
    """
    results: dict = {}
    for label in SUPPORTED_DTYPES:
        dtype = resolve_dtype(label)
        stream = RngStream(seed).child("bench-kernels")
        per_kernel: dict = {}
        for name, fn in _KERNELS.items():
            alloc = fn(dtype, stream.generator(name, label, "alloc"), repeats, False)
            arena = fn(dtype, stream.generator(name, label, "arena"), repeats, True)
            flops_per_call = alloc.pop("flops_per_call")
            arena.pop("flops_per_call")
            best = min(alloc["best_seconds"], arena["best_seconds"])
            per_kernel[name] = {
                "alloc": alloc,
                "arena": arena,
                "best_seconds": best,
                "flops_per_call": flops_per_call,
                "gflops": flops_per_call / max(best, 1e-12) / 1e9,
                "arena_speedup": alloc["best_seconds"]
                / max(arena["best_seconds"], 1e-12),
            }
        results[label] = per_kernel
    results["float64_over_float32"] = {
        name: results["float64"][name]["best_seconds"]
        / max(results["float32"][name]["best_seconds"], 1e-12)
        for name in _KERNELS
    }
    return results


def _bench_workflow_config(seed: int) -> WorkflowConfig:
    """The seeded real-mode mini search both end-to-end runs share."""
    return WorkflowConfig(
        nas=NSGANetConfig(
            population_size=6,
            offspring_per_generation=6,
            generations=4,
            max_epochs=6,
            nodes_per_phase=2,
        ),
        engine=EngineConfig(e_pred=6),
        dataset=DatasetConfig(
            intensity=BeamIntensity.MEDIUM, images_per_class=20, image_size=16
        ),
        mode="real",
        seed=seed,
        n_gpus=(1,),
    )


def _run_evalpath(config: WorkflowConfig) -> dict:
    from repro.workflow.orchestrator import A4NNOrchestrator

    orchestrator = A4NNOrchestrator(config)
    clock = Stopwatch()
    with clock:
        result = orchestrator.run()
    cache_stats = (
        orchestrator.memoizer.cache.stats() if orchestrator.memoizer else None
    )
    return {
        "dtype": config.dtype,
        "rng_keying": config.rng_keying,
        "eval_cache": config.eval_cache,
        "arena": config.arena,
        "wall_seconds": clock.total,
        "n_models": len(result.search.archive),
        "cache_hits": sum(g.n_cache_hits for g in result.search.generations),
        "cache_stats": cache_stats,
        "epochs_trained": result.total_epochs_trained,
        "best_fitness": result.search.population.best_fitness(),
        "pareto": [
            {"model_id": m.model_id, "fitness": m.fitness, "flops": m.flops}
            for m in result.search.pareto_individuals()
        ],
    }


def bench_evalpath(*, seed: int = 21) -> dict:
    """Baseline (pre-fast-path semantics) vs fast-path end-to-end timing."""
    import dataclasses

    config = _bench_workflow_config(seed)
    # arena=False explicitly: replace() would otherwise carry the fast
    # path's resolved arena=True into the float64 baseline
    baseline = _run_evalpath(
        dataclasses.replace(
            config, dtype="float64", rng_keying="model", eval_cache=False, arena=False
        )
    )
    _LOG.info("baseline evalpath: %.2fs", baseline["wall_seconds"])
    fastpath = _run_evalpath(config)
    _LOG.info("fastpath evalpath: %.2fs", fastpath["wall_seconds"])
    return {
        "seed": seed,
        "baseline": baseline,
        "fastpath": fastpath,
        "speedup": baseline["wall_seconds"]
        / max(fastpath["wall_seconds"], 1e-12),
    }


def _predictor_workflow_config(seed: int) -> WorkflowConfig:
    """The seeded surrogate-mode search both predictor-bench runs share."""
    return WorkflowConfig(
        nas=NSGANetConfig(
            population_size=8,
            offspring_per_generation=8,
            generations=10,
            max_epochs=16,
            nodes_per_phase=2,
        ),
        engine=EngineConfig(e_pred=16),
        mode="surrogate",
        seed=seed,
        n_gpus=(1,),
    )


def _run_predictor_case(config: WorkflowConfig) -> dict:
    from repro.analysis.queries import skip_report
    from repro.workflow.orchestrator import A4NNOrchestrator

    orchestrator = A4NNOrchestrator(config)
    clock = Stopwatch()
    with clock:
        result = orchestrator.run()
    skips = skip_report(result.tracker.all_records())
    return {
        "surrogate": config.surrogate.to_dict() if config.surrogate else None,
        "wall_seconds": clock.total,
        "n_models": len(result.search.archive),
        "epochs_trained": result.total_epochs_trained,
        "epochs_saved_engine": result.search.total_epochs_saved,
        "epochs_skipped": result.total_epochs_skipped,
        "epoch_budget": result.search.epoch_budget,
        "best_fitness": result.search.population.best_fitness(),
        "pareto": [
            {"model_id": m.model_id, "fitness": m.fitness, "flops": m.flops}
            for m in result.search.pareto_individuals()
        ],
        "skip": {
            "n_scored": skips.n_scored,
            "n_flagged": skips.n_flagged,
            "n_probed": skips.n_probed,
            "n_true_losers": skips.n_true_losers,
            "precision": skips.precision,
            "recall": skips.recall,
            "mae": skips.mae,
        },
    }


def bench_predictor(*, seed: int = 21) -> dict:
    """The same seeded search with surrogate pre-ranking off vs on.

    What must hold (and is recorded so CI can assert it): the surrogate
    run reaches the *same best fitness and Pareto front* as the off
    baseline — the dominance-aware skip rule only ever takes budget from
    candidates whose optimistic estimate is already dominated — while
    training meaningfully fewer epochs.
    """
    import dataclasses

    from repro.nas.surrogate import SurrogateConfig

    config = _predictor_workflow_config(seed)
    off = _run_predictor_case(config)
    _LOG.info("predictor off: %d epochs", off["epochs_trained"])
    on = _run_predictor_case(
        dataclasses.replace(
            config, surrogate=SurrogateConfig(band=1.0, explore_every=8)
        )
    )
    _LOG.info("predictor on : %d epochs", on["epochs_trained"])

    def front(case: dict) -> list:
        # the front as a set of objective points: several archive members
        # can share one (fitness, flops) point (duplicate genomes), and
        # how many copies survive is not part of the front itself
        return sorted({(round(p["fitness"], 10), p["flops"]) for p in case["pareto"]})
    return {
        "seed": seed,
        "off": off,
        "on": on,
        "epochs_reduction": 1.0
        - on["epochs_trained"] / max(off["epochs_trained"], 1),
        "same_best_fitness": off["best_fitness"] == on["best_fitness"],
        "same_pareto_front": front(off) == front(on),
        "wall_delta_seconds": off["wall_seconds"] - on["wall_seconds"],
    }


@dataclass
class BenchReport:
    """One complete bench document (kernels + end-to-end)."""

    kernels: dict = field(default_factory=dict)
    evalpath: dict = field(default_factory=dict)
    predictor: dict = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        return float(self.evalpath.get("speedup", 0.0))

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "kernels": self.kernels,
            "evalpath": self.evalpath,
            "predictor": self.predictor,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "BenchReport":
        return cls(
            kernels=payload.get("kernels", {}),
            evalpath=payload.get("evalpath", {}),
            predictor=payload.get("predictor", {}),
        )

    @classmethod
    def load(cls, path: str | Path) -> "BenchReport":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path

    def summary(self) -> str:
        lines = ["a4nn bench — evaluation fast path"]
        for label in ("float32", "float64"):
            for name, entry in sorted(self.kernels.get(label, {}).items()):
                if not isinstance(entry, dict) or "arena_speedup" not in entry:
                    continue
                lines.append(
                    f"  kernel {name:<18} {label}: best {entry['best_seconds']*1e3:7.3f}ms"
                    f"  {entry['gflops']:6.2f} GFLOP/s"
                    f"  arena {entry['arena_speedup']:.2f}x"
                )
        ratios = self.kernels.get("float64_over_float32", {})
        for name, ratio in sorted(ratios.items()):
            lines.append(f"  kernel {name:<18} float32 is {ratio:5.2f}x faster")
        base = self.evalpath.get("baseline", {})
        fast = self.evalpath.get("fastpath", {})
        if base and fast:
            lines.append(
                f"  e2e baseline (float64, no cache): {base['wall_seconds']:.2f}s "
                f"over {base['n_models']} models"
            )
            lines.append(
                f"  e2e fastpath (float32, cache)   : {fast['wall_seconds']:.2f}s "
                f"({fast['cache_hits']} cache hits)"
            )
            lines.append(f"  end-to-end speedup              : {self.speedup:.2f}x")
        if self.predictor:
            off, on = self.predictor.get("off", {}), self.predictor.get("on", {})
            skip = on.get("skip", {})
            lines.append(
                f"  predictor off: {off.get('epochs_trained')} epochs; "
                f"on: {on.get('epochs_trained')} epochs "
                f"({100 * self.predictor.get('epochs_reduction', 0.0):.1f}% fewer, "
                f"{on.get('epochs_skipped')} skipped)"
            )
            precision, recall = skip.get("precision"), skip.get("recall")
            lines.append(
                "  predictor skips: "
                f"{skip.get('n_flagged')}/{skip.get('n_scored')} flagged, "
                f"precision {precision if precision is None else f'{precision:.2f}'}, "
                f"recall {recall if recall is None else f'{recall:.2f}'}"
            )
            lines.append(
                f"  predictor front: best fitness "
                f"{'identical' if self.predictor.get('same_best_fitness') else 'DIFFERS'}, "
                f"pareto front "
                f"{'identical' if self.predictor.get('same_pareto_front') else 'DIFFERS'}"
            )
        return "\n".join(lines)


def run_bench(
    *,
    seed: int = 21,
    repeats: int = 5,
    skip_kernels: bool = False,
    kernels_only: bool = False,
) -> BenchReport:
    """Execute the harness and return the report.

    ``kernels_only`` skips the (slow) end-to-end searches — the CI smoke
    job and ``make bench-kernels`` use it.
    """
    kernels = {} if skip_kernels else bench_kernels(seed=seed, repeats=repeats)
    evalpath = {} if kernels_only else bench_evalpath(seed=seed)
    # the predictor section runs in surrogate mode (seconds, not minutes),
    # so even the kernels-only CI smoke covers its schema
    predictor = bench_predictor(seed=seed)
    return BenchReport(kernels=kernels, evalpath=evalpath, predictor=predictor)


def compare_reports(fresh: BenchReport, committed: BenchReport) -> str:
    """Diff a fresh bench run against the committed document.

    Wall times vary across machines; what must agree are the *shape* of
    the result (same models, same cache-hit count — the search is fully
    seeded) and the direction of the speedup.
    """
    lines = ["bench diff (fresh vs committed):"]
    f_fast, c_fast = fresh.evalpath.get("fastpath", {}), committed.evalpath.get(
        "fastpath", {}
    )
    for key in ("n_models", "cache_hits", "best_fitness"):
        a, b = f_fast.get(key), c_fast.get(key)
        marker = "OK " if a == b else "DIFF"
        lines.append(f"  [{marker}] fastpath.{key}: fresh {a!r} vs committed {b!r}")
    lines.append(
        f"  [----] speedup: fresh {fresh.speedup:.2f}x vs committed "
        f"{committed.speedup:.2f}x (wall time is machine-dependent)"
    )
    f_pred, c_pred = fresh.predictor, committed.predictor
    if f_pred and c_pred:
        for key in ("same_best_fitness", "same_pareto_front"):
            a, b = f_pred.get(key), c_pred.get(key)
            marker = "OK " if a == b else "DIFF"
            lines.append(f"  [{marker}] predictor.{key}: fresh {a!r} vs committed {b!r}")
        for key in ("epochs_trained", "epochs_skipped"):
            a = f_pred.get("on", {}).get(key)
            b = c_pred.get("on", {}).get(key)
            marker = "OK " if a == b else "DIFF"
            lines.append(
                f"  [{marker}] predictor.on.{key}: fresh {a!r} vs committed {b!r}"
            )
    for label in ("float32", "float64"):
        f_k, c_k = fresh.kernels.get(label, {}), committed.kernels.get(label, {})
        for name in sorted(set(f_k) & set(c_k)):
            f_e, c_e = f_k[name], c_k[name]
            if not (isinstance(f_e, dict) and isinstance(c_e, dict)):
                continue
            a, b = f_e.get("best_seconds"), c_e.get("best_seconds")
            if a is None or b is None:
                continue
            lines.append(
                f"  [----] kernel {label}.{name}: fresh {a*1e3:.3f}ms vs "
                f"committed {b*1e3:.3f}ms"
            )
    return "\n".join(lines)
