"""Benchmark the static-analysis engine (``a4nn bench --check``).

Measures the thing the incremental cache exists for: the cold
(parse-everything) vs warm (all content hashes unchanged) wall time of
a full ``a4nn check`` over the ``repro`` package.  Each cold repeat
starts from an empty cache directory; each warm repeat reuses the
populated one.  The headline number is the warm/cold ratio — the cost
of a no-change re-check, which the ROADMAP's watch-mode item will pay
on every save.

Results serialize to ``BENCH_check.json`` at the repo root so CI and
``make bench-check`` can compare a fresh run against the committed
machine's numbers (informational: absolute times are machine-bound,
but the *ratio* should hold anywhere).
"""

from __future__ import annotations

import json
import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.tooling import all_rules
from repro.tooling.linter import resolve_jobs, run_check
from repro.utils.logging import get_logger
from repro.utils.timing import Stopwatch

__all__ = ["CheckBenchReport", "run_checkbench", "compare_checkbench"]

_LOG = get_logger("bench.check")

#: Schema tag written into every check-bench document.
CHECK_SCHEMA = "a4nn-checkbench/2"


@dataclass
class CheckBenchReport:
    """Cold-vs-warm (and parallel-cold) analysis timings for one tree."""

    n_files: int
    n_rules: int
    cold: dict  #: {"best_seconds", "mean_seconds", "repeats"}
    warm: dict
    warm_cache_hits: int
    jobs: dict | None = None  #: cold timings with ``--jobs N`` (+"n_jobs")

    @property
    def cold_seconds(self) -> float:
        return float(self.cold["best_seconds"])

    @property
    def warm_seconds(self) -> float:
        return float(self.warm["best_seconds"])

    @property
    def speedup(self) -> float:
        return self.cold_seconds / max(self.warm_seconds, 1e-12)

    @property
    def jobs_seconds(self) -> float | None:
        return float(self.jobs["best_seconds"]) if self.jobs else None

    @property
    def jobs_speedup(self) -> float | None:
        """Serial-cold / parallel-cold ratio (>1 means ``--jobs`` helped)."""
        if not self.jobs:
            return None
        return self.cold_seconds / max(self.jobs_seconds, 1e-12)

    def to_dict(self) -> dict:
        payload = {
            "schema": CHECK_SCHEMA,
            "n_files": self.n_files,
            "n_rules": self.n_rules,
            "cold": self.cold,
            "warm": self.warm,
            "warm_cache_hits": self.warm_cache_hits,
            "speedup": round(self.speedup, 2),
        }
        if self.jobs:
            payload["jobs"] = self.jobs
            payload["jobs_speedup"] = round(self.jobs_speedup, 2)
        return payload

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path

    @classmethod
    def load(cls, path: str | Path) -> "CheckBenchReport":
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        if payload.get("schema") != CHECK_SCHEMA:
            raise ValueError(f"{path} is not an {CHECK_SCHEMA} document")
        return cls(
            n_files=payload["n_files"],
            n_rules=payload["n_rules"],
            cold=payload["cold"],
            warm=payload["warm"],
            warm_cache_hits=payload["warm_cache_hits"],
            jobs=payload.get("jobs"),
        )

    def summary(self) -> str:
        lines = [
            f"a4nn check bench: {self.n_files} file(s), {self.n_rules} rule(s)",
            f"  cold (empty cache) : {self.cold_seconds * 1e3:8.1f} ms best "
            f"({self.cold['mean_seconds'] * 1e3:.1f} ms mean, "
            f"{self.cold['repeats']} repeats)",
            f"  warm (all cached)  : {self.warm_seconds * 1e3:8.1f} ms best "
            f"({self.warm['mean_seconds'] * 1e3:.1f} ms mean, "
            f"{self.warm_cache_hits} cache hits)",
            f"  warm speedup       : {self.speedup:8.2f}x",
        ]
        if self.jobs:
            lines.append(
                f"  cold --jobs {self.jobs['n_jobs']:<6} : "
                f"{self.jobs_seconds * 1e3:8.1f} ms best "
                f"({self.jobs['mean_seconds'] * 1e3:.1f} ms mean, "
                f"{self.jobs_speedup:.2f}x vs serial cold)"
            )
        return "\n".join(lines)


def run_checkbench(
    paths: list | None = None, *, repeats: int = 3, jobs: int | None = 0
) -> CheckBenchReport:
    """Time cold, warm, and parallel-cold ``a4nn check`` runs over ``paths``.

    Defaults to the installed ``repro`` package — the same tree
    ``make check`` gates — so the committed numbers describe the real
    workload.  ``jobs`` times the cold pass again through ``--jobs``
    (default ``0`` = one worker per CPU; ``None`` skips the pass).
    """
    if paths is None:
        import repro

        paths = [Path(repro.__file__).parent]
    clock_cold = Stopwatch()
    clock_warm = Stopwatch()
    clock_jobs = Stopwatch()
    n_jobs = resolve_jobs(jobs)
    n_files = 0
    warm_hits = 0
    tmp = Path(tempfile.mkdtemp(prefix="a4nn-checkbench-"))
    try:
        cache_dir = tmp / "cache"
        for i in range(repeats):
            shutil.rmtree(cache_dir, ignore_errors=True)
            with clock_cold:
                result = run_check(paths, cache_dir=cache_dir)
            n_files = result.n_files
            _LOG.debug("cold repeat %d: %d files", i, result.n_files)
        if n_jobs is not None:
            for i in range(repeats):
                shutil.rmtree(cache_dir, ignore_errors=True)
                with clock_jobs:
                    result = run_check(paths, cache_dir=cache_dir, jobs=n_jobs)
                _LOG.debug("jobs repeat %d: %d files", i, result.n_files)
        # cache_dir is now fully populated from the last cold run
        for i in range(repeats):
            with clock_warm:
                result = run_check(paths, cache_dir=cache_dir)
            warm_hits = result.n_cache_hits
            _LOG.debug("warm repeat %d: %d hits", i, result.n_cache_hits)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return CheckBenchReport(
        n_files=n_files,
        n_rules=len(all_rules()),
        cold={
            "best_seconds": min(clock_cold.laps),
            "mean_seconds": clock_cold.mean_lap,
            "repeats": repeats,
        },
        warm={
            "best_seconds": min(clock_warm.laps),
            "mean_seconds": clock_warm.mean_lap,
            "repeats": repeats,
        },
        warm_cache_hits=warm_hits,
        jobs=None
        if n_jobs is None
        else {
            "n_jobs": n_jobs,
            "best_seconds": min(clock_jobs.laps),
            "mean_seconds": clock_jobs.mean_lap,
            "repeats": repeats,
        },
    )


def compare_checkbench(fresh: CheckBenchReport, committed: CheckBenchReport) -> str:
    """Human diff of a fresh run against the committed document.

    Absolute times are machine-bound, so the comparison is
    informational; only a warm run *slower* than cold marks a DIFF.
    """
    lines = [
        "vs committed BENCH_check.json:",
        f"  cold: {fresh.cold_seconds * 1e3:8.1f} ms (committed "
        f"{committed.cold_seconds * 1e3:.1f} ms)",
        f"  warm: {fresh.warm_seconds * 1e3:8.1f} ms (committed "
        f"{committed.warm_seconds * 1e3:.1f} ms)",
        f"  speedup: {fresh.speedup:.2f}x (committed {committed.speedup:.2f}x)",
    ]
    if fresh.jobs and committed.jobs:
        lines.append(
            f"  cold --jobs: {fresh.jobs_seconds * 1e3:8.1f} ms at "
            f"{fresh.jobs['n_jobs']} worker(s) (committed "
            f"{committed.jobs_seconds * 1e3:.1f} ms at "
            f"{committed.jobs['n_jobs']})"
        )
    if fresh.warm_seconds >= fresh.cold_seconds:
        lines.append("  DIFF: warm-cache run is not faster than cold")
    return "\n".join(lines)
