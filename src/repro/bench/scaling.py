"""Backend scaling sweep for ``a4nn bench --scaling``.

Runs the same fully-seeded real-mode mini search on every execution
backend × worker-count combination (serial, thread × {1,2,4},
process × {1,2,4}), plus steady-state evolution points sharing one
pinned breeding lag, and reports, per entry:

* the end-to-end wall time (machine-dependent — recorded for context,
  never compared);
* the structural outcome (models evaluated, best fitness, epochs
  trained), which must be **identical across every entry** — the sweep
  doubles as a determinism check for the process backend;
* the measured :class:`~repro.scheduler.pool.PoolReport` per
  generation: per-worker busy seconds, utilization, and the
  generation-boundary *barrier downtime* each worker spends waiting for
  the stragglers — the sweep population (5) is deliberately not
  divisible by 2 or 4, so the barrier cost is visible at every
  multi-worker point.  Each entry also splits the idle tail into
  ``mid_run_barrier_downtime_seconds`` (stalls at interior generation
  boundaries — structurally zero for steady entries, which run one
  continuous stream) and ``final_drain_seconds`` (the unavoidable
  end-of-run drain).

The committed ``BENCH_scaling.json`` records one run of this sweep;
``make bench-scale`` re-runs it and diffs the structural fields.  A note
on reading the wall times: thread workers only overlap NumPy's
GIL-releasing kernels and process workers need real cores, so on a
single-core host *every* multi-worker configuration is expected to be
no faster (process workers additionally pay a spawn + import cost).
The sweep measures the machinery honestly rather than proving a
speedup the hardware cannot deliver; ``host_cpus`` is recorded so
readers can judge the numbers.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.engine import EngineConfig
from repro.nas.search import NSGANetConfig
from repro.utils.logging import get_logger
from repro.utils.timing import Stopwatch
from repro.workflow.interfaces import WorkflowConfig
from repro.xfel.dataset import DatasetConfig
from repro.xfel.intensity import BeamIntensity

__all__ = [
    "SCALING_SCHEMA",
    "SCALING_GRID",
    "STEADY_LAG",
    "ScalingReport",
    "run_scaling",
    "compare_scaling",
]

_LOG = get_logger("bench.scaling")

#: Schema tag written into every scaling document.
SCALING_SCHEMA = "a4nn-bench-scaling/2"

#: Breeding lag the steady-state sweep entries pin.  Fixed (rather than
#: defaulted to ``n_workers``) so every steady entry runs the *same*
#: logical clock and the sweep's cross-backend determinism check holds.
STEADY_LAG = 4

#: (backend, n_workers, evolution) points the sweep measures, in order.
SCALING_GRID = (
    ("serial", 1, "barrier"),
    ("thread", 1, "barrier"),
    ("thread", 2, "barrier"),
    ("thread", 4, "barrier"),
    ("process", 1, "barrier"),
    ("process", 2, "barrier"),
    ("process", 4, "barrier"),
    ("serial", 1, "steady"),
    ("thread", 2, "steady"),
    ("thread", 4, "steady"),
    ("process", 4, "steady"),
)


def _scaling_config(
    seed: int, backend: str, n_workers: int, evolution: str = "barrier"
) -> WorkflowConfig:
    """The seeded real-mode mini search every sweep entry runs.

    Population 5 is deliberately coprime to the 2- and 4-worker points
    so the generation barrier leaves visible per-worker downtime.  The
    cache is off so every entry evaluates the same number of models.
    Steady entries pin ``steady_lag`` to :data:`STEADY_LAG` so they all
    share one logical clock regardless of worker count.
    """
    return WorkflowConfig(
        nas=NSGANetConfig(
            population_size=5,
            offspring_per_generation=5,
            generations=2,
            max_epochs=4,
            nodes_per_phase=2,
            evolution=evolution,
            steady_lag=STEADY_LAG if evolution == "steady" else None,
        ),
        engine=EngineConfig(e_pred=4),
        dataset=DatasetConfig(
            intensity=BeamIntensity.MEDIUM, images_per_class=16, image_size=16
        ),
        mode="real",
        seed=seed,
        n_gpus=(1,),
        backend=backend,
        n_workers=n_workers,
        eval_cache=False,
    )


def _run_entry(
    seed: int, backend: str, n_workers: int, evolution: str = "barrier"
) -> dict:
    from repro.workflow.orchestrator import A4NNOrchestrator

    orchestrator = A4NNOrchestrator(
        _scaling_config(seed, backend, n_workers, evolution)
    )
    clock = Stopwatch()
    with clock:
        result = orchestrator.run()
    reports = orchestrator.pool_reports
    entry = {
        "backend": backend,
        "n_workers": n_workers,
        "evolution": evolution,
        "wall_seconds": clock.total,
        "n_models": len(result.search.archive),
        "best_fitness": result.search.population.best_fitness(),
        "epochs_trained": result.total_epochs_trained,
        "generations": [report.to_dict() for report in reports],
    }
    if reports:
        entry["busy_seconds"] = sum(r.busy_seconds for r in reports)
        entry["idle_seconds"] = sum(r.idle_seconds for r in reports)
        entry["barrier_downtime_seconds"] = [
            r.barrier_downtime() for r in reports
        ]
        # A barrier run stalls at every generation boundary; a steady run
        # has exactly one report whose only idle tail is the final drain.
        # Splitting the two makes the tentpole claim measurable: steady
        # mid-run barrier downtime is structurally zero.
        entry["mid_run_barrier_downtime_seconds"] = sum(
            sum(r.barrier_downtime()) for r in reports[:-1]
        )
        entry["final_drain_seconds"] = sum(reports[-1].barrier_downtime())
    else:
        # thread backend at n_workers=1 runs the legacy inline loop with
        # no pool behind it, so there is nothing to report per worker
        entry["note"] = "inline serial loop (no pool report)"
    return entry


@dataclass
class ScalingReport:
    """One complete backend-scaling document."""

    seed: int = 0
    host_cpus: int = 0
    entries: list = field(default_factory=list)

    def consistent(self) -> bool:
        """Whether every entry produced the identical search outcome.

        Compared *per evolution mode*: barrier and steady visit
        different candidate sequences by design, but within one mode
        every backend × worker-count point must agree bit-exactly.
        """
        by_mode: dict[str, set] = {}
        for e in self.entries:
            by_mode.setdefault(e.get("evolution", "barrier"), set()).add(
                (e["n_models"], e["best_fitness"], e["epochs_trained"])
            )
        return all(len(outcomes) <= 1 for outcomes in by_mode.values())

    def to_dict(self) -> dict:
        return {
            "schema": SCALING_SCHEMA,
            "seed": self.seed,
            "host_cpus": self.host_cpus,
            "consistent": self.consistent(),
            "entries": self.entries,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ScalingReport":
        return cls(
            seed=payload.get("seed", 0),
            host_cpus=payload.get("host_cpus", 0),
            entries=list(payload.get("entries", [])),
        )

    @classmethod
    def load(cls, path: str | Path) -> "ScalingReport":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path

    def summary(self) -> str:
        lines = [
            f"a4nn bench — backend scaling (seed {self.seed}, "
            f"{self.host_cpus} cpu core(s))"
        ]
        for e in self.entries:
            label = f"{e['backend']}@{e['n_workers']}"
            if e.get("evolution", "barrier") == "steady":
                label += "/steady"
            line = (
                f"  {label:<17} wall {e['wall_seconds']:6.2f}s  "
                f"models {e['n_models']}  best {e['best_fitness']:.2f}%"
            )
            if "busy_seconds" in e:
                downtime = sum(
                    sum(gen) for gen in e.get("barrier_downtime_seconds", [])
                )
                line += (
                    f"  busy {e['busy_seconds']:6.2f}s  "
                    f"barrier-idle {downtime:5.2f}s"
                )
                if "mid_run_barrier_downtime_seconds" in e:
                    line += (
                        f"  (mid-run {e['mid_run_barrier_downtime_seconds']:5.2f}s"
                        f" + drain {e['final_drain_seconds']:5.2f}s)"
                    )
            lines.append(line)
        lines.append(
            "  outcome identical across backends (per evolution mode): "
            + ("yes" if self.consistent() else "NO — DETERMINISM BROKEN")
        )
        if self.host_cpus <= 1:
            lines.append(
                "  note: single-core host — multi-worker wall times cannot "
                "beat serial here; compare busy/idle structure, not speed"
            )
        return "\n".join(lines)


def run_scaling(*, seed: int = 21) -> ScalingReport:
    """Execute the full backend × n_workers sweep and return the report."""
    entries = []
    for backend, n_workers, evolution in SCALING_GRID:
        _LOG.info(
            "scaling sweep: backend=%s n_workers=%d evolution=%s",
            backend,
            n_workers,
            evolution,
        )
        entries.append(_run_entry(seed, backend, n_workers, evolution))
    return ScalingReport(
        seed=seed, host_cpus=os.cpu_count() or 1, entries=entries
    )


def compare_scaling(fresh: ScalingReport, committed: ScalingReport) -> str:
    """Diff a fresh sweep against the committed document.

    Wall times and busy/idle splits are machine-dependent; what must
    agree are the grid itself and the structural outcome of each entry
    (the search is fully seeded), plus the cross-backend consistency
    flag.
    """
    lines = ["scaling diff (fresh vs committed):"]

    def by_point(report: ScalingReport) -> dict:
        return {
            (e["backend"], e["n_workers"], e.get("evolution", "barrier")): e
            for e in report.entries
        }

    fresh_by, comm_by = by_point(fresh), by_point(committed)
    for key in sorted(set(fresh_by) | set(comm_by)):
        a, b = fresh_by.get(key), comm_by.get(key)
        label = f"{key[0]}@{key[1]}"
        if key[2] != "barrier":
            label += f"/{key[2]}"
        if a is None or b is None:
            lines.append(f"  [DIFF] {label}: present only in one document")
            continue
        for metric in ("n_models", "best_fitness", "epochs_trained"):
            marker = "OK " if a[metric] == b[metric] else "DIFF"
            lines.append(
                f"  [{marker}] {label}.{metric}: fresh {a[metric]!r} "
                f"vs committed {b[metric]!r}"
            )
    marker = "OK " if fresh.consistent() and committed.consistent() else "DIFF"
    lines.append(
        f"  [{marker}] consistent: fresh {fresh.consistent()} "
        f"vs committed {committed.consistent()}"
    )
    lines.append(
        "  [----] wall/busy seconds are machine-dependent and not compared"
    )
    return "\n".join(lines)
