"""Engine-behaviour measurement for surrogate-regime calibration.

The surrogate curve regimes in :mod:`repro.nas.surrogate` are calibrated
so the Table-1 engine reproduces the paper's Fig. 8 convergence
behaviour per beam intensity.  This module makes that calibration a
first-class, testable operation: given any curve source, it measures the
engine's convergence statistics (percent terminated, mean/percentile
termination epochs, prediction error), so regimes can be validated in
tests and re-tuned when engine parameters change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.engine import PredictionEngine
from repro.core.plugin import run_training_loop

__all__ = ["EngineBehaviour", "measure_engine_behaviour", "regime_behaviour"]


class _Replay:
    """Minimal TrainableModel over a fixed curve (no surrogate import)."""

    def __init__(self, curve: np.ndarray) -> None:
        self.curve = curve
        self.epoch = 0

    def train(self) -> None:
        self.epoch += 1

    def validate(self) -> float:
        return float(self.curve[self.epoch - 1])


@dataclass(frozen=True)
class EngineBehaviour:
    """Convergence statistics of an engine over a curve bank.

    Attributes
    ----------
    n_curves:
        Bank size.
    percent_terminated:
        Share of curves the engine stopped early, in percent.
    mean_termination_epoch / median_termination_epoch:
        Statistics of ``e_t`` over terminated curves (NaN when none).
    mean_epochs_saved:
        Average epochs saved per curve (terminated or not).
    mean_abs_error:
        Mean |prediction − true final value| over terminated curves.
    """

    n_curves: int
    percent_terminated: float
    mean_termination_epoch: float
    median_termination_epoch: float
    mean_epochs_saved: float
    mean_abs_error: float


def measure_engine_behaviour(
    engine: PredictionEngine,
    curves: Sequence[np.ndarray],
    *,
    max_epochs: int | None = None,
) -> EngineBehaviour:
    """Run Algorithm 1 over every curve and aggregate the outcomes."""
    curves = list(curves)
    if not curves:
        raise ValueError("need at least one curve")
    budget = max_epochs if max_epochs is not None else len(curves[0])

    terminations: list[int] = []
    errors: list[float] = []
    saved: list[int] = []
    for curve in curves:
        curve = np.asarray(curve, dtype=float)
        if len(curve) < budget:
            raise ValueError(
                f"curve of length {len(curve)} shorter than budget {budget}"
            )
        result = run_training_loop(_Replay(curve), engine, budget)
        saved.append(budget - result.epochs_trained)
        if result.terminated_early:
            terminations.append(result.epochs_trained)
            errors.append(abs(result.fitness - float(curve[budget - 1])))

    return EngineBehaviour(
        n_curves=len(curves),
        percent_terminated=100.0 * len(terminations) / len(curves),
        mean_termination_epoch=float(np.mean(terminations)) if terminations else float("nan"),
        median_termination_epoch=float(np.median(terminations)) if terminations else float("nan"),
        mean_epochs_saved=float(np.mean(saved)),
        mean_abs_error=float(np.mean(errors)) if errors else float("nan"),
    )


def regime_behaviour(
    engine: PredictionEngine,
    curve_factory: Callable[[int], np.ndarray],
    *,
    n_curves: int = 100,
    max_epochs: int = 25,
) -> EngineBehaviour:
    """Measure behaviour over ``n_curves`` draws from a curve factory.

    ``curve_factory(i)`` must return the ``i``-th curve (length >=
    ``max_epochs``); index-based so factories can derive per-curve seeds.
    """
    curves = [curve_factory(i) for i in range(n_curves)]
    return measure_engine_behaviour(engine, curves, max_epochs=max_epochs)
