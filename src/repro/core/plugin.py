"""NAS plug-in implementing the paper's Algorithm 1 training loop.

Rather than re-engineering the NAS, A4NN interposes this plug-in between
the NAS's per-network training loop and the prediction engine.  Any
object satisfying :class:`TrainableModel` (one ``train()`` step per
epoch, ``validate()`` returning percent fitness) can be driven — the real
NumPy CNN trainer (:mod:`repro.nn.trainer`) and the surrogate evaluator
(:mod:`repro.nas.surrogate`) both do.

The loop also measures the engine's own overhead per interaction, which
the paper reports in §4.3.1 (mean 28.07 ms per interaction, 52.16 s per
100-model test on their hardware).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.core.engine import PredictionEngine
from repro.utils.timing import Stopwatch
from repro.utils.validation import ensure_positive

__all__ = ["TrainableModel", "TrainingResult", "run_training_loop"]


@runtime_checkable
class TrainableModel(Protocol):
    """Minimal training interface Algorithm 1 requires of the NAS's model."""

    def train(self) -> None:
        """Run one training epoch (paper line 4: ``M.train()``)."""

    def validate(self) -> float:
        """Return validation fitness in percent (line 5: ``h_e = M.validate()``)."""


@dataclass
class TrainingResult:
    """Full outcome of one Algorithm-1 run for a single NN.

    Attributes
    ----------
    fitness:
        The value returned to the NAS: the converged prediction
        ``P[-1]`` when the engine converged, else the last measured
        fitness ``h_e`` (Algorithm 1 lines 17-21).
    epochs_trained:
        Number of epochs actually executed (``e_t`` in the paper when
        terminated early, else the full budget).
    terminated_early:
        Whether the engine's convergence cut training short.
    fitness_history:
        ``H`` — measured validation fitness per epoch.
    prediction_history:
        ``P`` — candidate predictions in the order produced.
    measured_fitness:
        Last measured validation fitness (useful for comparing the
        prediction against ground truth).
    engine_overhead_seconds:
        Total wall time spent inside the prediction engine.
    engine_interactions:
        Number of predictor+analyzer invocations.
    engine_overhead_mean / engine_overhead_variance:
        Per-interaction overhead statistics (paper §4.3.1).
    """

    fitness: float
    epochs_trained: int
    terminated_early: bool
    fitness_history: list = field(default_factory=list)
    prediction_history: list = field(default_factory=list)
    measured_fitness: float = 0.0
    engine_overhead_seconds: float = 0.0
    engine_interactions: int = 0
    engine_overhead_mean: float = 0.0
    engine_overhead_variance: float = 0.0

    @property
    def epochs_saved(self) -> int:
        """Epochs not executed relative to ``max_epochs`` recorded at run time."""
        return self._max_epochs - self.epochs_trained

    # populated by run_training_loop; kept off the public ctor surface
    _max_epochs: int = 0

    def to_dict(self) -> dict:
        """Serializable snapshot for lineage records."""
        return {
            "fitness": self.fitness,
            "epochs_trained": self.epochs_trained,
            "terminated_early": self.terminated_early,
            "fitness_history": list(self.fitness_history),
            "prediction_history": list(self.prediction_history),
            "measured_fitness": self.measured_fitness,
            "engine_overhead_seconds": self.engine_overhead_seconds,
            "engine_interactions": self.engine_interactions,
            "engine_overhead_mean": self.engine_overhead_mean,
            "engine_overhead_variance": self.engine_overhead_variance,
            "max_epochs": self._max_epochs,
        }


def run_training_loop(
    model: TrainableModel,
    engine: PredictionEngine | None,
    max_epochs: int,
    *,
    epoch_callback=None,
) -> TrainingResult:
    """Execute Algorithm 1 for one NN.

    Parameters
    ----------
    model:
        The NAS's network under training.
    engine:
        The prediction engine; ``None`` reproduces the *standalone NAS*
        baseline (truncated training for the full ``max_epochs``).
    max_epochs:
        The NAS training budget (paper: 25).
    epoch_callback:
        Optional hook ``callback(epoch, fitness, prediction)`` invoked
        after each epoch — the workflow orchestrator uses it to persist
        per-epoch model state and metadata.

    Returns
    -------
    TrainingResult
        With ``fitness`` set per Algorithm 1's return rule.
    """
    ensure_positive(max_epochs, "max_epochs")

    fitness_history: list[float] = []      # H
    prediction_history: list[float] = []   # P
    converged = False
    engine_clock = Stopwatch()
    last_fitness = 0.0

    for epoch in range(1, int(max_epochs) + 1):
        model.train()                       # line 4
        last_fitness = float(model.validate())  # line 5
        fitness_history.append(last_fitness)    # line 6

        prediction = None
        if engine is not None:
            with engine_clock:
                prediction = engine.predictor(epoch, fitness_history)  # line 7
                if prediction is not None:
                    prediction_history.append(prediction)              # line 8
                converged = engine.converged(prediction_history)       # line 9

        if epoch_callback is not None:
            epoch_callback(epoch, last_fitness, prediction)

        if converged:                       # lines 10-14
            break

    # lines 17-21: converged -> return P[-1]; else return h_e
    fitness = prediction_history[-1] if converged else last_fitness

    result = TrainingResult(
        fitness=float(fitness),
        epochs_trained=len(fitness_history),
        terminated_early=converged,
        fitness_history=fitness_history,
        prediction_history=prediction_history,
        measured_fitness=last_fitness,
        engine_overhead_seconds=engine_clock.total,
        engine_interactions=len(engine_clock.laps),
        engine_overhead_mean=engine_clock.mean_lap,
        engine_overhead_variance=engine_clock.lap_variance,
    )
    result._max_epochs = int(max_epochs)
    return result
