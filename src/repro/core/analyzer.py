"""Prediction analyzer: decides when fitness predictions have converged.

Paper §2.1.2: the analyzer first checks that the most recent predicted
fitnesses are *valid* fitness values (validation accuracy, so within
``[0, 100]``); any out-of-bounds prediction among the most recent ``N``
means "not converged".  It then checks that the most recent ``N``
predictions are mutually stable within the allowed variance ``r``.  Once
both hold, the latest prediction becomes the NN's final fitness and
training terminates.

The paper calls ``r`` "the allowed variance in predictions".  Different
implementations of this idea measure stability as the range
(``max - min``), the sample variance, or the standard deviation of the
window; we support all three via ``stability_metric`` and default to
``"range"``, which with ``N = 3, r = 0.5`` matches the paper's described
behaviour (three successive predictions within half a percentage point).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.utils.validation import ValidationError, ensure_positive

__all__ = ["ConvergenceAnalyzer", "AnalysisResult", "STABILITY_METRICS"]

STABILITY_METRICS = ("range", "variance", "std")


@dataclass(frozen=True)
class AnalysisResult:
    """Outcome of one analyzer invocation.

    Attributes
    ----------
    converged:
        True when the prediction history satisfies the convergence rule.
    reason:
        Human-readable explanation, recorded in lineage trails.
    spread:
        Value of the stability metric over the window (NaN when the
        window is incomplete or invalid).
    window:
        The last-``N`` predictions that were inspected.
    """

    converged: bool
    reason: str
    spread: float
    window: tuple


class ConvergenceAnalyzer:
    """Stability test over the most recent ``N`` fitness predictions.

    Parameters
    ----------
    n_predictions:
        ``N`` — how many trailing predictions must agree (paper: 3).
    tolerance:
        ``r`` — allowed instability of the window (paper: 0.5).
    fitness_bounds:
        Valid fitness interval; validation accuracy in percent is
        ``(0, 100)``.
    stability_metric:
        ``"range"`` (max - min), ``"variance"``, or ``"std"``.
    """

    def __init__(
        self,
        n_predictions: int = 3,
        tolerance: float = 0.5,
        *,
        fitness_bounds: tuple[float, float] = (0.0, 100.0),
        stability_metric: str = "range",
    ) -> None:
        if int(n_predictions) < 2:
            raise ValidationError(
                f"n_predictions must be >= 2 to measure stability, got {n_predictions}"
            )
        if stability_metric not in STABILITY_METRICS:
            raise ValidationError(
                f"stability_metric must be one of {STABILITY_METRICS}, got {stability_metric!r}"
            )
        lo, hi = fitness_bounds
        if not lo < hi:
            raise ValidationError(f"fitness_bounds must satisfy low < high, got {fitness_bounds}")
        self.n_predictions = int(n_predictions)
        self.tolerance = ensure_positive(float(tolerance), "tolerance")
        self.fitness_bounds = (float(lo), float(hi))
        self.stability_metric = stability_metric

    def _spread(self, window: np.ndarray) -> float:
        if self.stability_metric == "range":
            return float(window.max() - window.min())
        if self.stability_metric == "variance":
            return float(np.var(window))
        return float(np.std(window))

    def analyze(self, predictions: Sequence[float]) -> AnalysisResult:
        """Apply the convergence rule to a full prediction history.

        ``predictions`` is the chronological prediction history ``P``;
        only the trailing ``N`` entries are inspected, per the paper.
        """
        history = np.asarray(list(predictions), dtype=float)
        if len(history) < self.n_predictions:
            return AnalysisResult(
                converged=False,
                reason=f"need {self.n_predictions} predictions, have {len(history)}",
                spread=float("nan"),
                window=tuple(history.tolist()),
            )

        window = history[-self.n_predictions :]
        lo, hi = self.fitness_bounds
        invalid = ~np.isfinite(window) | (window < lo) | (window > hi)
        if np.any(invalid):
            bad = window[invalid]
            return AnalysisResult(
                converged=False,
                reason=f"window contains invalid fitness values {bad.tolist()} "
                f"outside [{lo}, {hi}]",
                spread=float("nan"),
                window=tuple(window.tolist()),
            )

        spread = self._spread(window)
        if spread <= self.tolerance:
            return AnalysisResult(
                converged=True,
                reason=f"{self.stability_metric} {spread:.4f} <= tolerance {self.tolerance}",
                spread=spread,
                window=tuple(window.tolist()),
            )
        return AnalysisResult(
            converged=False,
            reason=f"{self.stability_metric} {spread:.4f} > tolerance {self.tolerance}",
            spread=spread,
            window=tuple(window.tolist()),
        )

    def __call__(self, predictions: Sequence[float]) -> bool:
        """Boolean form used by Algorithm 1's ``pred_eng.analyzer(P)``."""
        return self.analyze(predictions).converged

    def describe(self) -> dict:
        """Configuration snapshot for lineage records."""
        return {
            "n_predictions": self.n_predictions,
            "tolerance": self.tolerance,
            "fitness_bounds": list(self.fitness_bounds),
            "stability_metric": self.stability_metric,
        }
