"""Least-squares fitting of parametric functions to partial learning curves.

The paper (§2.1.1): *"We attain the values for the function parameters
using the least squares regression of the fitting."*  We use bounded
trust-region least squares (``scipy.optimize.least_squares``), which is
robust to the short, noisy curves seen early in training, and we treat a
failed or degenerate fit as "no prediction available this epoch" rather
than an error — the engine simply lets training continue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.optimize import least_squares

from repro.core.parametric import ParametricFunction

__all__ = ["CurveFit", "fit_curve", "FitError", "RidgeFit", "ridge_lstsq"]


class FitError(RuntimeError):
    """Raised by :func:`fit_curve` when ``strict=True`` and the fit fails."""


@dataclass(frozen=True)
class CurveFit:
    """Result of fitting a parametric family to a partial learning curve.

    Attributes
    ----------
    function:
        The fitted family.
    theta:
        Fitted parameter vector.
    residual_norm:
        Euclidean norm of the residuals at the solution.
    rmse:
        Root-mean-square error over the fitted points.
    n_points:
        Number of curve points used.
    """

    function: ParametricFunction
    theta: tuple
    residual_norm: float
    rmse: float
    n_points: int

    def predict(self, x) -> np.ndarray | float:
        """Evaluate the fitted curve at epoch(s) ``x``."""
        result = self.function(x, *self.theta)
        if np.ndim(x) == 0:
            return float(result)
        return result


def fit_curve(
    function: ParametricFunction,
    epochs: Sequence[float],
    fitness: Sequence[float],
    *,
    strict: bool = False,
    max_nfev: int = 200,
) -> CurveFit | None:
    """Fit ``function`` to the observed ``(epochs, fitness)`` curve.

    Parameters
    ----------
    function:
        Parametric family to fit.
    epochs, fitness:
        Observed partial learning curve; must have equal length of at
        least ``function.n_params`` points (otherwise the system is
        underdetermined and ``None`` is returned).
    strict:
        When true, raise :class:`FitError` instead of returning ``None``
        on failure.
    max_nfev:
        Budget of residual evaluations for the optimizer.  The engine is
        called once per epoch per model, so this bounds its overhead.

    Returns
    -------
    CurveFit or None
        ``None`` signals "cannot produce a prediction from this curve";
        callers (the prediction engine) treat it as not-yet-converged.
    """
    x = np.asarray(epochs, dtype=float)
    y = np.asarray(fitness, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError(
            f"epochs and fitness must be equal-length 1-D sequences, "
            f"got shapes {x.shape} and {y.shape}"
        )

    def fail(reason: str) -> None:
        if strict:
            raise FitError(f"cannot fit {function.name}: {reason}")
        return None

    if len(x) < function.n_params:
        return fail(f"need >= {function.n_params} points, have {len(x)}")
    if not (np.all(np.isfinite(x)) and np.all(np.isfinite(y))):
        return fail("curve contains non-finite values")

    theta0 = np.asarray(function.guess(x, y), dtype=float)

    def residuals(theta: np.ndarray) -> np.ndarray:
        pred = function.fn(x, *theta)
        res = pred - y
        # Penalize non-finite model output heavily but finitely so the
        # trust-region step can recover.
        return np.where(np.isfinite(res), res, 1e6)

    try:
        solution = least_squares(
            residuals,
            theta0,
            bounds=(np.asarray(function.lower), np.asarray(function.upper)),
            method="trf",
            max_nfev=max_nfev,
        )
    except Exception as exc:  # a4nn: noqa(NUM001) -- scipy's failure surface is unbounded; fail() converts to the engine's explicit no-prediction path (or raises under strict=True)
        return fail(f"optimizer error: {exc}")

    if not np.all(np.isfinite(solution.x)):
        return fail("optimizer returned non-finite parameters")

    fitted = function.fn(x, *solution.x)
    if not np.all(np.isfinite(fitted)):
        return fail("fitted curve is non-finite on the data")

    rmse = float(np.sqrt(np.mean((fitted - y) ** 2)))
    return CurveFit(
        function=function,
        theta=tuple(float(t) for t in solution.x),
        residual_norm=float(np.linalg.norm(solution.fun)),
        rmse=rmse,
        n_points=len(x),
    )


@dataclass(frozen=True)
class RidgeFit:
    """Closed-form ridge least-squares solution ``y ~ X @ theta``.

    Attributes
    ----------
    theta:
        Fitted coefficient vector (one entry per feature column).
    rmse:
        Root-mean-square training residual.
    n_points:
        Number of rows fitted.
    gram_inv:
        Inverse of the regularized Gram matrix ``X^T X + ridge * I``
        (row-major nested tuples), kept so callers can form the ridge
        predictive variance for a new point.
    """

    theta: tuple
    rmse: float
    n_points: int
    gram_inv: tuple

    def predict(self, x) -> np.ndarray | float:
        """Evaluate the fitted linear model on feature row(s) ``x``."""
        result = np.asarray(x, dtype=float) @ np.asarray(self.theta)
        if result.ndim == 0:
            return float(result)
        return result

    def leverage(self, x) -> float:
        """Ridge leverage ``x^T (X^T X + ridge I)^{-1} x`` of one row.

        The standard predictive-variance scale for a linear model: the
        error of a new prediction is roughly
        ``rmse * sqrt(1 + leverage)``.  Near zero inside the training
        cloud; grows rapidly for extrapolated points, where the training
        RMSE alone badly understates the true uncertainty.
        """
        row = np.asarray(x, dtype=float)
        return float(row @ np.asarray(self.gram_inv) @ row)


def ridge_lstsq(
    features: Sequence[Sequence[float]],
    targets: Sequence[float],
    *,
    ridge: float = 1e-3,
) -> RidgeFit | None:
    """Solve ridge-regularized least squares in closed form.

    Unlike :func:`fit_curve` this is linear in the parameters, so the
    normal equations ``(X^T X + ridge * I) theta = X^T y`` give the exact
    minimizer deterministically — no iterative optimizer, no tolerance
    knobs, bit-identical across runs for identical inputs.  Used by the
    cross-architecture fitness predictor, which refits on every lineage
    commit and therefore needs the solve to be cheap and reproducible.

    Returns ``None`` when the system is empty or numerically degenerate
    (non-finite inputs, singular regularized Gram matrix) — callers treat
    that as "no prediction available yet".
    """
    x = np.asarray(features, dtype=float)
    y = np.asarray(targets, dtype=float)
    if x.ndim != 2 or y.ndim != 1 or x.shape[0] != y.shape[0]:
        raise ValueError(
            f"features must be (n, k) and targets (n,), got {x.shape} and {y.shape}"
        )
    if ridge < 0.0:
        raise ValueError(f"ridge must be non-negative, got {ridge}")
    if x.shape[0] == 0:
        return None
    if not (np.all(np.isfinite(x)) and np.all(np.isfinite(y))):
        return None
    gram = x.T @ x + ridge * np.eye(x.shape[1])
    moment = x.T @ y
    try:
        theta = np.linalg.solve(gram, moment)
        gram_inv = np.linalg.inv(gram)
    except np.linalg.LinAlgError:
        return None
    if not (np.all(np.isfinite(theta)) and np.all(np.isfinite(gram_inv))):
        return None
    residual = x @ theta - y
    return RidgeFit(
        theta=tuple(float(t) for t in theta),
        rmse=float(np.sqrt(np.mean(residual**2))),
        n_points=int(x.shape[0]),
        gram_inv=tuple(tuple(float(v) for v in row) for row in gram_inv),
    )
