"""Ensemble prediction engine (extension).

The paper's conclusions ask *"Which parametric functions are best able
to predict neural architecture fitness?"*.  This extension sidesteps
choosing one: it fits several families to the same fitness history and
aggregates their extrapolations (median by default, robust to a single
family's escape).  The ensemble exposes the exact
predictor/analyzer/session interface of
:class:`~repro.core.engine.PredictionEngine`, so it drops into
Algorithm 1, the evaluators, and the orchestrator unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.analyzer import AnalysisResult, ConvergenceAnalyzer
from repro.core.engine import PredictionSession
from repro.core.fitting import fit_curve
from repro.core.parametric import get_function
from repro.utils.validation import ValidationError

__all__ = ["EnsembleConfig", "EnsemblePredictionEngine"]

_AGGREGATORS = {
    "median": np.median,
    "mean": np.mean,
    "min": np.min,
    "max": np.max,
}


@dataclass(frozen=True)
class EnsembleConfig:
    """Settings for the multi-function engine.

    Attributes
    ----------
    functions:
        Registry names of the families to fit each epoch.
    aggregator:
        How member extrapolations combine: ``median`` (default),
        ``mean``, ``min`` (pessimistic), or ``max`` (optimistic).
    e_pred, n_predictions, tolerance, stability_metric, fitness_bounds:
        As in :class:`~repro.core.engine.EngineConfig`; ``c_min`` is
        derived as the largest member's parameter count (an ensemble
        prediction needs every member to be determined).
    """

    functions: tuple = ("exp3", "pow3", "ilog2", "janoschek")
    aggregator: str = "median"
    e_pred: int = 25
    n_predictions: int = 3
    tolerance: float = 0.5
    stability_metric: str = "range"
    fitness_bounds: tuple = (0.0, 100.0)

    def to_dict(self) -> dict:
        return {
            "functions": list(self.functions),
            "aggregator": self.aggregator,
            "e_pred": self.e_pred,
            "n_predictions": self.n_predictions,
            "tolerance": self.tolerance,
            "stability_metric": self.stability_metric,
            "fitness_bounds": list(self.fitness_bounds),
        }


class EnsemblePredictionEngine:
    """Median-of-families fitness predictor, Algorithm-1 compatible."""

    def __init__(self, config: EnsembleConfig | None = None, **overrides) -> None:
        if config is None:
            config = EnsembleConfig(**overrides)
        elif overrides:
            raise TypeError("pass either a config object or keyword overrides, not both")
        if not config.functions:
            raise ValidationError("ensemble needs at least one parametric function")
        if config.aggregator not in _AGGREGATORS:
            raise ValidationError(
                f"aggregator must be one of {sorted(_AGGREGATORS)}, got {config.aggregator!r}"
            )
        self.config = config
        self.members = [get_function(name) for name in config.functions]
        self.c_min = max(member.n_params for member in self.members)
        self._aggregate = _AGGREGATORS[config.aggregator]
        self.analyzer = ConvergenceAnalyzer(
            n_predictions=config.n_predictions,
            tolerance=config.tolerance,
            fitness_bounds=config.fitness_bounds,
            stability_metric=config.stability_metric,
        )

    # -- PredictionEngine interface --------------------------------------------

    def member_predictions(self, fitness_history: Sequence[float]) -> dict[str, float]:
        """Per-family extrapolations at ``e_pred`` (only successful fits)."""
        n = len(fitness_history)
        if n < self.c_min:
            return {}
        epochs = np.arange(1, n + 1, dtype=float)
        predictions: dict[str, float] = {}
        for member in self.members:
            fit = fit_curve(member, epochs, list(fitness_history))
            if fit is None:
                continue
            value = float(fit.predict(self.config.e_pred))
            if np.isfinite(value):
                predictions[member.name] = value
        return predictions

    def predictor(self, epoch: int, fitness_history: Sequence[float]) -> float | None:
        """Aggregated candidate prediction, or ``None`` when unavailable."""
        if epoch != len(fitness_history):
            raise ValueError(
                f"epoch {epoch} disagrees with history length {len(fitness_history)}"
            )
        members = self.member_predictions(fitness_history)
        if not members:
            return None
        return float(self._aggregate(list(members.values())))

    def analyze(self, prediction_history: Sequence[float]) -> AnalysisResult:
        return self.analyzer.analyze(prediction_history)

    def converged(self, prediction_history: Sequence[float]) -> bool:
        return self.analyzer(prediction_history)

    def session(self) -> PredictionSession:
        """A per-NN session; the ensemble quacks like the single engine."""
        return PredictionSession(self)

    def describe(self) -> dict:
        snapshot = self.config.to_dict()
        snapshot["c_min"] = self.c_min
        snapshot["formulas"] = {m.name: m.formula for m in self.members}
        return snapshot
