"""Parametric learning-curve function library.

The A4NN prediction engine models an NN's fitness learning curve with a
parametric function and extrapolates the fitness expected at a future
epoch.  The paper uses the concave exponential

.. math::  \\mathcal{F}(x) = a - b^{\\,c-x}

(validation accuracy rises quickly, then saturates toward the asymptote
``a``).  The engine is deliberately *parametric-function agnostic* — the
function is a constructor argument — and the paper's conclusions ask
"which parametric functions are best able to predict neural architecture
fitness?".  We therefore ship a library of well-known learning-curve
families (cf. Domhan et al., IJCAI'15; Viering & Loog, 2021) behind a
single :class:`ParametricFunction` interface so they can be swapped and
ablated (see ``benchmarks/test_ablation_functions.py``).

Every family provides a vectorized callable, an initial-guess heuristic
computed from the observed partial curve, and parameter bounds for the
least-squares fit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "ParametricFunction",
    "FUNCTION_REGISTRY",
    "get_function",
    "register_function",
    "exp3",
    "pow3",
    "log2",
    "vapor_pressure",
    "mmf",
    "janoschek",
    "weibull",
    "ilog2",
]

# Keep fitted exponent/base parameters in a numerically safe region: the
# curve data are percentages in [0, 100] over tens of epochs, so anything
# outside these bounds is an escaped fit, not a better model.
_MAX_ASYMPTOTE = 1000.0
_EPS = 1e-12


@dataclass(frozen=True)
class ParametricFunction:
    """A parametric learning-curve family ``y = f(x; theta)``.

    Attributes
    ----------
    name:
        Registry key (e.g. ``"exp3"`` for the paper's
        ``a - b**(c - x)``).
    formula:
        Human-readable formula for record trails and reports.
    n_params:
        Length of the parameter vector ``theta``.
    fn:
        Vectorized callable ``fn(x, *theta) -> y``; must accept numpy
        arrays for ``x`` and return finite values inside the bounds.
    initial_guess:
        Heuristic ``(x, y) -> theta0`` computed from the observed partial
        curve; used to start the least-squares fit.
    lower, upper:
        Per-parameter box bounds for the fit.
    """

    name: str
    formula: str
    n_params: int
    fn: Callable[..., np.ndarray]
    initial_guess: Callable[[np.ndarray, np.ndarray], tuple]
    lower: tuple
    upper: tuple

    def __call__(self, x, *theta) -> np.ndarray:
        """Evaluate the family at ``x`` with parameters ``theta``."""
        if len(theta) != self.n_params:
            raise TypeError(
                f"{self.name} expects {self.n_params} parameters, got {len(theta)}"
            )
        return self.fn(np.asarray(x, dtype=float), *theta)

    def guess(self, x: Sequence[float], y: Sequence[float]) -> tuple:
        """Initial parameter estimate from the observed partial curve.

        The guess is clipped into the fit bounds so optimizers always
        start feasible.
        """
        theta0 = np.asarray(
            self.initial_guess(np.asarray(x, float), np.asarray(y, float)), float
        )
        lo = np.asarray(self.lower, float)
        hi = np.asarray(self.upper, float)
        return tuple(np.clip(theta0, lo + 1e-9, hi - 1e-9))


FUNCTION_REGISTRY: dict[str, ParametricFunction] = {}


def register_function(func: ParametricFunction) -> ParametricFunction:
    """Add a family to the global registry (overwrites same-name entries)."""
    FUNCTION_REGISTRY[func.name] = func
    return func


def get_function(name: str) -> ParametricFunction:
    """Look up a registered family by name.

    Raises ``KeyError`` with the available names when unknown.
    """
    try:
        return FUNCTION_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(FUNCTION_REGISTRY))
        raise KeyError(f"unknown parametric function {name!r}; known: {known}") from None


def _asymptote_guess(y: np.ndarray) -> float:
    """Crude asymptote estimate: last value plus a fraction of recent gain."""
    if len(y) >= 2:
        recent_gain = max(float(y[-1] - y[max(0, len(y) - 3)]), 0.0)
    else:
        recent_gain = 0.0
    return float(y[-1]) + recent_gain + 1.0


# --- The paper's function: F(x) = a - b^(c - x) ---------------------------
#
# For b > 1 the term b^(c-x) decays geometrically in x, so F rises from
# below toward the asymptote ``a``.  ``c`` shifts where the knee sits.


def _exp3_fn(x, a, b, c):
    # Clamp the exponent so b**(c-x) cannot overflow during optimizer
    # exploration; 700 ~= log(float64 max) for the exp-based rewrite.
    logb = np.log(np.maximum(b, 1.0 + _EPS))
    expo = np.clip((c - x) * logb, -700.0, 700.0)
    return a - np.exp(expo)


def _exp3_guess(x, y):
    a = _asymptote_guess(y)
    return (a, 1.5, float(x[0]))


exp3 = register_function(
    ParametricFunction(
        name="exp3",
        formula="a - b**(c - x)",
        n_params=3,
        fn=_exp3_fn,
        initial_guess=_exp3_guess,
        lower=(0.0, 1.0 + 1e-6, -100.0),
        upper=(_MAX_ASYMPTOTE, 100.0, 100.0),
    )
)


# --- Power law: a - b * x^(-c) ---------------------------------------------


def _pow3_fn(x, a, b, c):
    return a - b * np.power(np.maximum(x, _EPS), -np.clip(c, _EPS, 10.0))


pow3 = register_function(
    ParametricFunction(
        name="pow3",
        formula="a - b * x**(-c)",
        n_params=3,
        fn=_pow3_fn,
        initial_guess=lambda x, y: (_asymptote_guess(y), max(float(y[-1] - y[0]), 1.0), 0.5),
        lower=(0.0, _EPS, _EPS),
        upper=(_MAX_ASYMPTOTE, _MAX_ASYMPTOTE, 10.0),
    )
)


# --- Logarithmic: a + b * log(x) -------------------------------------------


def _log2_fn(x, a, b):
    return a + b * np.log(np.maximum(x, _EPS))


log2 = register_function(
    ParametricFunction(
        name="log2",
        formula="a + b * log(x)",
        n_params=2,
        fn=_log2_fn,
        initial_guess=lambda x, y: (float(y[0]), max(float(y[-1] - y[0]), 0.1)),
        lower=(-_MAX_ASYMPTOTE, 0.0),
        upper=(_MAX_ASYMPTOTE, _MAX_ASYMPTOTE),
    )
)


# --- Vapor pressure: exp(a + b/x + c*log(x)) -------------------------------


def _vap_fn(x, a, b, c):
    x = np.maximum(x, _EPS)
    return np.exp(np.clip(a + b / x + c * np.log(x), -700.0, 700.0))


vapor_pressure = register_function(
    ParametricFunction(
        name="vapor_pressure",
        formula="exp(a + b/x + c*log(x))",
        n_params=3,
        fn=_vap_fn,
        initial_guess=lambda x, y: (np.log(max(float(y[-1]), 1.0)), -1.0, 0.01),
        lower=(-20.0, -100.0, -5.0),
        upper=(20.0, 100.0, 5.0),
    )
)


# --- Morgan-Mercer-Flodin: (a*b + c*x^d) / (b + x^d) ------------------------


def _mmf_fn(x, a, b, c, d):
    xd = np.power(np.maximum(x, _EPS), np.clip(d, _EPS, 10.0))
    return (a * b + c * xd) / (b + xd)


mmf = register_function(
    ParametricFunction(
        name="mmf",
        formula="(a*b + c*x**d) / (b + x**d)",
        n_params=4,
        fn=_mmf_fn,
        initial_guess=lambda x, y: (float(y[0]), 1.0, _asymptote_guess(y), 1.0),
        lower=(0.0, _EPS, 0.0, _EPS),
        upper=(_MAX_ASYMPTOTE, _MAX_ASYMPTOTE, _MAX_ASYMPTOTE, 10.0),
    )
)


# --- Janoschek: a - (a - b) * exp(-c * x^d) ---------------------------------


def _janoschek_fn(x, a, b, c, d):
    xd = np.power(np.maximum(x, 0.0), np.clip(d, _EPS, 10.0))
    return a - (a - b) * np.exp(-np.clip(c, 0.0, 100.0) * xd)


janoschek = register_function(
    ParametricFunction(
        name="janoschek",
        formula="a - (a - b) * exp(-c * x**d)",
        n_params=4,
        fn=_janoschek_fn,
        initial_guess=lambda x, y: (_asymptote_guess(y), float(y[0]), 0.3, 1.0),
        lower=(0.0, 0.0, 0.0, _EPS),
        upper=(_MAX_ASYMPTOTE, _MAX_ASYMPTOTE, 100.0, 10.0),
    )
)


# --- Weibull: a - (a - b) * exp(-(c*x)^d) -----------------------------------


def _weibull_fn(x, a, b, c, d):
    cx = np.maximum(c, _EPS) * np.maximum(x, 0.0)
    return a - (a - b) * np.exp(-np.power(cx, np.clip(d, _EPS, 10.0)))


weibull = register_function(
    ParametricFunction(
        name="weibull",
        formula="a - (a - b) * exp(-(c*x)**d)",
        n_params=4,
        fn=_weibull_fn,
        initial_guess=lambda x, y: (_asymptote_guess(y), float(y[0]), 0.2, 1.0),
        lower=(0.0, 0.0, _EPS, _EPS),
        upper=(_MAX_ASYMPTOTE, _MAX_ASYMPTOTE, 100.0, 10.0),
    )
)


# --- ilog2: a - b / log(x + 1) ----------------------------------------------


def _ilog2_fn(x, a, b):
    return a - b / np.log(np.maximum(x, 0.0) + np.e)


ilog2 = register_function(
    ParametricFunction(
        name="ilog2",
        formula="a - b / log(x + e)",
        n_params=2,
        fn=_ilog2_fn,
        initial_guess=lambda x, y: (_asymptote_guess(y), max(float(y[-1] - y[0]), 0.1)),
        lower=(0.0, 0.0),
        upper=(_MAX_ASYMPTOTE, _MAX_ASYMPTOTE),
    )
)
