"""The A4NN parametric prediction engine.

This is the paper's primary contribution (§2.1): a *self-contained,
externally-controllable* engine that, given the fitness history of a
partially-trained NN, (1) fits a parametric model to the learning curve
(*parametric modeling*), (2) extrapolates the fitness expected at epoch
``e_pred``, and (3) decides via the :class:`~repro.core.analyzer.
ConvergenceAnalyzer` whether successive extrapolations have stabilized
(*prediction analyzer*).  The engine never touches model weights or the
NAS internals — it sees only scalar fitness values — which is what makes
the workflow composable.

The constructor signature mirrors the paper's
``pred_eng(e_pred, F, C_min, r)`` (Algorithm 1, line 1) plus ``N``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.analyzer import AnalysisResult, ConvergenceAnalyzer
from repro.core.fitting import CurveFit, fit_curve
from repro.core.parametric import ParametricFunction, get_function
from repro.utils.validation import ValidationError, ensure_positive

__all__ = ["PredictionEngine", "EngineConfig", "PredictionSession"]


@dataclass(frozen=True)
class EngineConfig:
    """User-facing engine settings (paper Table 1).

    Attributes
    ----------
    function:
        Name of the parametric family in the registry
        (paper: ``"exp3"``, i.e. ``a - b**(c - x)``).
    c_min:
        Minimum number of observed epochs before a prediction is
        attempted (paper: 3).
    e_pred:
        The future epoch whose fitness is predicted; normally the NAS's
        full training budget (paper: 25).
    n_predictions:
        ``N`` — trailing predictions that must agree to converge
        (paper: 3).
    tolerance:
        ``r`` — allowed variance among those predictions (paper: 0.5).
    stability_metric:
        How the analyzer measures instability of the prediction window.
    fitness_bounds:
        Valid fitness interval (percent accuracy: 0..100).
    """

    function: str = "exp3"
    c_min: int = 3
    e_pred: int = 25
    n_predictions: int = 3
    tolerance: float = 0.5
    stability_metric: str = "range"
    fitness_bounds: tuple[float, float] = (0.0, 100.0)

    def to_dict(self) -> dict:
        """Serializable snapshot for lineage records."""
        return {
            "function": self.function,
            "c_min": self.c_min,
            "e_pred": self.e_pred,
            "n_predictions": self.n_predictions,
            "tolerance": self.tolerance,
            "stability_metric": self.stability_metric,
            "fitness_bounds": list(self.fitness_bounds),
        }


class PredictionEngine:
    """Fitness predictor + convergence analyzer (paper Fig. 1, §2.1).

    The engine is stateless with respect to individual NNs: the fitness
    history ``H`` and prediction history ``P`` are owned by the caller
    (the workflow orchestrator), exactly as in Algorithm 1.  Use
    :meth:`session` for a convenience wrapper that owns the histories of
    one NN.
    """

    def __init__(self, config: EngineConfig | None = None, **overrides) -> None:
        if config is None:
            config = EngineConfig(**overrides)
        elif overrides:
            raise TypeError("pass either a config object or keyword overrides, not both")
        if config.c_min < 1:
            raise ValidationError(f"c_min must be >= 1, got {config.c_min}")
        ensure_positive(config.e_pred, "e_pred")
        self.config = config
        self.function: ParametricFunction = get_function(config.function)
        if config.c_min < self.function.n_params:
            # Fewer points than parameters is underdetermined; the fit
            # layer would refuse anyway, so surface it at configuration.
            raise ValidationError(
                f"c_min={config.c_min} is below the {self.function.name} "
                f"parameter count {self.function.n_params}; predictions "
                f"would be underdetermined"
            )
        self.analyzer = ConvergenceAnalyzer(
            n_predictions=config.n_predictions,
            tolerance=config.tolerance,
            fitness_bounds=config.fitness_bounds,
            stability_metric=config.stability_metric,
        )

    # -- parametric modeling -------------------------------------------------

    def fit(self, fitness_history: Sequence[float]) -> CurveFit | None:
        """Fit the parametric family to a fitness history.

        Epoch numbering is 1-based: ``fitness_history[i]`` is the
        validation fitness measured after epoch ``i + 1``.
        """
        n = len(fitness_history)
        if n < self.config.c_min:
            return None
        epochs = range(1, n + 1)
        return fit_curve(self.function, list(epochs), list(fitness_history))

    def predictor(self, epoch: int, fitness_history: Sequence[float]) -> float | None:
        """Algorithm 1 line 7: ``p_e = pred_eng.predictor(e, H)``.

        Returns the candidate prediction of the fitness at ``e_pred``, or
        ``None`` when no prediction can be made yet (too few points or a
        failed fit).  ``epoch`` is accepted for interface fidelity with
        the paper's pseudocode; the history length is authoritative.
        """
        if epoch != len(fitness_history):
            raise ValueError(
                f"epoch {epoch} disagrees with history length {len(fitness_history)}"
            )
        fit = self.fit(fitness_history)
        if fit is None:
            return None
        return float(fit.predict(self.config.e_pred))

    # -- prediction analysis --------------------------------------------------

    def analyze(self, prediction_history: Sequence[float]) -> AnalysisResult:
        """Full analyzer result over the prediction history ``P``."""
        return self.analyzer.analyze(prediction_history)

    def converged(self, prediction_history: Sequence[float]) -> bool:
        """Algorithm 1 line 9: ``converged = pred_eng.analyzer(P)``."""
        return self.analyzer(prediction_history)

    # -- sessions -------------------------------------------------------------

    def session(self) -> "PredictionSession":
        """A stateful per-NN wrapper owning ``H`` and ``P``."""
        return PredictionSession(self)

    def describe(self) -> dict:
        """Engine parameter snapshot for lineage records (paper Table 1)."""
        snapshot = self.config.to_dict()
        snapshot["formula"] = self.function.formula
        return snapshot


@dataclass
class PredictionSession:
    """Histories ``H`` and ``P`` for a single NN, driven epoch by epoch.

    >>> engine = PredictionEngine()
    >>> sess = engine.session()
    >>> for acc in [50.0, 70.0, 80.0, 85.0, 87.5]:
    ...     state = sess.observe(acc)
    """

    engine: PredictionEngine
    fitness_history: list = field(default_factory=list)
    prediction_history: list = field(default_factory=list)
    converged: bool = False
    final_fitness: float | None = None

    @property
    def epoch(self) -> int:
        """Number of observed epochs so far (1-based after first observe)."""
        return len(self.fitness_history)

    def observe(self, fitness: float) -> "PredictionSession":
        """Record one epoch's measured fitness and update the prediction.

        After convergence the session is frozen; further observations are
        a programming error because Algorithm 1 terminates training.
        """
        if self.converged:
            raise RuntimeError("session already converged; training should have stopped")
        self.fitness_history.append(float(fitness))
        prediction = self.engine.predictor(self.epoch, self.fitness_history)
        if prediction is not None:
            self.prediction_history.append(prediction)
            if self.engine.converged(self.prediction_history):
                self.converged = True
                self.final_fitness = self.prediction_history[-1]
        return self
