"""A4NN's primary contribution: the parametric fitness-prediction engine.

The engine (paper §2.1) predicts the final fitness a neural network will
attain from the first few epochs of its learning curve, letting the
workflow terminate training early once predictions stabilize.  It is
fully decoupled from the NAS: it consumes scalar fitness histories and
produces scalar predictions, nothing else.

Public surface:

* :class:`~repro.core.parametric.ParametricFunction` and the function
  registry (``exp3`` is the paper's ``a - b**(c-x)``).
* :func:`~repro.core.fitting.fit_curve` — bounded least-squares fitting.
* :class:`~repro.core.engine.PredictionEngine` /
  :class:`~repro.core.engine.EngineConfig` — predictor + analyzer.
* :class:`~repro.core.analyzer.ConvergenceAnalyzer` — the stability rule.
* :func:`~repro.core.plugin.run_training_loop` — the paper's Algorithm 1.
"""

from repro.core.analyzer import AnalysisResult, ConvergenceAnalyzer
from repro.core.calibration import EngineBehaviour, measure_engine_behaviour, regime_behaviour
from repro.core.engine import EngineConfig, PredictionEngine, PredictionSession
from repro.core.ensemble import EnsembleConfig, EnsemblePredictionEngine
from repro.core.fitting import CurveFit, FitError, fit_curve
from repro.core.parametric import (
    FUNCTION_REGISTRY,
    ParametricFunction,
    get_function,
    register_function,
)
from repro.core.plugin import TrainableModel, TrainingResult, run_training_loop

__all__ = [
    "AnalysisResult",
    "ConvergenceAnalyzer",
    "EngineBehaviour",
    "measure_engine_behaviour",
    "regime_behaviour",
    "EngineConfig",
    "EnsembleConfig",
    "EnsemblePredictionEngine",
    "PredictionEngine",
    "PredictionSession",
    "CurveFit",
    "FitError",
    "fit_curve",
    "FUNCTION_REGISTRY",
    "ParametricFunction",
    "get_function",
    "register_function",
    "TrainableModel",
    "TrainingResult",
    "run_training_loop",
]
