"""Simulated accelerator resources.

The resource manager (paper §2.5) distributes per-network training jobs
over GPUs.  A :class:`GpuPool` tracks each device's busy-until horizon;
the FIFO scheduler queries and advances these horizons.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Gpu", "GpuPool"]


@dataclass
class Gpu:
    """One simulated accelerator.

    Attributes
    ----------
    index:
        Device id.
    available_at:
        Simulated time at which the device becomes free.
    busy_seconds:
        Accumulated compute time (for utilization accounting).
    jobs:
        Model ids executed on this device, in order.
    """

    index: int
    available_at: float = 0.0
    busy_seconds: float = 0.0
    jobs: list = field(default_factory=list)

    def run(self, job_id, start: float, duration: float) -> float:
        """Occupy the device from ``start`` for ``duration``; return finish time."""
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        if start < self.available_at:
            raise ValueError(
                f"GPU {self.index} busy until {self.available_at}, cannot start at {start}"
            )
        finish = start + duration
        self.available_at = finish
        self.busy_seconds += duration
        self.jobs.append(job_id)
        return finish


class GpuPool:
    """A fixed set of simulated GPUs."""

    def __init__(self, n_gpus: int) -> None:
        if n_gpus < 1:
            raise ValueError(f"n_gpus must be >= 1, got {n_gpus}")
        self.gpus = [Gpu(i) for i in range(n_gpus)]

    def __len__(self) -> int:
        return len(self.gpus)

    def __iter__(self):
        return iter(self.gpus)

    def next_free(self) -> Gpu:
        """Device that becomes available first (ties: lowest index)."""
        return min(self.gpus, key=lambda g: (g.available_at, g.index))

    def horizon(self) -> float:
        """Time when every device is free (the pool-wide makespan)."""
        return max(g.available_at for g in self.gpus)

    def advance_all(self, time: float) -> None:
        """Barrier: no device may start before ``time`` (generation boundary)."""
        for gpu in self.gpus:
            if gpu.available_at < time:
                gpu.available_at = time

    def utilization(self, *, until: float | None = None) -> float:
        """Fraction of pool time spent computing, up to ``until`` (default: makespan)."""
        horizon = self.horizon() if until is None else float(until)
        if horizon <= 0:
            return 0.0
        busy = sum(g.busy_seconds for g in self.gpus)
        return busy / (horizon * len(self.gpus))
