"""Real concurrent execution of a generation's evaluations.

The discrete-event simulator (:mod:`repro.scheduler.simulator`) answers
"what would this schedule cost on N GPUs"; this module actually *runs*
evaluations concurrently on N workers with the same FIFO-within-a-
generation policy, for users with real parallel hardware.  Worker
threads stand in for accelerators: each evaluation occupies one worker
from start to finish, and the generation boundary is a barrier, exactly
like the simulated policy.

NumPy releases the GIL inside its kernels, so thread workers give real
overlap for the BLAS-heavy training inner loops; the pure-Python parts
of the loop (im2col indexing, optimizer steps, engine fits) still
serialize.  :class:`~repro.scheduler.procpool.ProcessWorkerPool` is the
drop-in sibling that sidesteps the GIL entirely — both implement the
:class:`WorkerPool` protocol and record the same enriched
:class:`PoolReport` (per-job start/end timestamps, per-worker busy
seconds), so barrier downtime is computable for every backend.

Failure semantics are identical for the serial (``n_workers == 1``) and
threaded paths: every job in the generation settles before any error
propagates, a single error re-raises as itself, and multiple errors
raise an :class:`ExceptionGroup` carrying all of them.  Give the pool a
:class:`~repro.scheduler.faults.FaultPolicy` to stop evaluation errors
from propagating at all: faulty candidates are then retried and, if
unrecoverable, quarantined with penalized objectives.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.nas.evaluation import Evaluator
from repro.nas.population import Individual
from repro.scheduler.faults import FaultPolicy, FaultTolerantEvaluator
from repro.utils.timing import Stopwatch

__all__ = ["JobTiming", "PoolReport", "WorkerPool", "FifoWorkerPool"]


@dataclass(frozen=True)
class JobTiming:
    """Measured placement of one evaluation on one worker.

    Timestamps are seconds relative to the generation's dispatch start,
    so timings from different backends are directly comparable.  A job
    that was retried keeps one timing spanning every attempt (the worker
    slot was occupied the whole time, as on a real accelerator).
    """

    job_id: int
    worker: int
    start_seconds: float
    end_seconds: float

    @property
    def duration(self) -> float:
        return self.end_seconds - self.start_seconds

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "worker": self.worker,
            "start_seconds": self.start_seconds,
            "end_seconds": self.end_seconds,
        }


@dataclass(frozen=True)
class PoolReport:
    """Measured outcome of one generation executed on a pool.

    Attributes
    ----------
    n_workers:
        Worker slots the generation ran on.
    wall_seconds:
        Dispatch-to-settle wall time of the whole generation.
    n_jobs:
        Evaluations submitted.
    backend:
        ``"serial"``, ``"thread"``, or ``"process"``.
    jobs:
        Per-job :class:`JobTiming` entries in submission order.
    worker_busy_seconds:
        Seconds each worker spent executing jobs (len ``n_workers``).
    """

    n_workers: int
    wall_seconds: float
    n_jobs: int
    backend: str = "thread"
    jobs: tuple = ()
    worker_busy_seconds: tuple = ()

    @property
    def busy_seconds(self) -> float:
        """Total worker-seconds spent executing jobs."""
        return float(sum(self.worker_busy_seconds))

    @property
    def idle_seconds(self) -> float:
        """Total worker-seconds spent idle (includes barrier downtime)."""
        return max(self.n_workers * self.wall_seconds - self.busy_seconds, 0.0)

    @property
    def utilization(self) -> float:
        """Busy fraction of the pool over the generation."""
        capacity = self.n_workers * self.wall_seconds
        return self.busy_seconds / capacity if capacity > 0 else 0.0

    @property
    def idle_workers(self) -> int:
        """Workers that never ran a job (oversized pool, not barrier loss)."""
        scheduled = {job.worker for job in self.jobs}
        return sum(1 for w in range(self.n_workers) if w not in scheduled)

    def barrier_downtime(self) -> list:
        """Seconds each worker idled between its last job and the barrier.

        This is the paper's generation-boundary downtime: when
        ``population % n_workers != 0`` some workers finish early and
        must wait for the slowest one before the next generation can be
        bred.  A worker that never ran a job is *not* charged barrier
        downtime — its loss is a sizing problem, reported separately via
        :attr:`idle_workers` — so oversized pools don't overstate
        barrier loss.
        """
        last_end: dict[int, float] = {}
        for job in self.jobs:
            last_end[job.worker] = max(last_end.get(job.worker, 0.0), job.end_seconds)
        return [
            max(self.wall_seconds - last_end[w], 0.0) if w in last_end else 0.0
            for w in range(self.n_workers)
        ]

    def to_dict(self) -> dict:
        return {
            "n_workers": self.n_workers,
            "wall_seconds": self.wall_seconds,
            "n_jobs": self.n_jobs,
            "backend": self.backend,
            "jobs": [job.to_dict() for job in self.jobs],
            "worker_busy_seconds": list(self.worker_busy_seconds),
            "barrier_downtime_seconds": self.barrier_downtime(),
            "idle_workers": self.idle_workers,
            "utilization": self.utilization,
        }


@runtime_checkable
class WorkerPool(Protocol):
    """What the orchestrator requires of a generation executor backend.

    Pools additionally expose the streaming seam used by steady-state
    evolution — ``submit`` / ``settled`` / ``finish`` — next to the batch
    ``evaluate_generation`` entry point; see
    :class:`~repro.nas.search.EvalStream`.
    """

    n_workers: int
    reports: list

    def evaluate_generation(self, individuals: list) -> list:
        """Run one generation's evaluations; blocks until all settle."""

    def close(self) -> None:
        """Release worker resources (idempotent)."""


class FifoWorkerPool:
    """FIFO generation executor over ``n_workers`` parallel worker threads.

    Parameters
    ----------
    evaluator:
        Backend whose ``evaluate`` runs one individual to completion.
    n_workers:
        Concurrent evaluations (the paper's GPU count).
    policy:
        Optional :class:`~repro.scheduler.faults.FaultPolicy`; when
        given, the evaluator is wrapped in a
        :class:`~repro.scheduler.faults.FaultTolerantEvaluator` (unless
        it already is one), so evaluation faults quarantine individual
        candidates instead of failing the generation.
    on_fault_event:
        Forwarded to the fault-tolerant wrapper when ``policy`` is given
        (lineage hook).

    Notes
    -----
    Submission order is preserved (FIFO): job *i* starts no later than
    job *i+1*.  ``ThreadPoolExecutor`` guarantees this for a fixed
    worker count because its work queue is FIFO.
    """

    backend = "thread"

    def __init__(
        self,
        evaluator: Evaluator,
        n_workers: int = 1,
        *,
        policy: FaultPolicy | None = None,
        on_fault_event=None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if policy is not None and not isinstance(evaluator, FaultTolerantEvaluator):
            evaluator = FaultTolerantEvaluator(
                evaluator, policy, on_event=on_fault_event
            )
        self.evaluator = evaluator
        self.n_workers = int(n_workers)
        self.reports: list[PoolReport] = []
        self._stream: _ThreadStreamState | None = None

    def _run_job(
        self,
        individual: Individual,
        clock: Stopwatch,
        timings: list,
        slots: dict,
        busy: list,
        lock: threading.Lock,
    ) -> None:
        """Evaluate one individual, timing it against the generation clock."""
        with lock:
            worker = slots.setdefault(threading.get_ident(), len(slots))
        start = clock.elapsed()
        try:
            self.evaluator.evaluate(individual)
        finally:
            end = clock.elapsed()
            with lock:
                timings.append(JobTiming(individual.model_id, worker, start, end))
                busy[worker] += end - start

    def evaluate_generation(self, individuals: list[Individual]) -> list[Individual]:
        """Evaluate one generation concurrently; blocks until all finish.

        Every job settles before any exception propagates — a failure in
        job *i* never prevents jobs *i+1..n* from being evaluated.  One
        error re-raises as itself; several raise an ``ExceptionGroup``.
        """
        clock = Stopwatch().start()
        errors: list[Exception] = []
        timings: list[JobTiming] = []
        slots: dict[int, int] = {}
        busy = [0.0] * self.n_workers
        lock = threading.Lock()
        if self.n_workers == 1:
            for individual in individuals:
                try:
                    self._run_job(individual, clock, timings, slots, busy, lock)
                except Exception as exc:  # a4nn: noqa(NUM001) -- not swallowed: collected and re-raised after the generation settles
                    errors.append(exc)
        else:
            with ThreadPoolExecutor(max_workers=self.n_workers) as executor:
                futures = [
                    executor.submit(
                        self._run_job, individual, clock, timings, slots, busy, lock
                    )
                    for individual in individuals
                ]
                for future in futures:
                    try:
                        future.result()
                    except Exception as exc:  # a4nn: noqa(NUM001) -- not swallowed: collected and re-raised after the generation settles
                        errors.append(exc)
        clock.stop()
        order = {ind.model_id: i for i, ind in enumerate(individuals)}
        self.reports.append(
            PoolReport(
                n_workers=self.n_workers,
                wall_seconds=clock.total,
                n_jobs=len(individuals),
                backend="serial" if self.n_workers == 1 else "thread",
                jobs=tuple(
                    sorted(timings, key=lambda t: order.get(t.job_id, len(order)))
                ),
                worker_busy_seconds=tuple(busy),
            )
        )
        if len(errors) == 1:
            raise errors[0]
        if errors:
            raise ExceptionGroup(
                f"{len(errors)} of {len(individuals)} evaluations failed", errors
            )
        return individuals

    # -- streaming seam (steady-state evolution) ---------------------------

    def submit(self, individual: Individual) -> None:
        """Queue one evaluation on the stream (FIFO dispatch order)."""
        if self._stream is None:
            self._stream = _ThreadStreamState(self.n_workers)
        state = self._stream
        state.n_submitted += 1

        def task(ind: Individual = individual) -> None:
            error: Exception | None = None
            try:
                self._run_job(
                    ind, state.clock, state.timings, state.slots, state.busy, state.lock
                )
            except Exception as exc:  # a4nn: noqa(NUM001) -- not swallowed: handed to the consumer through settled()
                error = exc
            state.results.put((ind, error))

        state.executor.submit(task)

    def settled(self) -> Individual:
        """Block for the next completed evaluation, in any order."""
        state = self._stream
        if state is None or state.n_settled >= state.n_submitted:
            raise RuntimeError("no evaluations in flight")
        individual, error = state.results.get()
        state.n_settled += 1
        if error is not None:
            raise error
        return individual

    def on_commit(self, individual: Individual) -> None:
        """Nothing to do: the pool holds no commit-ordered state."""

    def finish(self) -> PoolReport | None:
        """Close the stream and record one report covering the whole run."""
        state = self._stream
        if state is None:
            return None
        self._stream = None
        state.executor.shutdown(wait=True)
        state.clock.stop()
        report = PoolReport(
            n_workers=self.n_workers,
            wall_seconds=state.clock.total,
            n_jobs=state.n_submitted,
            backend="serial" if self.n_workers == 1 else "thread",
            jobs=tuple(sorted(state.timings, key=lambda t: t.job_id)),
            worker_busy_seconds=tuple(state.busy),
        )
        self.reports.append(report)
        return report

    def close(self) -> None:
        """Release stream workers; thread workers hold nothing else."""
        self.finish()

    @property
    def total_wall_seconds(self) -> float:
        """Measured wall time across all generations run so far."""
        return sum(r.wall_seconds for r in self.reports)


class _ThreadStreamState:
    """Mutable bookkeeping of one open :meth:`FifoWorkerPool.submit` stream."""

    def __init__(self, n_workers: int) -> None:
        self.executor = ThreadPoolExecutor(max_workers=n_workers)
        self.clock = Stopwatch().start()
        self.results: queue.Queue = queue.Queue()
        self.timings: list[JobTiming] = []
        self.slots: dict[int, int] = {}
        self.busy = [0.0] * n_workers
        self.lock = threading.Lock()
        self.n_submitted = 0
        self.n_settled = 0
