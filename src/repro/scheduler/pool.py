"""Real concurrent execution of a generation's evaluations.

The discrete-event simulator (:mod:`repro.scheduler.simulator`) answers
"what would this schedule cost on N GPUs"; this module actually *runs*
evaluations concurrently on N workers with the same FIFO-within-a-
generation policy, for users with real parallel hardware.  Worker
threads stand in for accelerators: each evaluation occupies one worker
from start to finish, and the generation boundary is a barrier, exactly
like the simulated policy.

NumPy releases the GIL inside its kernels, so thread workers give real
overlap for the BLAS-heavy training inner loops.

Failure semantics are identical for the serial (``n_workers == 1``) and
threaded paths: every job in the generation settles before any error
propagates, a single error re-raises as itself, and multiple errors
raise an :class:`ExceptionGroup` carrying all of them.  Give the pool a
:class:`~repro.scheduler.faults.FaultPolicy` to stop evaluation errors
from propagating at all: faulty candidates are then retried and, if
unrecoverable, quarantined with penalized objectives.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.nas.evaluation import Evaluator
from repro.nas.population import Individual
from repro.scheduler.faults import FaultPolicy, FaultTolerantEvaluator
from repro.utils.timing import Stopwatch

__all__ = ["PoolReport", "FifoWorkerPool"]


@dataclass(frozen=True)
class PoolReport:
    """Measured outcome of one generation executed on the pool."""

    n_workers: int
    wall_seconds: float
    n_jobs: int


class FifoWorkerPool:
    """FIFO generation executor over ``n_workers`` parallel workers.

    Parameters
    ----------
    evaluator:
        Backend whose ``evaluate`` runs one individual to completion.
    n_workers:
        Concurrent evaluations (the paper's GPU count).
    policy:
        Optional :class:`~repro.scheduler.faults.FaultPolicy`; when
        given, the evaluator is wrapped in a
        :class:`~repro.scheduler.faults.FaultTolerantEvaluator` (unless
        it already is one), so evaluation faults quarantine individual
        candidates instead of failing the generation.
    on_fault_event:
        Forwarded to the fault-tolerant wrapper when ``policy`` is given
        (lineage hook).

    Notes
    -----
    Submission order is preserved (FIFO): job *i* starts no later than
    job *i+1*.  ``ThreadPoolExecutor`` guarantees this for a fixed
    worker count because its work queue is FIFO.
    """

    def __init__(
        self,
        evaluator: Evaluator,
        n_workers: int = 1,
        *,
        policy: FaultPolicy | None = None,
        on_fault_event=None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if policy is not None and not isinstance(evaluator, FaultTolerantEvaluator):
            evaluator = FaultTolerantEvaluator(
                evaluator, policy, on_event=on_fault_event
            )
        self.evaluator = evaluator
        self.n_workers = int(n_workers)
        self.reports: list[PoolReport] = []

    def evaluate_generation(self, individuals: list[Individual]) -> list[Individual]:
        """Evaluate one generation concurrently; blocks until all finish.

        Every job settles before any exception propagates — a failure in
        job *i* never prevents jobs *i+1..n* from being evaluated.  One
        error re-raises as itself; several raise an ``ExceptionGroup``.
        """
        clock = Stopwatch().start()
        errors: list[Exception] = []
        if self.n_workers == 1:
            for individual in individuals:
                try:
                    self.evaluator.evaluate(individual)
                except Exception as exc:  # a4nn: noqa(NUM001) -- not swallowed: collected and re-raised after the generation settles
                    errors.append(exc)
        else:
            with ThreadPoolExecutor(max_workers=self.n_workers) as executor:
                futures = [
                    executor.submit(self.evaluator.evaluate, individual)
                    for individual in individuals
                ]
                for future in futures:
                    try:
                        future.result()
                    except Exception as exc:  # a4nn: noqa(NUM001) -- not swallowed: collected and re-raised after the generation settles
                        errors.append(exc)
        clock.stop()
        self.reports.append(
            PoolReport(
                n_workers=self.n_workers,
                wall_seconds=clock.total,
                n_jobs=len(individuals),
            )
        )
        if len(errors) == 1:
            raise errors[0]
        if errors:
            raise ExceptionGroup(
                f"{len(errors)} of {len(individuals)} evaluations failed", errors
            )
        return individuals

    @property
    def total_wall_seconds(self) -> float:
        """Measured wall time across all generations run so far."""
        return sum(r.wall_seconds for r in self.reports)
