"""Schedule traces: timeline exports of simulated schedules.

Two renderings of a :class:`~repro.scheduler.fifo.ScheduleResult`:

* :func:`ascii_timeline` — a per-GPU text Gantt chart for terminals and
  reports;
* :func:`chrome_trace` — the Chrome ``chrome://tracing`` / Perfetto JSON
  event format, so schedules can be inspected interactively.
"""

from __future__ import annotations

import json

from repro.scheduler.fifo import ScheduleResult

__all__ = ["ascii_timeline", "chrome_trace"]


def ascii_timeline(result: ScheduleResult, *, width: int = 80) -> str:
    """Render the schedule as one text lane per GPU.

    Each job is drawn as a run of its id's last digit; idle time is
    ``.``; generation boundaries are marked under the lanes.
    """
    if not result.placements:
        return "(empty schedule)"
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    makespan = result.makespan or max(p.finish for p in result.placements)
    scale = (width - 1) / makespan if makespan > 0 else 0.0

    lanes = {gpu: ["."] * width for gpu in range(result.n_gpus)}
    for placement in result.placements:
        start = int(placement.start * scale)
        finish = max(int(placement.finish * scale), start + 1)
        glyph = str(placement.job_id % 10)
        for col in range(start, min(finish, width)):
            lanes[placement.gpu][col] = glyph

    marker_row = [" "] * width
    for end in result.generation_ends:
        col = min(int(end * scale), width - 1)
        marker_row[col] = "|"

    lines = [
        f"gpu{gpu} {''.join(cells)}" for gpu, cells in sorted(lanes.items())
    ]
    lines.append("gen  " + "".join(marker_row))
    lines.append(
        f"time 0 .. {makespan:.0f}s  (utilization {100 * result.utilization:.0f}%, "
        f"idle {result.idle_seconds:.0f}s)"
    )
    return "\n".join(lines)


def chrome_trace(result: ScheduleResult) -> str:
    """Serialize the schedule as Chrome trace-event JSON.

    Load the returned text into ``chrome://tracing`` or Perfetto; each
    GPU is a thread, each job a complete event (microsecond units).
    """
    events = [
        {
            "name": f"job {p.job_id}",
            "cat": "training",
            "ph": "X",
            "ts": p.start * 1e6,
            "dur": (p.finish - p.start) * 1e6,
            "pid": 0,
            "tid": p.gpu,
            "args": {"job_id": p.job_id},
        }
        for p in result.placements
    ]
    events.extend(
        {
            "name": f"generation {idx} barrier",
            "cat": "barrier",
            "ph": "i",
            "ts": end * 1e6,
            "pid": 0,
            "tid": 0,
            "s": "g",
        }
        for idx, end in enumerate(result.generation_ends)
    )
    metadata = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": gpu,
            "args": {"name": f"GPU {gpu}"},
        }
        for gpu in range(result.n_gpus)
    ]
    return json.dumps({"traceEvents": metadata + events}, indent=2)
