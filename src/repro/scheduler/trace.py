"""Schedule traces: timeline exports of simulated and measured schedules.

Two renderings of a :class:`~repro.scheduler.fifo.ScheduleResult`:

* :func:`ascii_timeline` — a per-GPU text Gantt chart for terminals and
  reports;
* :func:`chrome_trace` — the Chrome ``chrome://tracing`` / Perfetto JSON
  event format, so schedules can be inspected interactively.

And the same two for a *measured* :class:`~repro.scheduler.pool.
PoolReport` from the thread/process worker pools:

* :func:`pool_timeline` — per-worker text lanes with the
  generation-boundary barrier downtime called out;
* :func:`pool_chrome_trace` — trace-event JSON of the measured
  per-job placements.
"""

from __future__ import annotations

import json

from repro.scheduler.fifo import ScheduleResult
from repro.scheduler.pool import PoolReport

__all__ = ["ascii_timeline", "chrome_trace", "pool_timeline", "pool_chrome_trace"]


def ascii_timeline(result: ScheduleResult, *, width: int = 80) -> str:
    """Render the schedule as one text lane per GPU.

    Each job is drawn as a run of its id's last digit; idle time is
    ``.``; generation boundaries are marked under the lanes.
    """
    if not result.placements:
        return "(empty schedule)"
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    makespan = result.makespan or max(p.finish for p in result.placements)
    scale = (width - 1) / makespan if makespan > 0 else 0.0

    lanes = {gpu: ["."] * width for gpu in range(result.n_gpus)}
    for placement in result.placements:
        start = int(placement.start * scale)
        finish = max(int(placement.finish * scale), start + 1)
        glyph = str(placement.job_id % 10)
        for col in range(start, min(finish, width)):
            lanes[placement.gpu][col] = glyph

    marker_row = [" "] * width
    for end in result.generation_ends:
        col = min(int(end * scale), width - 1)
        marker_row[col] = "|"

    lines = [
        f"gpu{gpu} {''.join(cells)}" for gpu, cells in sorted(lanes.items())
    ]
    lines.append("gen  " + "".join(marker_row))
    lines.append(
        f"time 0 .. {makespan:.0f}s  (utilization {100 * result.utilization:.0f}%, "
        f"idle {result.idle_seconds:.0f}s)"
    )
    return "\n".join(lines)


def chrome_trace(result: ScheduleResult) -> str:
    """Serialize the schedule as Chrome trace-event JSON.

    Load the returned text into ``chrome://tracing`` or Perfetto; each
    GPU is a thread, each job a complete event (microsecond units).
    """
    events = [
        {
            "name": f"job {p.job_id}",
            "cat": "training",
            "ph": "X",
            "ts": p.start * 1e6,
            "dur": (p.finish - p.start) * 1e6,
            "pid": 0,
            "tid": p.gpu,
            "args": {"job_id": p.job_id},
        }
        for p in result.placements
    ]
    events.extend(
        {
            "name": f"generation {idx} barrier",
            "cat": "barrier",
            "ph": "i",
            "ts": end * 1e6,
            "pid": 0,
            "tid": 0,
            "s": "g",
        }
        for idx, end in enumerate(result.generation_ends)
    )
    metadata = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": gpu,
            "args": {"name": f"GPU {gpu}"},
        }
        for gpu in range(result.n_gpus)
    ]
    return json.dumps({"traceEvents": metadata + events}, indent=2)


def pool_timeline(report: PoolReport, *, width: int = 80) -> str:
    """Render one generation's measured pool execution as text lanes.

    Same visual language as :func:`ascii_timeline` — one lane per
    worker, jobs drawn as their id's last digit, idle time as ``.`` —
    plus a trailing summary with each worker's generation-boundary
    barrier downtime (the tail idle stretch that appears when
    ``population % n_workers != 0``).
    """
    if not report.jobs:
        return "(empty pool report)"
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    span = report.wall_seconds or max(j.end_seconds for j in report.jobs)
    scale = (width - 1) / span if span > 0 else 0.0

    lanes = {worker: ["."] * width for worker in range(report.n_workers)}
    for job in report.jobs:
        start = int(job.start_seconds * scale)
        finish = max(int(job.end_seconds * scale), start + 1)
        glyph = str(job.job_id % 10)
        for col in range(start, min(finish, width)):
            lanes[job.worker][col] = glyph

    lines = [
        f"worker{worker} {''.join(cells)}" for worker, cells in sorted(lanes.items())
    ]
    downtime = report.barrier_downtime()
    scheduled = {job.worker for job in report.jobs}
    lines.append(
        f"backend={report.backend} jobs={report.n_jobs} "
        f"wall={report.wall_seconds:.2f}s "
        f"utilization={100 * report.utilization:.0f}%"
    )
    lines.append(
        "barrier downtime: "
        + "  ".join(
            f"w{i}={d:.2f}s" if i in scheduled else f"w{i}=idle"
            for i, d in enumerate(downtime)
        )
    )
    if report.idle_workers:
        lines.append(
            f"idle workers: {report.idle_workers} never scheduled "
            "(pool larger than the work; not barrier loss)"
        )
    return "\n".join(lines)


def pool_chrome_trace(report: PoolReport) -> str:
    """Serialize a measured pool generation as Chrome trace-event JSON.

    Each worker is a thread, each job a complete event; per-worker
    barrier downtime is appended as instant events at the generation
    end so the boundary stall is visible in Perfetto.
    """
    events = [
        {
            "name": f"job {j.job_id}",
            "cat": f"eval-{report.backend}",
            "ph": "X",
            "ts": j.start_seconds * 1e6,
            "dur": j.duration * 1e6,
            "pid": 0,
            "tid": j.worker,
            "args": {"job_id": j.job_id},
        }
        for j in report.jobs
    ]
    scheduled = {j.worker for j in report.jobs}
    events.extend(
        {
            "name": f"barrier downtime worker {worker}",
            "cat": "barrier",
            "ph": "X",
            "ts": (report.wall_seconds - downtime) * 1e6,
            "dur": downtime * 1e6,
            "pid": 0,
            "tid": worker,
            "args": {"downtime_seconds": downtime},
        }
        for worker, downtime in enumerate(report.barrier_downtime())
        if downtime > 0
    )
    # a never-scheduled worker spans the whole run as its own event so
    # the lane isn't mislabelled as barrier loss
    events.extend(
        {
            "name": f"worker {worker} never scheduled",
            "cat": "idle",
            "ph": "X",
            "ts": 0.0,
            "dur": report.wall_seconds * 1e6,
            "pid": 0,
            "tid": worker,
            "args": {"idle": True},
        }
        for worker in range(report.n_workers)
        if worker not in scheduled
    )
    metadata = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": worker,
            "args": {"name": f"{report.backend} worker {worker}"},
        }
        for worker in range(report.n_workers)
    ]
    return json.dumps({"traceEvents": metadata + events}, indent=2)
