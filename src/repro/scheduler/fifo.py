"""FIFO dynamic scheduling of training jobs onto GPUs (Ray substitute).

Paper §2.5: *"We leverage the scheduling algorithms of Ray and use its
first in, first out (FIFO) dynamic scheduling to assign models to GPUs
within a generation.  When an NN finishes training, another NN within
the generation begins training according to GPU availability."*  A
generation boundary is a barrier: offspring cannot start before every
model of the previous generation finished (selection needs all
fitnesses), so "some downtime may occur when not all GPUs are used".

This module computes exact schedules for that policy given each job's
duration (the sum of its — possibly early-terminated — epoch times).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.scheduler.resources import GpuPool

__all__ = ["Job", "JobPlacement", "ScheduleResult", "schedule_generation", "schedule_run"]


@dataclass(frozen=True)
class Job:
    """One network's training workload.

    ``epoch_seconds`` are the durations of the epochs actually executed
    (early termination simply yields a shorter list).
    """

    job_id: int
    epoch_seconds: tuple

    def __post_init__(self) -> None:
        seconds = tuple(float(s) for s in self.epoch_seconds)
        if any(s < 0 for s in seconds):
            raise ValueError(f"epoch durations must be non-negative: {seconds}")
        object.__setattr__(self, "epoch_seconds", seconds)

    @property
    def duration(self) -> float:
        return sum(self.epoch_seconds)

    @property
    def n_epochs(self) -> int:
        return len(self.epoch_seconds)


@dataclass(frozen=True)
class JobPlacement:
    """Where and when a job ran."""

    job_id: int
    gpu: int
    start: float
    finish: float


@dataclass
class ScheduleResult:
    """A complete simulated schedule."""

    placements: list = field(default_factory=list)
    makespan: float = 0.0
    busy_seconds: float = 0.0
    n_gpus: int = 1
    generation_ends: list = field(default_factory=list)

    @property
    def utilization(self) -> float:
        """Busy fraction of total pool time."""
        total = self.makespan * self.n_gpus
        return self.busy_seconds / total if total > 0 else 0.0

    @property
    def idle_seconds(self) -> float:
        """Accumulated GPU downtime (generation-barrier effect)."""
        return self.makespan * self.n_gpus - self.busy_seconds


def schedule_generation(
    jobs: list[Job], pool: GpuPool, *, release_time: float = 0.0
) -> list[JobPlacement]:
    """FIFO-assign one generation's jobs onto the pool.

    Jobs start in submission order on the earliest-free GPU, never
    before ``release_time`` (the generation's barrier release).
    """
    pool.advance_all(release_time)
    placements = []
    for job in jobs:
        gpu = pool.next_free()
        start = gpu.available_at
        finish = gpu.run(job.job_id, start, job.duration)
        placements.append(JobPlacement(job.job_id, gpu.index, start, finish))
    return placements


def schedule_run(
    generations: list[list[Job]], n_gpus: int, *, barrier: bool = True
) -> ScheduleResult:
    """Schedule a whole search: FIFO within generations, barriers between.

    Parameters
    ----------
    generations:
        Jobs grouped by generation, in evaluation order.
    n_gpus:
        Pool size (the paper compares 1 vs 4).
    barrier:
        When true (the paper's generational NAS), a generation's jobs
        cannot start before every job of the previous generation has
        finished — selection needs all fitnesses, and "some downtime may
        occur" (§2.5).  ``barrier=False`` models a steady-state
        asynchronous NAS (an ablation quantifying what the barrier
        costs); jobs still start in submission order.
    """
    pool = GpuPool(n_gpus)
    result = ScheduleResult(n_gpus=n_gpus)
    release = 0.0
    for generation_jobs in generations:
        placements = schedule_generation(generation_jobs, pool, release_time=release)
        result.placements.extend(placements)
        generation_end = max((p.finish for p in placements), default=release)
        result.generation_ends.append(generation_end)
        if barrier:
            release = generation_end
    result.makespan = max(result.generation_ends, default=0.0)
    result.busy_seconds = sum(g.busy_seconds for g in pool)
    return result
